#!/usr/bin/env python
"""CI smoke test for `repro serve`: boot, /health, /plan, graceful stop.

Starts a real service subprocess on an ephemeral port, polls ``/health``
until it answers, round-trips one ``POST /plan`` (the response's
``result`` block must reconstruct to the same ``OptimizationResult``,
certificate included), then sends SIGTERM and requires the graceful
drain to exit 0.  Any deviation exits non-zero and fails the CI step.

Usage: PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
import urllib.request


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"service smoke: FAIL: {message}", file=sys.stderr)
    if proc is not None:
        proc.kill()
        _, err = proc.communicate(timeout=30)
        sys.stderr.write(err or "")
    raise SystemExit(1)


def get_json(url: str, timeout: float = 30.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def post_json(url: str, body: dict, timeout: float = 120.0):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--service-dir", ".ci-service",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    if not line.startswith("SERVE "):
        fail(f"no SERVE announcement (got {line!r})", proc)
    url = line.split(None, 1)[1].strip()
    print(f"service smoke: serving at {url}")

    deadline = time.monotonic() + 30.0
    health = None
    while time.monotonic() < deadline:
        try:
            _, health = get_json(f"{url}/health", timeout=5.0)
            break
        except OSError:
            time.sleep(0.2)
    if health is None:
        fail("/health never answered", proc)
    if health["status"] != "ok" or health["breaker"]["state"] != "closed":
        fail(f"unhealthy at boot: {health}", proc)
    print("service smoke: /health ok")

    status, plan = post_json(
        f"{url}/plan", {"system": "D7", "technique": "dauwe"}
    )
    if status != 200:
        fail(f"/plan answered {status}", proc)
    # Certificate round-trip: the served result must reconstruct exactly.
    sys.path.insert(0, "src")
    from repro.core.interfaces import OptimizationResult

    rebuilt = OptimizationResult.from_dict(plan["result"])
    if rebuilt.to_dict() != plan["result"]:
        fail("served OptimizationResult does not round-trip", proc)
    if rebuilt.certificate is None or rebuilt.certificate.evaluations <= 0:
        fail(f"missing/empty certificate in {plan['result']}", proc)
    if plan["predicted_time"] <= 0:
        fail(f"non-positive predicted_time {plan['predicted_time']}", proc)
    print(
        "service smoke: /plan ok "
        f"(predicted_time={plan['predicted_time']:.1f}s, "
        f"{rebuilt.certificate.evaluations} evaluations certified)"
    )

    proc.send_signal(signal.SIGTERM)
    try:
        _, err = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        fail("server did not exit within 60s of SIGTERM", proc)
    if proc.returncode != 0:
        sys.stderr.write(err)
        fail(f"drain exited {proc.returncode}, expected 0")
    if "drained clean" not in err:
        sys.stderr.write(err)
        fail("drain did not report 'drained clean'")
    print("service smoke: graceful SIGTERM drain ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
