"""Shared-resource primitives on top of the DES core.

Two classic primitives suffice for the package's modeling needs:

* :class:`Resource` — a counted semaphore with FIFO queuing; used by the
  PFS-contention example to model a bounded number of concurrent
  checkpoint writers to the parallel file system.
* :class:`Store` — an unbounded-or-bounded FIFO buffer of Python objects;
  handy for producer/consumer process tests and trace pipelines.

Both follow the engine's determinism rules: waiters are served strictly
in request order.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .core import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO acquisition.

    ``request()`` returns an :class:`Event` that fires when a slot is
    granted; ``release()`` frees a slot and wakes the next waiter.  Use
    from a process as::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter (count unchanged).
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """FIFO object buffer with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = self.env.event()
        if self._getters:
            # Direct hand-off to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev
