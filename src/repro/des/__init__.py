"""Process-oriented discrete-event simulation engine (simpy-style).

Built from scratch as the substrate for the reference checkpoint
simulator (:mod:`repro.simulator.reference`) and available as a public
general-purpose engine::

    from repro.des import Environment

    env = Environment()

    def rider(env, bike):
        req = bike.request()
        yield req
        yield env.timeout(30)
        bike.release()

See :mod:`repro.des.core` for the execution model and determinism rules.
"""

from .core import Environment, Event, Interrupt, Process, StopSimulation, Timeout
from .resources import Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
]
