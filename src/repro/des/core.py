"""A process-oriented discrete-event simulation engine.

The paper's evaluation rests on an event-based HPC simulator ([8],
Section IV-B); since no general-purpose DES library is vendored here, this
module provides one from scratch, in the generator-coroutine style
popularized by SimPy:

* an :class:`Environment` owns the simulation clock and a priority queue
  of scheduled events;
* a :class:`Process` wraps a Python generator; each ``yield``-ed
  :class:`Event` suspends the process until the event fires;
* :meth:`Process.interrupt` injects an :class:`Interrupt` exception into
  a waiting process — the natural way to model a failure striking in the
  middle of a compute/checkpoint/restart operation;
* :class:`Timeout` is the elapse-of-time event; :class:`Event` supports
  explicit ``succeed``/``fail`` for signalling between processes.

The engine is deterministic: simultaneous events fire in schedule order
(stable FIFO tie-break), which the reference checkpoint simulator and the
test suite rely on.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env):
...     yield env.timeout(2.0)
...     log.append(env.now)
>>> _ = env.process(worker(env))
>>> env.run()
>>> log
[2.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "StopSimulation",
]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    ``cause`` carries arbitrary payload (the checkpoint simulator passes
    the failure's severity).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once with either a value (``succeed``) or an
    exception (``fail``); all registered callbacks then run at the current
    simulation time.  Yielding a pending event from a process suspends the
    process until the trigger.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event triggered successfully."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("event value is not available before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully (optionally after ``delay``)."""
        self._mark(value, None)
        self.env._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger with an exception, propagated into waiting processes."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._mark(None, exc)
        self.env._schedule(self, delay)
        return self

    def _mark(self, value: Any, exc: BaseException | None) -> None:
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self._exc = exc

    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._mark(value, None)
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator may ``yield`` any :class:`Event`; the process resumes
    when the event triggers, receiving ``event.value`` (or the event's
    exception).  A process can be interrupted while waiting; the pending
    event's trigger is then ignored by this process.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, env: "Environment", gen: Generator):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"process needs a generator, got {type(gen).__name__}")
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Event | None = None
        # Bootstrap on the next tick so creation order == start order.
        boot = Event(env)
        boot._mark(None, None)
        boot.callbacks.append(self._resume)
        env._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        No-op scheduling subtleties: the interrupt is delivered
        immediately (synchronously), matching the failure semantics the
        checkpoint simulator needs — the interrupted operation observes
        the exact interruption time via ``env.now``.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is not None:
            target = self._waiting_on
            self._waiting_on = None
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._step(lambda: self._gen.throw(Interrupt(cause)))

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self.is_alive:  # pragma: no cover - defensive
            return
        self._waiting_on = None
        if event._exc is not None:
            self._step(lambda: self._gen.throw(event._exc))
        else:
            self._step(lambda: self._gen.send(event._value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._mark(stop.value, None)
            self.env._schedule(self, 0.0)
            return
        except BaseException as exc:
            self._mark(None, exc)
            self.env._schedule(self, 0.0)
            if not self.callbacks:
                raise
            return
        if not isinstance(target, Event):
            self._mark(
                None,
                RuntimeError(
                    f"process yielded {target!r}; only Event instances may be yielded"
                ),
            )
            self.env._schedule(self, 0.0)
            return
        if target._processed:
            # Already fired: resume immediately with its outcome.
            boot = Event(self.env)
            boot._mark(target._value, target._exc)
            boot.callbacks.append(self._resume)
            self.env._schedule(boot, 0.0)
            self._waiting_on = boot
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Environment:
    """Simulation clock + event queue; the engine's facade."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first of ``events`` fires."""
        events = list(events)
        out = self.event()

        def on_fire(ev: Event) -> None:
            if not out.triggered:
                if ev._exc is not None:
                    out.fail(ev._exc)
                else:
                    out.succeed((ev, ev._value))

        for ev in events:
            if ev._processed:
                on_fire(ev)
                break
            ev.callbacks.append(on_fire)
        return out

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every one of ``events`` has fired."""
        events = list(events)
        out = self.event()
        remaining = len(events)
        if remaining == 0:
            return out.succeed([])

        def on_fire(ev: Event) -> None:
            nonlocal remaining
            if out.triggered:
                return
            if ev._exc is not None:
                out.fail(ev._exc)
                return
            remaining -= 1
            if remaining == 0:
                out.succeed([e._value for e in events])

        for ev in events:
            if ev._processed:
                on_fire(ev)
            else:
                ev.callbacks.append(on_fire)
        return out

    # ------------------------------------------------------------------
    # scheduling / running
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        self._counter += 1

    def step(self) -> None:
        """Process the next scheduled event (advancing the clock)."""
        if not self._queue:
            raise RuntimeError("no scheduled events")
        t, _, event = heapq.heappop(self._queue)
        if t < self._now - 1e-12:  # pragma: no cover - defensive
            raise RuntimeError(f"time went backwards: {t} < {self._now}")
        self._now = max(self._now, t)
        event._process_callbacks()

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline, or an event fires.

        ``until`` may be a time (run to that clock value), an
        :class:`Event` (run until it fires, returning its value), or
        ``None`` (run the queue dry).
        """
        if isinstance(until, Event):
            sentinel = until

            def stop(_ev: Event) -> None:
                raise StopSimulation

            if not sentinel._processed:
                sentinel.callbacks.append(stop)
                try:
                    while self._queue:
                        self.step()
                except StopSimulation:
                    pass
                else:
                    raise RuntimeError(
                        "simulation queue drained before the awaited event fired"
                    )
            return sentinel.value
        deadline = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if until is not None:
            self._now = max(self._now, deadline) if deadline != float(
                "inf"
            ) else self._now
        return None
