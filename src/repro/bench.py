"""Benchmark trajectory harness: the repo's performance baseline as data.

``python -m repro bench`` re-runs the core cases of the pytest-benchmark
suite (``benchmarks/test_micro_bench.py``) programmatically — no pytest
required — and writes ``BENCH_simulator.json`` so future changes have a
recorded baseline to beat.  The JSON payload (schema ``repro-bench/2``)
carries:

``schema`` / ``generated`` / ``quick``
    Format tag, UTC timestamp, and whether ``--quick`` reduced rounds.
``git_rev`` / ``git_dirty`` / ``package_versions``
    Provenance: the commit benchmarked, whether the working tree had
    uncommitted changes when the numbers were taken (a baseline is
    typically generated *before* the commit that lands it, so
    ``git_rev`` alone names the wrong revision — re-stamp with a clean
    tree after landing), and the versions of everything that can change
    a number (same helper the run manifests use).
``cases``
    One entry per micro-case: ``name``, ``engine`` (``"scalar"``/
    ``"batch"``/``null`` for model-only cases), ``rounds``,
    ``seconds_best``, ``seconds_mean`` and — for simulator cases —
    ``trials_per_sec`` (best-round throughput).
``simulate_many``
    The scalar-vs-batch comparison grid: for each (system, trials) cell
    — including Weibull and trace-driven cells, labelled
    ``"B+weibull(0.7)"`` / ``"D4+trace"`` so baseline comparison keys
    stay distinct — both engines' timings, ``trials_per_sec``, the
    ``speedup`` ratio (scalar best / batch best), and ``equal`` —
    whether the two engines produced identical ``TrialResult`` lists
    for the same seeds.
``auto_crossover``
    The ``engine="auto"`` width threshold: the ``configured`` value in
    effect (:func:`repro.simulator.run.get_auto_min_trials`) and, when
    the run was invoked with ``--crossover``, the ``measured`` sweep —
    per-system scalar/batch timings over a ladder of trial counts, the
    first width where the batch engine wins, and the recommended
    process-wide threshold (export it as ``REPRO_AUTO_MIN_TRIALS``).

Equality is a hard check (a mismatch raises, so CI fails); timings are
informational only — containers differ, so no threshold is enforced here.
Batch-engine cells are timed warm (one discarded warm-up round) because
the first call in a process pays one-off page-fault costs the scalar
engine amortizes across its sequential trials.
"""

from __future__ import annotations

import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from .core import CheckpointPlan, DauweModel
from .failures import FailureSpec
from .models import MoodyModel
from .scenarios.manifest import package_versions
from .simulator import simulate_many, simulate_trial
from .simulator.run import get_auto_min_trials
from .systems import get_system

__all__ = ["SCHEMA", "compare_to_baseline", "measure_crossover", "run_bench"]

#: Format tag written into every payload; bump on breaking layout changes.
#: v2 added ``git_dirty``, ``auto_crossover`` and the Weibull/trace grid
#: cells (labelled ``"<system>+<source>"`` so the ``(system, trials,
#: engine)`` baseline keys stay distinct from the exponential rows).
SCHEMA = "repro-bench/2"


def _trace_spec(system, events: int = 512) -> FailureSpec:
    """A deterministic replay trace pinned to ``system``'s failure load.

    Exponential inter-arrivals at the system MTBF from a fixed-seed
    generator — realistic spacing, bit-identical across runs — with
    severities cycling over the system's levels.  Every trial replays
    the same trace (that is what a trace source *is*), so the cell
    exercises the shared-trace fast path of the batch engine.
    """
    rng = np.random.default_rng(20260808)
    times = np.cumsum(rng.exponential(system.mtbf, events))
    sevs = rng.integers(1, len(system.severity_probabilities) + 1, events)
    return FailureSpec(
        kind="trace",
        params={"times": [float(x) for x in times],
                "severities": [int(x) for x in sevs]},
    )


#: (label, system, trials, failure spec) cells of the scalar-vs-batch
#: comparison grid.  The 200-trial rows are figure2-sized batches (its
#: per-scenario default); the 1000-trial rows (full mode only) show how
#: the batch engine's advantage grows with width.  The Weibull and
#: trace rows keep ``--check-baseline``'s regression gate on the
#: non-exponential engine paths.
_WEIBULL = FailureSpec(kind="weibull", params={"shape": 0.7})
_GRID_QUICK = (
    ("B", "B", 200, None),
    ("D4", "D4", 200, None),
    ("D8", "D8", 200, None),
    ("B+weibull(0.7)", "B", 200, _WEIBULL),
    ("D4+trace", "D4", 200, "trace"),
)
_GRID_FULL = _GRID_QUICK + (
    ("B", "B", 1000, None),
    ("D4", "D4", 1000, None),
    ("D8", "D8", 1000, None),
    ("B+weibull(0.7)", "B", 1000, _WEIBULL),
    ("D4+trace", "D4", 1000, "trace"),
)

#: Trial-count ladder swept by :func:`measure_crossover`, and the
#: systems it sweeps (the mildest and the harshest of the Table I
#: catalog — their crossovers bracket the rest).
_CROSSOVER_WIDTHS = (8, 16, 24, 32, 48, 64, 96, 128, 192, 256)
_CROSSOVER_SYSTEMS = ("B", "D8")


def _git_rev() -> str | None:
    """The benchmarked commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def _git_dirty() -> bool | None:
    """Whether the working tree differs from HEAD (None outside git)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _timeit(fn, rounds: int, warmup: int = 1, repeats: int = 1) -> dict:
    """Best/mean wall-clock of ``fn()`` over ``rounds`` timed calls.

    ``repeats > 1`` runs the whole measurement that many times and keeps
    the *median* best/mean — the de-flaking knob behind
    ``--baseline-repeats``: a single sample in a shared container sees
    ±10-25% noise, the median of three rarely does.
    """
    for _ in range(warmup):
        fn()
    bests, means = [], []
    for _ in range(max(1, repeats)):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        bests.append(min(times))
        means.append(sum(times) / len(times))
    rec = {
        "rounds": rounds,
        "seconds_best": _median(bests),
        "seconds_mean": _median(means),
    }
    if repeats > 1:
        rec["repeats"] = repeats
    return rec


def _case(name: str, fn, rounds: int, warmup: int = 1,
          engine: str | None = None, trials: int | None = None,
          repeats: int = 1) -> dict:
    rec = {"name": name, "engine": engine}
    rec.update(_timeit(fn, rounds=rounds, warmup=warmup, repeats=repeats))
    if trials is not None:
        rec["trials_per_sec"] = trials / rec["seconds_best"]
    return rec


def _timed_many(system, plan, trials: int, engine: str,
                rounds: int, warmup: int, source_factory=None,
                repeats: int = 1):
    """Time ``simulate_many`` on one engine; returns (record, trial list)."""
    result = []

    def call() -> None:
        result[:] = simulate_many(
            system, plan, trials=trials, seed=0,
            engine=engine, return_trials=True,
            source_factory=source_factory,
        )[1]

    rec = _timeit(call, rounds=rounds, warmup=warmup, repeats=repeats)
    rec["trials_per_sec"] = trials / rec["seconds_best"]
    return rec, list(result)


def measure_crossover(widths=None, systems=None) -> dict:
    """Measure the batch/scalar crossover width on this machine.

    For each system, times both engines over the ``widths`` ladder and
    reports the smallest trial count from which the batch engine stays
    ahead for every larger width measured (transient wins below it do
    not count).  ``recommended`` is the largest such crossover across
    the swept systems — the conservative process-wide
    ``engine="auto"`` threshold: above it *every* swept system runs
    faster batched.  ``None`` means the batch engine never established
    a lead, so ``auto`` should keep the scalar loop (keep the
    configured default).
    """
    if widths is None:
        widths = _CROSSOVER_WIDTHS
    if systems is None:
        systems = _CROSSOVER_SYSTEMS
    out: dict = {"widths": list(widths), "systems": {}, "recommended": None}
    crossings = []
    for name in systems:
        system = get_system(name)
        plan = DauweModel(system).optimize().plan
        rows = []
        for trials in widths:
            rounds = max(1, min(5, 128 // trials))
            scalar_rec, _ = _timed_many(
                system, plan, trials, "scalar", rounds=rounds, warmup=0
            )
            batch_rec, _ = _timed_many(
                system, plan, trials, "batch", rounds=rounds, warmup=1
            )
            rows.append(
                {
                    "trials": trials,
                    "scalar_seconds": scalar_rec["seconds_best"],
                    "batch_seconds": batch_rec["seconds_best"],
                    "speedup": scalar_rec["seconds_best"]
                    / batch_rec["seconds_best"],
                }
            )
        crossover = None
        for i, row in enumerate(rows):
            if all(r["speedup"] >= 1.0 for r in rows[i:]):
                crossover = row["trials"]
                break
        out["systems"][name] = {"sweep": rows, "crossover": crossover}
        crossings.append(crossover)
    if all(c is not None for c in crossings):
        out["recommended"] = max(crossings)
    return out


def run_bench(
    quick: bool = False,
    out: str | Path | None = None,
    crossover: bool = False,
    repeats: int = 1,
) -> dict:
    """Run the benchmark trajectory; optionally write the JSON to ``out``.

    ``quick`` trims rounds and drops the 1000-trial grid rows (the CI
    smoke configuration); ``crossover`` additionally sweeps
    :func:`measure_crossover` and records the result in the payload.
    ``repeats`` re-measures every timed cell that many times and keeps
    per-cell medians (``--baseline-repeats``; the crossover sweep is
    informational and always measures once).  Raises
    :class:`RuntimeError` if the scalar and batch engines disagree on
    any grid cell — the equality guarantee is load-bearing, the timings
    are not.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    system_b = get_system("B")
    plan_b = DauweModel(system_b).optimize().plan
    storm_system = get_system("B").with_mtbf(3.0).with_top_level_cost(40.0)
    storm_plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
    taus_long = np.geomspace(0.1, 1000.0, 256)
    taus_short = np.geomspace(0.1, 300.0, 256)
    dauwe_b = DauweModel(system_b)
    moody_b = MoodyModel(system_b)

    cases = [
        _case(
            "dauwe_predict_time_batch",
            lambda: dauwe_b.predict_time_batch((1, 2, 3, 4), (1, 2, 3), taus_long),
            rounds=10 if quick else 50, repeats=repeats,
        ),
        _case(
            "moody_pattern_efficiency_batch",
            lambda: moody_b.pattern_efficiency_batch((1, 2, 3, 4), (1, 2, 3), taus_short),
            rounds=10 if quick else 50, repeats=repeats,
        ),
        _case(
            "optimizer_sweep_D4",
            lambda: DauweModel(get_system("D4")).optimize(),
            rounds=1 if quick else 3,
            warmup=0, repeats=repeats,
        ),
        _case(
            "simulate_trial_easy_B",
            lambda: simulate_trial(system_b, plan_b, 7),
            rounds=5 if quick else 20,
            engine="scalar",
            trials=1,
            repeats=repeats,
        ),
        _case(
            "simulate_trial_failure_storm",
            lambda: simulate_trial(storm_system, storm_plan, 11, max_time=5000.0),
            rounds=1 if quick else 3,
            warmup=0,
            engine="scalar",
            trials=1,
            repeats=repeats,
        ),
    ]

    grid = []
    for label, name, trials, spec in _GRID_QUICK if quick else _GRID_FULL:
        system = get_system(name)
        plan = DauweModel(system).optimize().plan
        if spec == "trace":
            spec = _trace_spec(system)
        factory = None if spec is None else spec.source_factory(system)
        rounds = 1 if quick else 2
        scalar_rec, scalar_trials = _timed_many(
            system, plan, trials, "scalar", rounds=rounds, warmup=0,
            source_factory=factory, repeats=repeats,
        )
        batch_rec, batch_trials = _timed_many(
            system, plan, trials, "batch", rounds=rounds, warmup=1,
            source_factory=factory, repeats=repeats,
        )
        equal = scalar_trials == batch_trials
        if not equal:
            bad = sum(a != b for a, b in zip(scalar_trials, batch_trials))
            raise RuntimeError(
                f"engine mismatch on system {label} ({trials} trials): "
                f"{bad} TrialResult(s) differ between scalar and batch"
            )
        grid.append(
            {
                "system": label,
                "trials": trials,
                "plan": plan.describe(),
                "scalar": scalar_rec,
                "batch": batch_rec,
                "speedup": scalar_rec["seconds_best"] / batch_rec["seconds_best"],
                "equal": equal,
            }
        )

    payload = {
        "schema": SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": bool(quick),
        "repeats": int(repeats),
        "git_rev": _git_rev(),
        "git_dirty": _git_dirty(),
        "package_versions": package_versions(),
        "cases": cases,
        "simulate_many": grid,
        "auto_crossover": {
            "configured": get_auto_min_trials(),
            "measured": measure_crossover() if crossover else None,
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def compare_to_baseline(
    payload: dict, baseline: dict, tolerance: float = 0.05
) -> list[str]:
    """Throughput regressions of ``payload`` against a recorded baseline.

    Pure comparison — no I/O, no timing.  Cells are matched by case name
    (and by ``(system, trials, engine)`` for the ``simulate_many`` grid);
    a cell counts as a regression when its best-round throughput
    (``trials_per_sec``, falling back to ``1 / seconds_best`` for
    model-only cases) drops more than ``tolerance`` below the baseline's.
    Returns one human-readable finding per regression — empty means the
    guard passes.  Cells present on only one side are ignored (grids
    differ between ``--quick`` and full runs).

    This is the ``--check-baseline`` guard for the numerics-hardened
    model paths: the guard layer claims zero overhead on finite inputs,
    and this is where that claim is measured against
    ``BENCH_simulator.json``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    findings: list[str] = []

    def check(label: str, new_tps: float, old_tps: float) -> None:
        if old_tps <= 0:
            return
        if new_tps < old_tps * (1.0 - tolerance):
            drop = 100.0 * (1.0 - new_tps / old_tps)
            findings.append(
                f"{label}: {new_tps:.1f}/s vs baseline {old_tps:.1f}/s "
                f"({drop:.1f}% slower, tolerance {100.0 * tolerance:.0f}%)"
            )

    def throughput(rec: dict) -> float:
        if "trials_per_sec" in rec:
            return float(rec["trials_per_sec"])
        best = float(rec.get("seconds_best", 0.0))
        return 1.0 / best if best > 0 else 0.0

    old_cases = {c["name"]: c for c in baseline.get("cases", [])}
    for case in payload.get("cases", []):
        old = old_cases.get(case["name"])
        if old is not None:
            check(f"case {case['name']}", throughput(case), throughput(old))

    old_grid = {
        (cell["system"], cell["trials"], engine): cell[engine]
        for cell in baseline.get("simulate_many", [])
        for engine in ("scalar", "batch")
        if engine in cell
    }
    for cell in payload.get("simulate_many", []):
        for engine in ("scalar", "batch"):
            old = old_grid.get((cell["system"], cell["trials"], engine))
            if engine in cell and old is not None:
                check(
                    f"simulate_many {cell['system']} x {cell['trials']} ({engine})",
                    throughput(cell[engine]),
                    throughput(old),
                )
    return findings


def format_bench(payload: dict) -> str:
    """Human summary of a bench payload (what the CLI prints)."""
    lines = ["case                              best [s]    mean [s]"]
    for case in payload["cases"]:
        lines.append(
            f"{case['name']:<32}{case['seconds_best']:>10.4f}"
            f"{case['seconds_mean']:>12.4f}"
        )
    lines.append("")
    lines.append(
        "simulate_many        scalar [s]   batch [s]   speedup   trials/s (batch)"
    )
    for cell in payload["simulate_many"]:
        label = f"{cell['system']} x {cell['trials']}"
        lines.append(
            f"{label:<20}{cell['scalar']['seconds_best']:>11.3f}"
            f"{cell['batch']['seconds_best']:>12.3f}"
            f"{cell['speedup']:>10.2f}"
            f"{cell['batch']['trials_per_sec']:>19.0f}"
        )
    crossover = payload.get("auto_crossover") or {}
    measured = crossover.get("measured")
    if measured is not None:
        lines.append("")
        lines.append("auto crossover       trials    scalar [s]   batch [s]   speedup")
        for name, entry in measured["systems"].items():
            for row in entry["sweep"]:
                lines.append(
                    f"{name:<20}{row['trials']:>7}"
                    f"{row['scalar_seconds']:>13.4f}"
                    f"{row['batch_seconds']:>12.4f}"
                    f"{row['speedup']:>10.2f}"
                )
            mark = entry["crossover"]
            lines.append(
                f"{name} crossover: "
                + (f">= {mark} trials" if mark is not None
                   else "not reached (scalar stays ahead)")
            )
        recommended = measured["recommended"]
        configured = crossover.get("configured")
        if recommended is not None:
            lines.append(
                f"recommended engine='auto' threshold: {recommended} "
                f"(configured: {configured}; export "
                f"REPRO_AUTO_MIN_TRIALS={recommended} to adopt)"
            )
        else:
            lines.append(
                "recommended engine='auto' threshold: keep configured "
                f"{configured} (batch never established a lead)"
            )
    return "\n".join(lines)
