"""Content-addressed cache for optimization results.

The Section III-C sweep is by far the most expensive analytic step of the
reproduction (hundreds of thousands of model evaluations for a four-level
system), and the same 55 (system, technique) sweeps are re-run by every
figure, every ``--quick`` smoke run and every bench.  The cache keys an
:class:`~repro.core.interfaces.OptimizationResult` by a hash of everything
that determines it — the system spec's *numerical content* (not its name,
so renamed Figure-4 grid scenarios share entries), the technique, the
model options and the sweep parameters — and stores it in an in-memory
LRU, optionally backed by a directory of JSON files so results survive
across processes and invocations.

Disk entries are one file per key (``<key>.json``), written atomically via
rename, so concurrent scenario workers sharing a cache directory never
read torn files.  Each entry additionally embeds a sha256 checksum of its
own content which is verified on every disk read (the silent-error guard
of Aupy et al.: never trust an unverified artifact): an entry that is
truncated, bit-rotted or from the pre-checksum format is *quarantined* —
renamed to ``<key>.corrupt`` so it is kept for forensics but never read
again — counted as a miss, and announced once per process on stderr.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..core.interfaces import OptimizationResult
from ..systems.spec import SystemSpec

__all__ = [
    "CacheStats",
    "OptimizationCache",
    "cache_key",
    "get_active_cache",
    "set_active_cache",
]

#: Bump when the optimizer's output semantics change incompatibly, so
#: stale on-disk entries from older code are never reused.  v2: results
#: carry the numerics-guard optimization certificate (evaluations, event
#: counts, refinement movement) and serialize via
#: ``OptimizationResult.to_dict``.
_KEY_VERSION = 2


def _canonical(value):
    """Make options JSON-canonical (tuples -> lists, sorted dict keys)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def cache_key(
    system: SystemSpec,
    technique: str,
    model_options: Mapping | None = None,
    sweep_options: Mapping | None = None,
) -> str:
    """Content hash identifying one optimization problem.

    Includes every numerical field of the system spec but *not* its name
    or description: two specs with identical physics share a key.
    """
    payload = {
        "v": _KEY_VERSION,
        "mtbf": system.mtbf,
        "probs": list(system.level_probabilities),
        "ckpt": list(system.checkpoint_times),
        "restart": None if system.restart_times is None else list(system.restart_times),
        "T_B": system.baseline_time,
        "technique": technique.lower(),
        "model_options": _canonical(model_options or {}),
        "sweep_options": _canonical(sweep_options or {}),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


def _result_to_dict(result: OptimizationResult) -> dict:
    # Canonical serialization lives on the dataclass itself; the cache
    # adds only the checksum envelope.
    return result.to_dict()


def _entry_checksum(payload: dict) -> str:
    """Content checksum of one on-disk entry's payload dict."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: One-shot stderr warning guard for quarantined entries (per process).
_WARNED_CORRUPT_ENTRY = False


def _result_from_dict(data: dict) -> OptimizationResult:
    return OptimizationResult.from_dict(data)


@dataclass
class CacheStats:
    """Hit/miss counters; ``disk_hits`` is the subset of hits read from disk."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.disk_hits, self.stores)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.disk_hits - earlier.disk_hits,
            self.stores - earlier.stores,
        )

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.disk_hits += other.disk_hits
        self.stores += other.stores

    def describe(self) -> str:
        out = f"{self.hits} hits, {self.misses} misses"
        if self.disk_hits:
            out += f" ({self.disk_hits} from disk)"
        return out


class OptimizationCache:
    """In-memory LRU of :class:`OptimizationResult`, with optional disk store.

    Parameters
    ----------
    cache_dir:
        When given, every entry is also persisted as
        ``cache_dir/<key>.json`` and lookups fall back to disk on a
        memory miss — this is what makes results shareable across
        scenario worker processes and across CLI invocations.
    max_entries:
        In-memory LRU bound; disk entries are never evicted.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._memory: OrderedDict[str, OptimizationResult] = OrderedDict()
        self._max_entries = max_entries
        self._dir = Path(cache_dir) if cache_dir is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._dir

    def __len__(self) -> int:
        return len(self._memory)

    def _remember(self, key: str, result: OptimizationResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self._max_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Move an unverifiable entry aside (``<key>.corrupt``), warn once."""
        global _WARNED_CORRUPT_ENTRY
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return  # raced with another worker or already gone: a plain miss
        if not _WARNED_CORRUPT_ENTRY:
            _WARNED_CORRUPT_ENTRY = True
            print(
                f"warning: optimization-cache entry {path.name} failed "
                f"verification ({reason}); quarantined to {target.name} and "
                "treated as a miss (further quarantines are silent)",
                file=sys.stderr,
            )

    def _read_disk(self, key: str) -> OptimizationResult | None:
        """Load + verify one disk entry; quarantine anything untrustworthy."""
        path = self._dir / f"{key}.json"
        try:
            raw = path.read_text()
        except OSError:
            return None  # no entry (or unreadable): a plain miss
        try:
            data = json.loads(raw)
            stated = data.pop("sha256")
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path, "not a checksummed JSON entry")
            return None
        if not isinstance(data, dict) or _entry_checksum(data) != stated:
            self._quarantine(path, "sha256 mismatch")
            return None
        try:
            return _result_from_dict(data)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "verified but unparseable")
            return None

    def get(self, key: str) -> OptimizationResult | None:
        """Look up ``key`` (memory first, then verified disk); count hit/miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return cached
        if self._dir is not None:
            result = self._read_disk(key)
            if result is not None:
                self._remember(key, result)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: OptimizationResult) -> None:
        """Store ``result`` in memory and (atomically, checksummed) on disk."""
        self._remember(key, result)
        self.stats.stores += 1
        if self._dir is None:
            return
        payload = _result_to_dict(result)
        blob = json.dumps({**payload, "sha256": _entry_checksum(payload)})
        fd, tmp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, self._dir / f"{key}.json")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_compute(
        self,
        system: SystemSpec,
        technique: str,
        compute: Callable[[], OptimizationResult],
        model_options: Mapping | None = None,
        sweep_options: Mapping | None = None,
    ) -> OptimizationResult:
        """Return the cached result for this problem, computing on a miss."""
        key = cache_key(system, technique, model_options, sweep_options)
        cached = self.get(key)
        if cached is not None:
            return cached
        result = compute()
        self.put(key, result)
        return result


# ----------------------------------------------------------------------
# Process-wide active cache.  The CLI installs one for the whole run; the
# scenario scheduler's worker initializer installs a per-worker cache
# pointing at the same directory so workers share the disk store.
_ACTIVE: OptimizationCache | None = None


def set_active_cache(cache: OptimizationCache | None) -> OptimizationCache | None:
    """Install ``cache`` as the process-wide default; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


def get_active_cache() -> OptimizationCache | None:
    """The process-wide cache consulted by ``optimize_technique`` (may be None)."""
    return _ACTIVE
