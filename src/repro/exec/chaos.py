"""First-party chaos-injection harness for the scenario scheduler.

Fault-injection tests should exercise the *real* ``ProcessPoolExecutor``
path — a mocked pool cannot reproduce ``BrokenProcessPool`` semantics,
initializer re-runs, or torn journal writes.  This module arms the
scheduler's worker initializer and per-chunk execution hook with faults
described by two environment variables (inherited by worker processes):

``REPRO_CHAOS``
    Comma-separated directives:

    * ``kill-worker:N`` — the N-th worker process to initialize (0-based
      across pool rebuilds) calls ``os._exit`` at its first chunk,
      simulating a segfault and breaking the pool.
    * ``kill-task:K`` / ``kill-task:KxR`` — the worker executing chunk
      index ``K`` dies, ``R`` times total (default once); repeats
      exercise the pool-rebuild ladder up to serial fallback.
    * ``raise-task:K`` / ``raise-task:KxR`` — chunk ``K`` raises a
      :class:`ChaosError`, ``R`` times total; exercises the retry path.
    * ``latency-ms:MS`` — every chunk sleeps ``MS`` milliseconds first;
      widens the window for kill-the-driver tests.

    Service-side directives (consumed by :mod:`repro.service`):

    * ``slow-handler:MS`` — every HTTP handler stalls ``MS`` milliseconds
      before doing any work; proves request deadlines fire (a client must
      see ``504``, never a hung socket).
    * ``drop-connection:K`` / ``drop-connection:KxR`` — the server slams
      the ``K``-th accepted request's connection shut without writing a
      response, ``R`` times total; clients must surface a connection
      error promptly and the server must keep serving.
    * ``crash-plan:K`` / ``crash-plan:KxR`` — the service worker process
      computing plan request ``K`` calls ``os._exit`` mid-optimization,
      ``R`` times total; exercises the supervisor's pool rebuild and the
      circuit breaker (never fires in the driver process, so the serial
      fallback survives the same directive).

``REPRO_CHAOS_DIR``
    A directory for cross-process once-only bookkeeping (marker files
    claimed with ``O_CREAT | O_EXCL``), so a fault fires its budgeted
    number of times *across* workers, rebuilds and retries.  Required by
    every directive except ``latency-ms``.

Kill directives only ever fire inside scheduler worker processes — the
serial fallback path (and plain ``workers=1`` runs) must not shoot the
driver.  For corrupting artifacts *at rest* (cache entries, journals),
tests call :func:`truncate_file` / :func:`corrupt_file` directly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ENV_CHAOS",
    "ENV_CHAOS_DIR",
    "chaos_config",
    "claim_drop_connection",
    "corrupt_file",
    "on_plan_task",
    "on_task",
    "on_worker_start",
    "service_slow_seconds",
    "truncate_file",
]

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_DIR = "REPRO_CHAOS_DIR"

#: Exit status used by injected worker kills (mirrors SIGKILL's 128+9).
KILL_EXIT_CODE = 137


class ChaosError(RuntimeError):
    """The injected failure raised by ``raise-task`` directives."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed form of ``REPRO_CHAOS`` (+ the marker directory)."""

    kill_worker: frozenset[int] = frozenset()
    kill_task: dict[int, int] = field(default_factory=dict)
    raise_task: dict[int, int] = field(default_factory=dict)
    latency: float = 0.0
    slow_handler: float = 0.0
    drop_connection: dict[int, int] = field(default_factory=dict)
    crash_plan: dict[int, int] = field(default_factory=dict)
    dir: Path | None = None

    @property
    def needs_dir(self) -> bool:
        return bool(
            self.kill_worker
            or self.kill_task
            or self.raise_task
            or self.drop_connection
            or self.crash_plan
        )


def _parse_times(arg: str) -> tuple[int, int]:
    """``"K"`` or ``"KxR"`` -> (index, repeat count)."""
    index, _, times = arg.partition("x")
    return int(index), int(times) if times else 1


def _parse(spec: str, dir_value: str | None) -> ChaosConfig:
    kill_worker: set[int] = set()
    kill_task: dict[int, int] = {}
    raise_task: dict[int, int] = {}
    drop_connection: dict[int, int] = {}
    crash_plan: dict[int, int] = {}
    latency = 0.0
    slow_handler = 0.0
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        name, sep, arg = raw.partition(":")
        if not sep:
            raise ValueError(f"chaos directive {raw!r} is missing its ':ARG'")
        try:
            if name == "kill-worker":
                kill_worker.add(int(arg))
            elif name == "kill-task":
                index, times = _parse_times(arg)
                kill_task[index] = times
            elif name == "raise-task":
                index, times = _parse_times(arg)
                raise_task[index] = times
            elif name == "latency-ms":
                latency = float(arg) / 1000.0
            elif name == "slow-handler":
                slow_handler = float(arg) / 1000.0
            elif name == "drop-connection":
                index, times = _parse_times(arg)
                drop_connection[index] = times
            elif name == "crash-plan":
                index, times = _parse_times(arg)
                crash_plan[index] = times
            else:
                raise ValueError(
                    f"unknown chaos directive {name!r}; known: kill-worker, "
                    "kill-task, raise-task, latency-ms, slow-handler, "
                    "drop-connection, crash-plan"
                )
        except ValueError as err:
            if "chaos directive" in str(err):
                raise
            raise ValueError(f"bad chaos directive {raw!r}: {err}") from err
    config = ChaosConfig(
        kill_worker=frozenset(kill_worker),
        kill_task=kill_task,
        raise_task=raise_task,
        latency=latency,
        slow_handler=slow_handler,
        drop_connection=drop_connection,
        crash_plan=crash_plan,
        dir=Path(dir_value) if dir_value else None,
    )
    if config.needs_dir and config.dir is None:
        raise ValueError(
            f"{ENV_CHAOS}={spec!r} needs {ENV_CHAOS_DIR} set to a directory "
            "for its cross-process once-only bookkeeping"
        )
    return config


#: Memoized (spec, dir) -> config, so per-chunk hooks don't re-parse.
_MEMO: tuple[tuple[str, str | None], ChaosConfig] | None = None


def chaos_config() -> ChaosConfig | None:
    """The active chaos configuration, or ``None`` (the common case)."""
    global _MEMO
    spec = os.environ.get(ENV_CHAOS)
    if not spec:
        return None
    key = (spec, os.environ.get(ENV_CHAOS_DIR))
    if _MEMO is None or _MEMO[0] != key:
        _MEMO = (key, _parse(*key))
    return _MEMO[1]


def _claim(config: ChaosConfig, name: str, budget: int) -> bool:
    """Atomically claim one of ``budget`` firings of fault ``name``.

    Marker files in the chaos dir make the budget global across worker
    processes, pool rebuilds and retries: each firing owns one marker,
    and once all are claimed the fault never fires again.
    """
    config.dir.mkdir(parents=True, exist_ok=True)
    for i in range(budget):
        try:
            fd = os.open(
                config.dir / f"fired-{name}-{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


#: Ordinal this worker claimed at initialization (None outside workers
#: or when no kill-worker directive targets it).
_ARMED_KILL_ORDINAL: int | None = None


def on_worker_start() -> None:
    """Scheduler worker initializer hook: claim an ordinal, arm kills."""
    global _ARMED_KILL_ORDINAL
    _ARMED_KILL_ORDINAL = None
    config = chaos_config()
    if config is None or not config.kill_worker:
        return
    ordinal = 0
    config.dir.mkdir(parents=True, exist_ok=True)
    while True:  # claim the next free worker ordinal
        try:
            fd = os.open(
                config.dir / f"worker-{ordinal}",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            ordinal += 1
            continue
        os.close(fd)
        break
    if ordinal in config.kill_worker:
        _ARMED_KILL_ORDINAL = ordinal


def on_task(index: int, in_worker: bool) -> None:
    """Per-chunk hook: inject latency, death or an exception for ``index``.

    Kills are suppressed outside worker processes so chaos can never
    take down the driver (the serial-fallback path must survive the
    very faults that broke the pool).
    """
    config = chaos_config()
    if config is None:
        return
    if config.latency:
        time.sleep(config.latency)
    if in_worker:
        if _ARMED_KILL_ORDINAL is not None and _claim(
            config, f"kill-worker-{_ARMED_KILL_ORDINAL}", 1
        ):
            os._exit(KILL_EXIT_CODE)
        budget = config.kill_task.get(index)
        if budget and _claim(config, f"kill-task-{index}", budget):
            os._exit(KILL_EXIT_CODE)
    budget = config.raise_task.get(index)
    if budget and _claim(config, f"raise-task-{index}", budget):
        raise ChaosError(f"chaos: injected failure in chunk {index}")


# ----------------------------------------------------------------------
# Service-side hooks (consumed by repro.service)


def service_slow_seconds() -> float:
    """Seconds every service handler must stall (``slow-handler`` directive).

    Unbudgeted by design: a slow dependency stays slow until the operator
    fixes it, so every request pays — the deadline machinery, not luck,
    must keep clients unblocked.
    """
    config = chaos_config()
    return config.slow_handler if config is not None else 0.0


def claim_drop_connection(index: int) -> bool:
    """Whether the server should slam request ``index``'s connection shut."""
    config = chaos_config()
    if config is None:
        return False
    budget = config.drop_connection.get(index)
    return bool(budget and _claim(config, f"drop-connection-{index}", budget))


def on_plan_task(index: int) -> None:
    """Hook inside the service's plan computation for request ``index``.

    ``crash-plan`` kills the hosting process — but only when it *is* a
    pool worker (``multiprocessing.parent_process()`` is set).  In the
    supervisor's serial-fallback mode the same computation runs in the
    driver, where the directive must not fire: the fallback exists to
    survive exactly these crashes.
    """
    config = chaos_config()
    if config is None:
        return
    budget = config.crash_plan.get(index)
    if not budget:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return
    if _claim(config, f"crash-plan-{index}", budget):
        os._exit(KILL_EXIT_CODE)


# ----------------------------------------------------------------------
# At-rest corruption helpers (for cache/journal integrity tests)


def truncate_file(path: str | os.PathLike, keep_bytes: int = 0) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (torn write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, keep_bytes)])
    return path


def corrupt_file(path: str | os.PathLike, garbage: bytes = b'\x00{"corrupt') -> Path:
    """Overwrite the head of ``path`` with ``garbage`` (bit rot)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(garbage + data[len(garbage):])
    return path
