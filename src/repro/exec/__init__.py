"""Experiment execution layer: scenario scheduling, caching, stage metrics.

The experiment harness runs many independent (system, technique, options)
*scenarios* — one per bar of a figure — each consisting of an expensive
optimization stage (the Section III-C sweep) followed by a simulation
stage.  This package provides the shared machinery that makes those runs
fast and reusable:

* :mod:`~repro.exec.scheduler` — fans independent scenarios across a
  process pool with deterministic, order-stable result collection
  (:func:`run_scenarios` / :class:`ScenarioTask`);
* :mod:`~repro.exec.cache` — a content-addressed
  :class:`OptimizationCache` so each (system, technique, options) sweep
  is computed once and reused across figures, runs and benches;
* :mod:`~repro.exec.metrics` — per-stage wall-clock accounting reported
  by the CLI.

See README.md "Performance architecture" for the layer diagram.
"""

from .cache import (
    CacheStats,
    OptimizationCache,
    cache_key,
    get_active_cache,
    set_active_cache,
)
from .metrics import (
    format_stage_report,
    merge_stages,
    record_stage,
    stage_delta,
    stage_snapshot,
)
from .scheduler import ScenarioTask, resolve_sim_workers, run_scenarios

__all__ = [
    "CacheStats",
    "OptimizationCache",
    "ScenarioTask",
    "cache_key",
    "resolve_sim_workers",
    "format_stage_report",
    "get_active_cache",
    "merge_stages",
    "record_stage",
    "run_scenarios",
    "set_active_cache",
    "stage_delta",
    "stage_snapshot",
]
