"""Experiment execution layer: scenario scheduling, caching, stage metrics.

The experiment harness runs many independent (system, technique, options)
*scenarios* — one per bar of a figure — each consisting of an expensive
optimization stage (the Section III-C sweep) followed by a simulation
stage.  This package provides the shared machinery that makes those runs
fast and reusable:

* :mod:`~repro.exec.scheduler` — fans independent scenarios across a
  process pool with deterministic, order-stable result collection
  (:func:`run_scenarios` / :class:`ScenarioTask`);
* :mod:`~repro.exec.cache` — a content-addressed
  :class:`OptimizationCache` so each (system, technique, options) sweep
  is computed once and reused across figures, runs and benches;
* :mod:`~repro.exec.metrics` — per-stage wall-clock accounting reported
  by the CLI;
* :mod:`~repro.exec.resilience` — the fault-tolerance layer: the
  :class:`RetryPolicy` the scheduler retries under, the checksummed
  :class:`RunJournal` that makes runs resumable, and the structured
  :class:`StudyExecutionError` / :class:`StudyInterrupted` failures;
* :mod:`~repro.exec.chaos` — the env-var-driven fault-injection harness
  (``REPRO_CHAOS``) that fault-tolerance tests drive through the real
  process-pool path.

See README.md "Performance architecture" and "Resilient runs" for the
layer diagrams.
"""

from .cache import (
    CacheStats,
    OptimizationCache,
    cache_key,
    get_active_cache,
    set_active_cache,
)
from .metrics import (
    format_stage_report,
    merge_stages,
    record_stage,
    stage_delta,
    stage_snapshot,
)
from .resilience import (
    JournalAudit,
    JournalMismatchError,
    RetryPolicy,
    RunJournal,
    StudyExecutionError,
    StudyInterrupted,
    atomic_write_text,
    audit_journal,
    format_audit,
)
from .scheduler import ScenarioTask, resolve_sim_workers, run_scenarios

__all__ = [
    "CacheStats",
    "JournalAudit",
    "JournalMismatchError",
    "OptimizationCache",
    "RetryPolicy",
    "RunJournal",
    "ScenarioTask",
    "StudyExecutionError",
    "StudyInterrupted",
    "atomic_write_text",
    "audit_journal",
    "cache_key",
    "format_audit",
    "resolve_sim_workers",
    "format_stage_report",
    "get_active_cache",
    "merge_stages",
    "record_stage",
    "run_scenarios",
    "set_active_cache",
    "stage_delta",
    "stage_snapshot",
]
