"""Fault tolerance for study execution: retries, journals, structured errors.

The reproduction is *about* surviving failures mid-computation, and the
execution layer practices the same discipline on itself:

* :class:`RetryPolicy` — how the scheduler retries a failed scenario and
  when a repeatedly-broken process pool is abandoned for serial
  in-process execution.  Backoff is exponential with *deterministic*
  jitter derived from the run seed, so two identical invocations retry
  on identical timetables (no wall-clock randomness sneaks into runs).
* :class:`RunJournal` — an append-only, per-line checksummed JSONL file
  of completed per-scenario results (the ``repro-journal/1`` format).
  Every completed scenario is flushed and fsynced immediately, so a
  killed run — worker segfault, driver SIGKILL, Ctrl-C — leaves a valid
  journal behind and a re-invocation resumes from the first incomplete
  scenario, reproducing the finished rows bitwise from the journal
  instead of recomputing them.
* :class:`StudyExecutionError` / :class:`StudyInterrupted` — structured
  failures that carry the partial results and the run record instead of
  a bare traceback, so aborted runs stay diagnosable from artifacts.

Journal format (``repro-journal/1``)
------------------------------------
One JSON object per line, each carrying a ``"sha256"`` checksum of its
own canonical serialization (the Aupy-style silent-error guard: an entry
is never trusted unverified).  Two record kinds:

``{"kind": "study", "format": "repro-journal/1", "study": id,
"study_hash": h, "seed": s, "scenarios": n, "sha256": ...}``
    Opens (or re-opens, after a spec change) a study section.

``{"kind": "scenario", "study_hash": h, "index": i, "label": l,
"seed": derived, "outcome": {...}, "sha256": ...}``
    One completed scenario; ``outcome`` is the
    :class:`~repro.experiments.records.TechniqueOutcome` dict form,
    which round-trips floats exactly (JSON ``repr`` fidelity).

A truncated final line (the torn write of a killed process) and any
line failing its checksum are skipped with a single stderr warning;
entries are independent, so every *verified* line remains usable.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import sys
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # runtime import would cycle through experiments
    from ..experiments.records import TechniqueOutcome
    from ..scenarios.spec import StudySpec

__all__ = [
    "JOURNAL_FORMAT",
    "JournalAudit",
    "JournalMismatchError",
    "RetryPolicy",
    "RunJournal",
    "StudyExecutionError",
    "StudyInterrupted",
    "atomic_write_text",
    "audit_journal",
    "format_audit",
]

#: Journal schema identifier; bump on incompatible format changes.
JOURNAL_FORMAT = "repro-journal/1"


def atomic_write_text(path: str | os.PathLike, text: str) -> Path:
    """Write ``text`` to ``path`` via temp file + ``os.replace``.

    The same torn-write guard the optimization cache uses: a reader (or
    a crash mid-write) never sees a half-written file, only the old
    content or the new.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent or Path("."), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# Retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler retries failures and degrades on pool breakage.

    ``max_attempts`` bounds executions *per scenario* (first try
    included); ``max_pool_rebuilds`` bounds how many times a
    ``BrokenProcessPool`` is answered by building a fresh pool before
    the scheduler gives up on multiprocessing and finishes the remaining
    scenarios serially in-process.  Delays grow exponentially from
    ``base_delay`` with deterministic jitter: the jitter stream is keyed
    on ``(seed, key, attempt)``, so a given run retries on a
    reproducible timetable.
    """

    max_attempts: int = 3
    max_pool_rebuilds: int = 2
    base_delay: float = 0.1
    max_delay: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        if self.base_delay == 0:
            return 0.0
        rng = random.Random(zlib.crc32(f"{self.seed}/{key}/{attempt}".encode()))
        raw = self.base_delay * (2 ** (attempt - 1)) * (0.5 + rng.random())
        return min(raw, self.max_delay)


# ----------------------------------------------------------------------
# Structured failures


class StudyExecutionError(RuntimeError):
    """A study failed after retries were exhausted; partial results ride along.

    ``partial`` is the task-order result list with ``None`` holes for
    the scenarios that never completed, ``completed`` counts the filled
    ones, ``events`` is the retry/rebuild event log up to the failure,
    and ``record`` (set by :func:`~repro.scenarios.pipeline.execute_study`)
    is the partial :class:`~repro.scenarios.manifest.StudyRunRecord`.
    """

    def __init__(
        self,
        message: str,
        *,
        label: str = "",
        partial: list | None = None,
        completed: int = 0,
        events: list | None = None,
    ):
        super().__init__(message)
        self.label = label
        self.partial = partial if partial is not None else []
        self.completed = completed
        self.events = events if events is not None else []
        self.record: Any = None


class StudyInterrupted(KeyboardInterrupt):
    """Ctrl-C mid-study, with the partial run record attached.

    Subclasses :class:`KeyboardInterrupt` so generic interrupt handling
    (and the 130 exit convention) still applies; the CLI uses the
    attached ``record`` to emit an ``"aborted"`` manifest.
    """

    def __init__(self, message: str = "", *, completed: int = 0):
        super().__init__(message)
        self.completed = completed
        self.record: Any = None


class JournalMismatchError(ValueError):
    """A journal's recorded study does not match the spec being executed."""


# ----------------------------------------------------------------------
# Run journal


def _checksum(record: dict) -> str:
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class RunJournal:
    """Append-only checksummed JSONL journal of completed scenarios.

    One journal file can hold several study sections (the CLI's ``all``
    shares one journal across its seven studies); scenario entries are
    keyed by ``study_hash``, and a new ``study`` header for an already-
    seen study id supersedes the old section (spec changed -> old
    entries are unreachable for resume, by construction).

    Appends are flushed and fsynced per entry, so the journal is crash-
    consistent: at worst the final line is torn, and the loader skips
    unverifiable lines.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fh = None
        #: study id -> most recent study_hash headered for it
        self._latest: dict[str, str] = {}
        #: study_hash -> {scenario index -> verified entry dict}
        self._entries: dict[str, dict[int, dict]] = {}
        self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return
        bad = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            record = self._verify(line)
            if record is None:
                bad += 1
                continue
            if record.get("kind") == "study":
                self._latest[str(record["study"])] = str(record["study_hash"])
            elif record.get("kind") == "scenario":
                section = self._entries.setdefault(str(record["study_hash"]), {})
                section[int(record["index"])] = record
        if bad:
            print(
                f"warning: journal {self.path}: skipped {bad} corrupt/"
                "truncated line(s); only checksum-verified entries are resumed",
                file=sys.stderr,
            )

    @staticmethod
    def _verify(line: str) -> dict | None:
        """Parse one journal line; ``None`` unless its checksum verifies."""
        try:
            record = json.loads(line)
            stated = record.pop("sha256")
        except (ValueError, KeyError, TypeError, AttributeError):
            return None
        if not isinstance(record, dict) or _checksum(record) != stated:
            return None
        return record

    # -- querying ------------------------------------------------------
    def recorded_hash(self, study_id: str) -> str | None:
        """The study_hash of the latest journaled section for ``study_id``."""
        return self._latest.get(study_id)

    def resume_state(self, study: "StudySpec") -> dict[int, "TechniqueOutcome"]:
        """Completed outcomes journaled for exactly this study spec.

        Raises :class:`JournalMismatchError` when the journal's latest
        section for this study id was written by a *different* spec
        (changed seed/trials/scenarios -> different ``study_hash``) —
        resuming would silently mix incompatible rows.
        """
        from ..experiments.records import TechniqueOutcome

        recorded = self._latest.get(study.study_id)
        if recorded is None:
            return {}
        expected = study.study_hash()
        if recorded != expected:
            raise JournalMismatchError(
                f"journal {self.path} records study {study.study_id!r} with "
                f"hash {recorded[:12]}..., but the spec being executed hashes "
                f"to {expected[:12]}... — the study definition changed "
                "(seed, trials, scenarios or options); pass --no-resume to "
                "start fresh or point --resume at the matching journal"
            )
        out: dict[int, TechniqueOutcome] = {}
        for index, entry in self._entries.get(expected, {}).items():
            if 0 <= index < len(study.scenarios):
                out[index] = TechniqueOutcome.from_dict(entry["outcome"])
        return out

    # -- writing -------------------------------------------------------
    def _append(self, record: dict) -> None:
        record = dict(record)
        record["sha256"] = _checksum(record)
        if self._fh is None:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def begin_study(self, study: "StudySpec") -> None:
        """Open a section for ``study`` (no-op when it is already current)."""
        study_hash = study.study_hash()
        if self._latest.get(study.study_id) == study_hash:
            return
        self._append(
            {
                "kind": "study",
                "format": JOURNAL_FORMAT,
                "study": study.study_id,
                "study_hash": study_hash,
                "seed": study.seed,
                "scenarios": len(study.scenarios),
            }
        )
        self._latest[study.study_id] = study_hash

    def record_scenario(
        self,
        study_hash: str,
        index: int,
        label: str,
        seed: int | None,
        outcome: "TechniqueOutcome",
    ) -> None:
        """Journal one completed scenario (flushed + fsynced before return)."""
        entry = {
            "kind": "scenario",
            "study_hash": study_hash,
            "index": int(index),
            "label": label,
            "seed": seed,
            "outcome": outcome.to_dict(),
        }
        self._append(entry)
        self._entries.setdefault(study_hash, {})[int(index)] = entry

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Journal audit (``repro journal``)


@dataclass
class JournalAudit:
    """What a checksum audit of one journal file found.

    ``corrupt`` counts *terminated* lines that fail parsing or their own
    checksum — evidence of real damage (bit rot, concurrent writers,
    hand edits).  A torn **tail** — a final line without a terminating
    newline that does not verify — is the expected artifact of a killed
    process and is reported separately (``torn_tail``), not as
    corruption: the journal's append discipline guarantees at most one
    such line, and resume skips it by construction.

    ``sections`` holds one entry per ``study`` header, in file order:
    study id and hash, declared scenario count, the verified completed
    indices, the pending (missing) indices, and whether a later header
    for the same study id superseded the section (its entries are
    unreachable for resume).
    """

    path: Path
    lines: int = 0
    verified: int = 0
    corrupt: int = 0
    torn_tail: bool = False
    orphans: int = 0
    sections: list = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sections is None:
            self.sections = []

    @property
    def ok(self) -> bool:
        """Whether the journal is fully trustworthy (torn tail excused)."""
        return self.corrupt == 0 and self.orphans == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "ok": self.ok,
            "lines": self.lines,
            "verified": self.verified,
            "corrupt": self.corrupt,
            "torn_tail": self.torn_tail,
            "orphans": self.orphans,
            "sections": list(self.sections),
        }


def audit_journal(path: str | os.PathLike) -> JournalAudit:
    """Verify every line of a run journal and summarize its sections.

    Unlike :class:`RunJournal`'s loader — which tolerates damage to keep
    resume available — the audit *accounts for* every line: checksums
    verified, corrupt lines counted, the torn tail identified, and each
    study section summarized with its completed and pending scenario
    indices.  Scenario entries whose ``study_hash`` matches no header
    are counted as ``orphans`` (they would never be resumed).

    Raises :class:`OSError` when the file cannot be read.
    """
    path = Path(path)
    text = path.read_text()
    audit = JournalAudit(path=path)
    raw_lines = text.splitlines()
    #: study_hash -> section dict (sections keeps file order)
    by_hash: dict[str, dict] = {}
    latest: dict[str, dict] = {}
    for i, line in enumerate(raw_lines):
        if not line.strip():
            continue
        audit.lines += 1
        record = RunJournal._verify(line)
        if record is None:
            is_tail = i == len(raw_lines) - 1 and not text.endswith("\n")
            if is_tail:
                audit.torn_tail = True
            else:
                audit.corrupt += 1
            continue
        audit.verified += 1
        if record.get("kind") == "study":
            section = {
                "study": str(record["study"]),
                "study_hash": str(record["study_hash"]),
                "declared": int(record.get("scenarios", 0)),
                "completed": [],
                "superseded": False,
            }
            previous = latest.get(section["study"])
            if previous is not None:
                previous["superseded"] = True
            latest[section["study"]] = section
            by_hash[section["study_hash"]] = section
            audit.sections.append(section)
        elif record.get("kind") == "scenario":
            section = by_hash.get(str(record.get("study_hash")))
            if section is None:
                audit.orphans += 1
            else:
                index = int(record["index"])
                if index not in section["completed"]:
                    section["completed"].append(index)
    for section in audit.sections:
        section["completed"].sort()
        done = set(section["completed"])
        section["pending"] = [
            i for i in range(section["declared"]) if i not in done
        ]
    return audit


def format_audit(audit: JournalAudit) -> str:
    """Human-readable audit summary (the ``repro journal`` output)."""
    lines = [
        f"journal {audit.path}: {audit.lines} line(s), "
        f"{audit.verified} verified, {audit.corrupt} corrupt"
        + (", torn tail" if audit.torn_tail else "")
        + (f", {audit.orphans} orphan entr(y/ies)" if audit.orphans else "")
    ]
    for s in audit.sections:
        status = "superseded" if s["superseded"] else (
            "complete" if not s["pending"] else "resumable"
        )
        lines.append(
            f"  study {s['study']!r} [{s['study_hash'][:12]}...] — "
            f"{len(s['completed'])}/{s['declared']} scenario(s) journaled "
            f"({status})"
        )
        if s["pending"] and not s["superseded"]:
            preview = ", ".join(str(i) for i in s["pending"][:8])
            more = (
                f" (+{len(s['pending']) - 8} more)"
                if len(s["pending"]) > 8
                else ""
            )
            lines.append(f"    pending: {preview}{more}")
    if not audit.sections:
        lines.append("  (no study sections)")
    lines.append(
        "verdict: "
        + (
            "clean — every entry checksum-verified"
            if audit.ok and not audit.torn_tail
            else "usable — torn tail skipped on resume; all other entries verified"
            if audit.ok
            else "CORRUPT — unverifiable entries present; resume will skip them"
        )
    )
    return "\n".join(lines)
