"""Scenario scheduler: order-stable fan-out of independent experiment units.

Every figure of the reproduction is a flat list of independent
(system, technique, options) scenarios, each internally sequential
(optimize, then simulate).  The scheduler runs such a list either inline
(``workers <= 1``) or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
and always returns results **in task order**, so experiment rows are
byte-identical to a serial run — determinism is carried by the tasks
themselves (per-trial seeds are derived from ``SeedSequence.spawn``, which
is scheduling-independent; see :func:`repro.simulator.run.trial_seeds`).

Worker processes are initialized with:

* a process-local :class:`~repro.exec.cache.OptimizationCache` pointing at
  the same directory as the parent's active cache (when it has one), so
  sweeps are shared across workers and runs;
* the simulator's *inline mode* (see
  :func:`repro.simulator.run.set_inline_mode`), so a scenario running in a
  worker can never spawn a second, nested process pool for its trials;
* the parent's process-wide trial-engine default (see
  :func:`repro.simulator.run.set_default_engine`), so ``--engine`` governs
  every worker no matter the pool start method.

Each task additionally ships its stage wall-clock and cache-stats deltas
back to the parent, so CLI reporting sees the whole run's totals no matter
where the work executed.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from . import metrics
from .cache import CacheStats, OptimizationCache, get_active_cache, set_active_cache

__all__ = ["ScenarioTask", "resolve_sim_workers", "run_scenarios"]

#: One-shot warning guard for :func:`resolve_sim_workers` (per process).
_WARNED_SIM_WORKERS = False


def resolve_sim_workers(workers: int, sim_workers: int) -> int:
    """The per-scenario trial-pool width actually honored.

    ``--sim-workers`` only applies when the scenario fan-out is serial
    (``workers <= 1``); otherwise pools would nest (DESIGN.md section 7).
    The drop used to be silent — now the first occurrence per process
    emits one stderr warning so a misconfigured command line is audible.
    """
    global _WARNED_SIM_WORKERS
    if workers > 1 and sim_workers > 1:
        if not _WARNED_SIM_WORKERS:
            _WARNED_SIM_WORKERS = True
            print(
                f"warning: --sim-workers {sim_workers} is ignored because "
                f"--workers {workers} > 1 parallelizes scenarios instead "
                "(pools never nest); trials run inline within each scenario",
                file=sys.stderr,
            )
        return 1
    return sim_workers

#: True inside a scheduler worker process; forces nested run_scenarios
#: calls (and, via the simulator's inline mode, nested trial pools) to run
#: serially instead of spawning pools within pools.
_IN_SCENARIO_WORKER = False


@dataclass(frozen=True)
class ScenarioTask:
    """One independent unit of experiment work.

    ``fn`` must be a module-level (picklable) callable; closures cannot
    cross the process boundary.  ``label`` is used in error reports only.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""


def _worker_init(cache_dir, cache_enabled: bool, default_engine: str = "auto") -> None:
    """Configure a scheduler worker: cache wiring + no nested pools.

    ``default_engine`` mirrors the parent process's simulator engine
    default (see :func:`repro.simulator.run.set_default_engine`) so the
    CLI's ``--engine`` flag governs trials no matter which process runs
    them — spawn-started workers would otherwise silently reset to
    ``"auto"``.
    """
    global _IN_SCENARIO_WORKER
    _IN_SCENARIO_WORKER = True
    if not cache_enabled:
        set_active_cache(None)
    else:
        inherited = get_active_cache()
        want_dir = None if cache_dir is None else str(cache_dir)
        have_dir = (
            None
            if inherited is None or inherited.cache_dir is None
            else str(inherited.cache_dir)
        )
        # A fork-started worker inherits the parent's warm in-memory
        # cache; keep it when it points at the right disk store.
        if inherited is None or have_dir != want_dir:
            set_active_cache(OptimizationCache(cache_dir))

    from ..simulator import run as simulator_run

    simulator_run.set_inline_mode(True)
    simulator_run.set_default_engine(default_engine)


def _run_remote(task: ScenarioTask):
    """Execute one task in a worker, returning (result, stage/cache deltas)."""
    stage_before = metrics.stage_snapshot()
    cache = get_active_cache()
    cache_before = cache.stats.snapshot() if cache is not None else CacheStats()
    result = task.fn(*task.args, **task.kwargs)
    stage_after = metrics.stage_delta(stage_before)
    cache_after = cache.stats.delta(cache_before) if cache is not None else CacheStats()
    return result, stage_after, cache_after


def run_scenarios(
    tasks: Sequence[ScenarioTask],
    workers: int = 1,
) -> list[Any]:
    """Run ``tasks`` and return their results in task order.

    ``workers <= 1`` (or a single task, or a call from inside a scheduler
    worker) executes inline; otherwise tasks are distributed over a
    process pool.  Results are collected by submission index, never by
    completion order, so the output is identical either way.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers <= 1 or len(tasks) < 2 or _IN_SCENARIO_WORKER:
        return [task.fn(*task.args, **task.kwargs) for task in tasks]

    from ..simulator import run as simulator_run

    active = get_active_cache()
    cache_dir = None if active is None or active.cache_dir is None else str(active.cache_dir)
    results: list[Any] = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        initializer=_worker_init,
        initargs=(cache_dir, active is not None, simulator_run.get_default_engine()),
    ) as pool:
        futures = [pool.submit(_run_remote, task) for task in tasks]
        for i, fut in enumerate(futures):
            try:
                result, stage_d, cache_d = fut.result()
            except Exception as err:
                label = tasks[i].label or f"task {i}"
                raise RuntimeError(f"scenario {label!r} failed: {err}") from err
            results[i] = result
            metrics.merge_stages(stage_d)
            if active is not None:
                active.stats.merge(cache_d)
    return results
