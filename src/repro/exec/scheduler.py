"""Scenario scheduler: order-stable, fault-tolerant fan-out of experiment units.

Every figure of the reproduction is a flat list of independent
(system, technique, options) scenarios, each internally sequential
(optimize, then simulate).  The scheduler runs such a list either inline
(``workers <= 1``) or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
and always returns results **in task order**, so experiment rows are
byte-identical to a serial run — determinism is carried by the tasks
themselves (per-trial seeds are derived from ``SeedSequence.spawn``, which
is scheduling-independent; see :func:`repro.simulator.run.trial_seeds`).

Worker processes are initialized with:

* a process-local :class:`~repro.exec.cache.OptimizationCache` pointing at
  the same directory as the parent's active cache (when it has one), so
  sweeps are shared across workers and runs;
* the simulator's *inline mode* (see
  :func:`repro.simulator.run.set_inline_mode`), so a scenario running in a
  worker can never spawn a second, nested process pool for its trials;
* the parent's process-wide trial-engine default (see
  :func:`repro.simulator.run.set_default_engine`), so ``--engine`` governs
  every worker no matter the pool start method;
* the chaos harness (:mod:`repro.exec.chaos`), when ``REPRO_CHAOS`` is
  set, so fault-injection tests exercise this real pool path.

Each task additionally ships its stage wall-clock and cache-stats deltas
back to the parent, so CLI reporting sees the whole run's totals no matter
where the work executed.

Fault tolerance (the degradation ladder)
----------------------------------------
Failures are answered per the :class:`~repro.exec.resilience.RetryPolicy`:

1. a task raising an ordinary exception is retried in place, up to
   ``max_attempts`` executions with deterministic exponential backoff;
2. a dead worker (``BrokenProcessPool`` — segfault, OOM-kill, injected
   ``os._exit``) is answered by building a **fresh pool** and resubmitting
   every not-yet-completed task, up to ``max_pool_rebuilds`` times;
3. past that, the scheduler stops trusting multiprocessing entirely and
   finishes the remaining tasks **serially in-process** (loud stderr
   note; recorded in ``events`` and thence the run manifest).

A *hung* worker is a failure too: with ``task_timeout`` set, any task
still running past its per-task deadline is cancelled into the same
ladder — its pool is torn down (worker processes terminated, so a wedged
C loop cannot stall the study), the timeout costs the task one retry
attempt, and a fresh pool resumes the remainder.  Timeout rebuilds do
**not** count toward ``max_pool_rebuilds`` (a slow task is not a broken
pool); exhausted attempts raise the usual structured error.  On the
serial path the task runs under a daemon-thread watchdog: past the
deadline the thread is abandoned (it cannot be killed) and the attempt
accounting proceeds identically.

Exhausted retries raise a structured
:class:`~repro.exec.resilience.StudyExecutionError` carrying the partial
result list instead of a bare traceback.  Completed results are reported
incrementally through ``on_result`` (completion order), which is how the
run journal stays crash-consistent: a result is journaled the moment it
exists, not when the whole study finishes.
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from . import chaos, metrics
from .cache import CacheStats, OptimizationCache, get_active_cache, set_active_cache
from .resilience import RetryPolicy, StudyExecutionError

__all__ = ["ScenarioTask", "resolve_sim_workers", "run_scenarios"]

#: One-shot warning guard for :func:`resolve_sim_workers` (per process).
_WARNED_SIM_WORKERS = False


def resolve_sim_workers(workers: int, sim_workers: int) -> int:
    """The per-scenario trial-pool width actually honored.

    ``--sim-workers`` only applies when the scenario fan-out is serial
    (``workers <= 1``); otherwise pools would nest (DESIGN.md section 7).
    The drop used to be silent — now the first occurrence per process
    emits one stderr warning so a misconfigured command line is audible.
    """
    global _WARNED_SIM_WORKERS
    if workers > 1 and sim_workers > 1:
        if not _WARNED_SIM_WORKERS:
            _WARNED_SIM_WORKERS = True
            print(
                f"warning: --sim-workers {sim_workers} is ignored because "
                f"--workers {workers} > 1 parallelizes scenarios instead "
                "(pools never nest); trials run inline within each scenario",
                file=sys.stderr,
            )
        return 1
    return sim_workers

#: True inside a scheduler worker process; forces nested run_scenarios
#: calls (and, via the simulator's inline mode, nested trial pools) to run
#: serially instead of spawning pools within pools.
_IN_SCENARIO_WORKER = False


@dataclass(frozen=True)
class ScenarioTask:
    """One independent unit of experiment work.

    ``fn`` must be a module-level (picklable) callable; closures cannot
    cross the process boundary.  ``label`` is used in error reports only.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""


def _worker_init(
    cache_dir,
    cache_enabled: bool,
    default_engine: str = "auto",
    auto_min_trials: int | None = None,
) -> None:
    """Configure a scheduler worker: cache wiring + no nested pools.

    ``default_engine`` mirrors the parent process's simulator engine
    default (see :func:`repro.simulator.run.set_default_engine`) so the
    CLI's ``--engine`` flag governs trials no matter which process runs
    them — spawn-started workers would otherwise silently reset to
    ``"auto"``.  ``auto_min_trials`` likewise mirrors the parent's
    batch/scalar crossover threshold (programmatic
    :func:`repro.simulator.run.set_auto_min_trials` overrides would
    otherwise be lost in spawn-started workers; the environment override
    survives either way).
    """
    global _IN_SCENARIO_WORKER
    _IN_SCENARIO_WORKER = True
    if not cache_enabled:
        set_active_cache(None)
    else:
        inherited = get_active_cache()
        want_dir = None if cache_dir is None else str(cache_dir)
        have_dir = (
            None
            if inherited is None or inherited.cache_dir is None
            else str(inherited.cache_dir)
        )
        # A fork-started worker inherits the parent's warm in-memory
        # cache; keep it when it points at the right disk store.
        if inherited is None or have_dir != want_dir:
            set_active_cache(OptimizationCache(cache_dir))

    from ..simulator import run as simulator_run

    simulator_run.set_inline_mode(True)
    simulator_run.set_default_engine(default_engine)
    if auto_min_trials is not None:
        simulator_run.set_auto_min_trials(auto_min_trials)
    chaos.on_worker_start()


def _run_remote(task: ScenarioTask, index: int = 0):
    """Execute one task in a worker, returning (result, stage/cache deltas)."""
    stage_before = metrics.stage_snapshot()
    cache = get_active_cache()
    cache_before = cache.stats.snapshot() if cache is not None else CacheStats()
    chaos.on_task(index, in_worker=True)
    result = task.fn(*task.args, **task.kwargs)
    stage_after = metrics.stage_delta(stage_before)
    cache_after = cache.stats.delta(cache_before) if cache is not None else CacheStats()
    return result, stage_after, cache_after


class _TaskState:
    """Bookkeeping shared by the inline, pooled and fallback paths."""

    def __init__(
        self,
        tasks: list[ScenarioTask],
        policy: RetryPolicy,
        events: list,
        on_result: Callable[[int, Any], None] | None,
    ):
        self.tasks = tasks
        self.policy = policy
        self.events = events
        self.on_result = on_result
        self.results: list[Any] = [None] * len(tasks)
        self.done: list[bool] = [False] * len(tasks)
        self.attempts: list[int] = [0] * len(tasks)

    def remaining(self) -> list[int]:
        return [i for i, d in enumerate(self.done) if not d]

    def complete(self, index: int, result: Any) -> None:
        self.results[index] = result
        self.done[index] = True
        if self.on_result is not None:
            self.on_result(index, result)

    def fail(self, index: int, err: Exception) -> None:
        """Count a failed attempt; raise when exhausted, else back off."""
        self.attempts[index] += 1
        label = self.tasks[index].label or f"task {index}"
        if self.attempts[index] >= self.policy.max_attempts:
            exc = StudyExecutionError(
                f"scenario {label!r} failed after "
                f"{self.attempts[index]} attempt(s): {err}",
                label=label,
                partial=list(self.results),
                completed=sum(self.done),
                events=list(self.events),
            )
            raise exc from err
        self.events.append(
            {
                "event": "task_retry",
                "task": label,
                "attempt": self.attempts[index],
                "error": str(err),
            }
        )
        print(
            f"warning: scenario {label!r} failed "
            f"(attempt {self.attempts[index]}/{self.policy.max_attempts}): "
            f"{err}; retrying",
            file=sys.stderr,
        )
        time.sleep(self.policy.delay(self.attempts[index], key=label))


def _call_with_watchdog(task: ScenarioTask, timeout: float):
    """Run ``task`` in a daemon thread, abandoning it past ``timeout``.

    The serial path's best-available cancellation: a Python thread cannot
    be killed, so a wedged task is left behind (daemon — it dies with the
    process) and a :class:`TimeoutError` feeds the retry ladder instead of
    the whole study stalling.
    """
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = task.fn(*task.args, **task.kwargs)
        except BaseException as err:  # delivered to the caller below
            box["error"] = err

    thread = threading.Thread(target=target, daemon=True, name="task-watchdog")
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TimeoutError(
            f"task still running after {timeout:.1f}s watchdog timeout "
            "(abandoned in a daemon thread)"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def _run_serial(state: _TaskState, task_timeout: float | None = None) -> None:
    """Execute every unfinished task inline, honoring the retry policy."""
    for i in state.remaining():
        while not state.done[i]:
            task = state.tasks[i]
            try:
                if not _IN_SCENARIO_WORKER:
                    chaos.on_task(i, in_worker=False)
                if task_timeout is None:
                    result = task.fn(*task.args, **task.kwargs)
                else:
                    result = _call_with_watchdog(task, task_timeout)
            except Exception as err:
                state.fail(i, err)  # raises StudyExecutionError when exhausted
            else:
                state.complete(i, result)


class _TasksHung(Exception):
    """Internal: pooled tasks exceeded ``task_timeout`` (indices attached)."""

    def __init__(self, indices: list[int]):
        super().__init__(f"{len(indices)} task(s) hung")
        self.indices = indices


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, killing its workers.

    ``shutdown(wait=False)`` alone would leave a wedged worker process
    running (and holding its CPU) forever; hung-task handling must
    terminate the processes themselves.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _drain_finished(state: _TaskState, fmap: dict, active) -> None:
    """Harvest results of futures that finished before a pool broke."""
    for fut in [f for f in fmap if f.done()]:
        index = fmap.pop(fut)
        try:
            result, stage_d, cache_d = fut.result()
        except BaseException:
            continue  # broken/cancelled/failed: will be resubmitted
        metrics.merge_stages(stage_d)
        if active is not None:
            active.stats.merge(cache_d)
        state.complete(index, result)


def run_scenarios(
    tasks: Sequence[ScenarioTask],
    workers: int = 1,
    retry: RetryPolicy | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    events: list | None = None,
    task_timeout: float | None = None,
) -> list[Any]:
    """Run ``tasks`` and return their results in task order.

    ``workers <= 1`` (or a single task, or a call from inside a scheduler
    worker) executes inline; otherwise tasks are distributed over a
    process pool.  Results are collected by submission index, never by
    completion order, so the output is identical either way.

    ``retry`` configures the fault-tolerance ladder (module docstring);
    the default :class:`~repro.exec.resilience.RetryPolicy` retries each
    task up to three executions and rebuilds a broken pool twice before
    degrading to serial.  ``on_result(index, result)`` fires the moment a
    task completes (completion order — the journaling hook), and retry/
    rebuild/degradation events are appended to ``events`` when given.

    ``task_timeout`` arms the per-task watchdog (seconds): a task still
    running past the deadline costs one retry attempt and its pool is
    torn down and rebuilt (module docstring, "hung worker").  ``None``
    (the default) preserves the historical wait-forever behavior.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task_timeout must be positive, got {task_timeout}")
    state = _TaskState(
        tasks,
        retry if retry is not None else RetryPolicy(),
        events if events is not None else [],
        on_result,
    )
    if workers <= 1 or len(tasks) < 2 or _IN_SCENARIO_WORKER:
        _run_serial(state, task_timeout)
        return state.results

    from ..simulator import run as simulator_run

    active = get_active_cache()
    cache_dir = None if active is None or active.cache_dir is None else str(active.cache_dir)
    initargs = (
        cache_dir,
        active is not None,
        simulator_run.get_default_engine(),
        simulator_run.get_auto_min_trials(),
    )
    rebuilds = 0
    pool = None
    try:
        while not all(state.done):
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(tasks)),
                initializer=_worker_init,
                initargs=initargs,
            )
            fmap: dict = {}
            deadlines: dict = {}

            def submit(index: int) -> None:
                fut = pool.submit(_run_remote, tasks[index], index)
                fmap[fut] = index
                if task_timeout is not None:
                    deadlines[fut] = time.monotonic() + task_timeout

            for i in state.remaining():
                submit(i)
            try:
                while fmap:
                    wait_timeout = None
                    if task_timeout is not None:
                        wait_timeout = max(
                            0.0, min(deadlines[f] for f in fmap) - time.monotonic()
                        )
                    finished, _ = wait(
                        list(fmap), timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in finished:
                        index = fmap.pop(fut)
                        deadlines.pop(fut, None)
                        try:
                            result, stage_d, cache_d = fut.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as err:
                            state.fail(index, err)  # raises when exhausted
                            submit(index)
                        else:
                            metrics.merge_stages(stage_d)
                            if active is not None:
                                active.stats.merge(cache_d)
                            state.complete(index, result)
                    if task_timeout is not None:
                        now = time.monotonic()
                        hung = sorted(
                            fmap[f] for f in fmap
                            if not f.done() and now >= deadlines[f]
                        )
                        if hung:
                            raise _TasksHung(hung)
                pool.shutdown()
                pool = None
            except _TasksHung as err:
                _drain_finished(state, fmap, active)
                _terminate_pool(pool)
                pool = None
                state.events.append(
                    {
                        "event": "task_timeout",
                        "tasks": [
                            state.tasks[i].label or f"task {i}"
                            for i in err.indices
                        ],
                        "timeout": task_timeout,
                    }
                )
                print(
                    f"warning: {len(err.indices)} scenario(s) exceeded the "
                    f"{task_timeout:.1f}s task watchdog; terminating the "
                    "pool and retrying them in a fresh one",
                    file=sys.stderr,
                )
                for index in err.indices:
                    # Counts one retry attempt; raises when exhausted.
                    state.fail(
                        index,
                        TimeoutError(
                            f"still running after {task_timeout:.1f}s "
                            "task watchdog timeout"
                        ),
                    )
            except BrokenProcessPool as err:
                _drain_finished(state, fmap, active)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                rebuilds += 1
                remaining = len(state.remaining())
                if rebuilds > state.policy.max_pool_rebuilds:
                    state.events.append(
                        {
                            "event": "serial_fallback",
                            "pool_failures": rebuilds,
                            "remaining": remaining,
                        }
                    )
                    print(
                        f"warning: process pool died {rebuilds} time(s) "
                        f"({err}); giving up on multiprocessing and running "
                        f"the remaining {remaining} scenario(s) serially "
                        "in-process",
                        file=sys.stderr,
                    )
                    _run_serial(state, task_timeout)
                    break
                state.events.append(
                    {
                        "event": "pool_rebuild",
                        "pool_failures": rebuilds,
                        "remaining": remaining,
                    }
                )
                print(
                    f"warning: a scenario worker died ({err}); rebuilding "
                    f"the process pool (rebuild {rebuilds}/"
                    f"{state.policy.max_pool_rebuilds}) and resubmitting "
                    f"{remaining} scenario(s)",
                    file=sys.stderr,
                )
                time.sleep(state.policy.delay(rebuilds, key="pool"))
    finally:
        if pool is not None:
            # Error/interrupt path: don't wait on in-flight work.
            pool.shutdown(wait=False, cancel_futures=True)
    return state.results
