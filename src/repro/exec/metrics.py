"""Per-stage wall-clock accounting for the experiment harness.

The runner's two schedulable stages (``optimize`` and ``simulate``) report
their elapsed time here; the scenario scheduler folds in the stage clocks
of its worker processes so the CLI can print one honest per-experiment
summary — how much time the sweeps took versus the trials, and how much
the optimization cache saved — without any experiment module carrying its
own stopwatch code.

Counters are process-global and monotonically increasing; callers take a
:func:`stage_snapshot` before a block of work and diff with
:func:`stage_delta` after, exactly like the cache's stats.

The module also provides the event-tier primitives the planning service's
telemetry builds on: :func:`percentile` (nearest-rank, the convention
latency SLOs use) and :class:`LatencyWindow`, a bounded sliding window of
per-event durations that summarizes to p50/p95/p99 without unbounded
memory — the "event-based -> aggregated" half of the three-tier metric
shape (SNIPPETS.md section 3).
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "LatencyWindow",
    "format_stage_report",
    "merge_stages",
    "percentile",
    "record_stage",
    "stage_delta",
    "stage_snapshot",
]

_LOCK = threading.Lock()
#: stage name -> [total seconds, number of recordings]
_STAGES: dict[str, list[float]] = {}


def record_stage(name: str, seconds: float) -> None:
    """Add ``seconds`` of wall-clock to stage ``name``."""
    with _LOCK:
        entry = _STAGES.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += 1


def stage_snapshot() -> dict[str, tuple[float, int]]:
    """Immutable copy of the current per-stage totals."""
    with _LOCK:
        return {name: (total, count) for name, (total, count) in _STAGES.items()}


def stage_delta(
    before: dict[str, tuple[float, int]],
    after: dict[str, tuple[float, int]] | None = None,
) -> dict[str, tuple[float, int]]:
    """Per-stage totals accumulated between two snapshots."""
    if after is None:
        after = stage_snapshot()
    out: dict[str, tuple[float, int]] = {}
    for name, (total, count) in after.items():
        b_total, b_count = before.get(name, (0.0, 0))
        if count - b_count > 0 or total - b_total > 0:
            out[name] = (total - b_total, count - b_count)
    return out


def merge_stages(delta: dict[str, tuple[float, int]]) -> None:
    """Fold a worker process's stage delta into this process's totals."""
    for name, (total, count) in delta.items():
        with _LOCK:
            entry = _STAGES.setdefault(name, [0.0, 0])
            entry[0] += total
            entry[1] += count


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    ``values`` must be sorted ascending and non-empty.  Nearest-rank
    (ceil(q/100 * n), 1-based) is the conservative SLO convention: the
    reported p99 is an actually-observed latency, never an interpolation
    below one.
    """
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    rank = max(1, min(len(values), -(-(q * len(values)) // 100)))
    return values[int(rank) - 1]


class LatencyWindow:
    """Bounded sliding window of event durations with percentile summary.

    The event tier of the three-tier metric shape: every completed event
    appends one duration (seconds); the window keeps the most recent
    ``limit`` of them plus lifetime count/total, and :meth:`summary`
    aggregates the window to p50/p95/p99/mean/max in milliseconds.
    Thread-safe — the service records from handler tasks while ``/health``
    summarizes concurrently.
    """

    def __init__(self, limit: int = 2048):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=limit)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._window.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    def summary(self) -> dict:
        """Aggregated view of the current window (empty -> zero counts)."""
        with self._lock:
            window = sorted(self._window)
            count = self.count
        if not window:
            return {"count": 0, "window": 0}
        to_ms = 1000.0
        return {
            "count": count,
            "window": len(window),
            "p50_ms": percentile(window, 50) * to_ms,
            "p95_ms": percentile(window, 95) * to_ms,
            "p99_ms": percentile(window, 99) * to_ms,
            "mean_ms": (sum(window) / len(window)) * to_ms,
            "max_ms": window[-1] * to_ms,
        }


def format_stage_report(delta: dict[str, tuple[float, int]]) -> str:
    """``"optimize 3.2s/55, simulate 41.0s/55"`` — for the CLI's stderr line."""
    parts = [
        f"{name} {total:.1f}s/{count}"
        for name, (total, count) in sorted(delta.items())
    ]
    return ", ".join(parts)
