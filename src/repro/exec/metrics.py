"""Per-stage wall-clock accounting for the experiment harness.

The runner's two schedulable stages (``optimize`` and ``simulate``) report
their elapsed time here; the scenario scheduler folds in the stage clocks
of its worker processes so the CLI can print one honest per-experiment
summary — how much time the sweeps took versus the trials, and how much
the optimization cache saved — without any experiment module carrying its
own stopwatch code.

Counters are process-global and monotonically increasing; callers take a
:func:`stage_snapshot` before a block of work and diff with
:func:`stage_delta` after, exactly like the cache's stats.
"""

from __future__ import annotations

import threading

__all__ = [
    "format_stage_report",
    "merge_stages",
    "record_stage",
    "stage_delta",
    "stage_snapshot",
]

_LOCK = threading.Lock()
#: stage name -> [total seconds, number of recordings]
_STAGES: dict[str, list[float]] = {}


def record_stage(name: str, seconds: float) -> None:
    """Add ``seconds`` of wall-clock to stage ``name``."""
    with _LOCK:
        entry = _STAGES.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += 1


def stage_snapshot() -> dict[str, tuple[float, int]]:
    """Immutable copy of the current per-stage totals."""
    with _LOCK:
        return {name: (total, count) for name, (total, count) in _STAGES.items()}


def stage_delta(
    before: dict[str, tuple[float, int]],
    after: dict[str, tuple[float, int]] | None = None,
) -> dict[str, tuple[float, int]]:
    """Per-stage totals accumulated between two snapshots."""
    if after is None:
        after = stage_snapshot()
    out: dict[str, tuple[float, int]] = {}
    for name, (total, count) in after.items():
        b_total, b_count = before.get(name, (0.0, 0))
        if count - b_count > 0 or total - b_total > 0:
            out[name] = (total - b_total, count - b_count)
    return out


def merge_stages(delta: dict[str, tuple[float, int]]) -> None:
    """Fold a worker process's stage delta into this process's totals."""
    for name, (total, count) in delta.items():
        with _LOCK:
            entry = _STAGES.setdefault(name, [0.0, 0])
            entry[0] += total
            entry[1] += count


def format_stage_report(delta: dict[str, tuple[float, int]]) -> str:
    """``"optimize 3.2s/55, simulate 41.0s/55"`` — for the CLI's stderr line."""
    parts = [
        f"{name} {total:.1f}s/{count}"
        for name, (total, count) in sorted(delta.items())
    ]
    return ", ".join(parts)
