"""Shared interfaces for checkpoint-interval models and optimizers.

Every technique the paper compares (Daly, Moody, Di, Benoit, Dauwe) is a
:class:`CheckpointModel`: given a :class:`~repro.systems.spec.SystemSpec`
it can *predict* the expected execution time of a candidate
:class:`~repro.core.plan.CheckpointPlan` and *optimize* over its own plan
space.  The simulator then measures each technique's chosen plan, which is
exactly the paper's experimental procedure (Section IV-C).

Objectives
----------
*What* the sweep optimizes is itself pluggable: an :class:`Objective`
turns model evaluations into a score the shared optimizer minimizes.
Two objectives are registered:

* ``"time"`` — minimize expected execution time (the paper's objective
  and the default; scores *are* the predicted times, so the swept plans
  are bitwise identical to the pre-objective code);
* ``"availability"`` — maximize the steady-state useful-work fraction
  (Saxena et al., arXiv:2410.18124), scored as ``-availability`` so the
  same minimizer applies.  Models exposing a native
  ``predict_availability_batch`` (the Dauwe family) are scored by it;
  for the rest, availability falls back to ``T_B / E[T]`` — the
  per-application work fraction, whose argmax coincides with the time
  optimum (documented degradation).

Register a new objective by adding an :class:`Objective` instance to
:data:`OBJECTIVES`; see DESIGN.md §11 for the full plug-in contract.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..systems.spec import SystemSpec
from .numerics import OptimizationCertificate
from .plan import CheckpointPlan

__all__ = [
    "CheckpointModel",
    "OBJECTIVES",
    "Objective",
    "OptimizationResult",
    "get_objective",
    "split_grid_counts",
]


def split_grid_counts(counts, tau0: np.ndarray):
    """Normalize a ``predict_time_batch`` counts argument for grid evaluation.

    The optimizer's batched sweep passes ``counts`` as a 2-D ``(V, C)``
    matrix of ``V`` candidate count vectors together with a 1-D ``tau0``
    grid of ``T`` points, expecting a ``(V, T)`` result.  This helper
    returns ``(count_columns, tau0)`` shaped for broadcasting: each count
    column as a ``(V, 1)`` array so the model's stage recursion evaluates
    the whole grid elementwise.  Plain 1-D/tuple counts pass through
    untouched, keeping the original per-vector semantics.
    """
    if isinstance(counts, np.ndarray) and counts.ndim == 2:
        if tau0.ndim != 1:
            raise ValueError(
                f"a counts grid needs a 1-D tau0 axis, got shape {tau0.shape}"
            )
        cols = tuple(
            counts[:, k].astype(float)[:, None] for k in range(counts.shape[1])
        )
        return cols, tau0
    return counts, tau0


class Objective(ABC):
    """What the shared sweep optimizes, expressed as a score to *minimize*.

    The optimizer's selection machinery (grid argmin, first-wins
    tie-breaking, golden-section polish, hill-climb) is objective-blind:
    it minimizes whatever :meth:`batch_scores` / :meth:`plan_score`
    return, with ``+inf`` meaning "infeasible under this objective" and
    NaN treated as grid poisoning.  :meth:`summarize` then translates the
    winning score back into the ``(predicted_time,
    predicted_efficiency)`` pair every report consumes.
    """

    #: Registry key, e.g. ``"time"`` or ``"availability"``.
    name: str = "abstract"

    @abstractmethod
    def batch_scores(
        self,
        model: "CheckpointModel",
        levels: tuple[int, ...],
        counts,
        tau0s: np.ndarray,
        **model_kwargs,
    ) -> np.ndarray:
        """Scores for a ``tau0`` vector (or a 2-D counts grid) — minimized.

        ``counts`` is a tuple for the per-vector path or a ``(V, C)``
        matrix for grid-capable models (see :func:`split_grid_counts`);
        the returned array mirrors the shape of the corresponding
        ``predict_time_batch`` call.  ``model_kwargs`` carries the
        optimizer's ``diagnostics=`` keyword for models that opt in.
        """

    @abstractmethod
    def plan_score(
        self, model: "CheckpointModel", plan: CheckpointPlan, **model_kwargs
    ) -> float:
        """Scalar score of one plan (the refinement's objective function)."""

    @abstractmethod
    def summarize(
        self, model: "CheckpointModel", plan: CheckpointPlan, score: float
    ) -> tuple[float, float]:
        """``(predicted_time, predicted_efficiency)`` for the winning plan."""


class TimeObjective(Objective):
    """Minimize expected execution time — the paper's Section III-C sweep.

    Scores *are* the model's predicted times, so plans, predicted times
    and efficiencies are bitwise identical to the pre-objective
    optimizer.
    """

    name = "time"

    def batch_scores(self, model, levels, counts, tau0s, **model_kwargs):
        batch = getattr(model, "predict_time_batch", None)
        if batch is not None:
            return np.asarray(batch(levels, counts, tau0s, **model_kwargs), dtype=float)
        return np.array(
            [
                model.predict_time(
                    CheckpointPlan(levels=levels, tau0=float(t), counts=counts)
                )
                for t in tau0s
            ],
            dtype=float,
        )

    def plan_score(self, model, plan, **model_kwargs):
        return model.predict_time(plan, **model_kwargs)

    def summarize(self, model, plan, score):
        T_B = model.system.baseline_time
        efficiency = min(1.0, T_B / score) if math.isfinite(score) else 0.0
        return score, efficiency


class AvailabilityObjective(Objective):
    """Maximize the useful-work fraction (Saxena et al., arXiv:2410.18124).

    Scored as ``-availability`` so the shared minimizer applies; plans
    with zero availability (e.g. level subsets leaving some severity
    unprotected, which in steady state eventually lose everything) score
    ``+inf`` — infeasible under this objective even when their expected
    *time* is finite.  That asymmetry is what makes availability-optimal
    plans differ from time-optimal ones.

    Models with a native ``predict_availability_batch`` /
    ``predict_availability`` (the Dauwe recursion family) are scored by
    their steady-state per-pattern availability.  Everything else
    degrades to ``T_B / E[T]`` — the whole-application useful-work
    fraction, which is monotone in predicted time and therefore selects
    the time-optimal plan (a documented predict-only degradation; Moody's
    predicted time is itself ``T_B / steady-state availability``, so for
    it the two framings coincide exactly).
    """

    name = "availability"

    def _scores_from(self, avail: np.ndarray) -> np.ndarray:
        return np.where(
            np.isnan(avail), math.nan, np.where(avail > 0.0, -avail, math.inf)
        )

    def batch_scores(self, model, levels, counts, tau0s, **model_kwargs):
        batch = getattr(model, "predict_availability_batch", None)
        if batch is not None:
            avail = np.asarray(
                batch(levels, counts, tau0s, **model_kwargs), dtype=float
            )
        else:
            times = TimeObjective.batch_scores(
                self, model, levels, counts, tau0s, **model_kwargs
            )
            with np.errstate(invalid="ignore"):
                avail = np.where(
                    np.isfinite(times), model.system.baseline_time / times, 0.0
                )
            avail = np.where(np.isnan(times), math.nan, avail)
        return self._scores_from(avail)

    def plan_score(self, model, plan, **model_kwargs):
        native = getattr(model, "predict_availability", None)
        if native is not None:
            avail = float(native(plan, **model_kwargs))
        else:
            t = model.predict_time(plan, **model_kwargs)
            avail = (
                model.system.baseline_time / t if math.isfinite(t) and t > 0 else 0.0
            )
        if math.isnan(avail):
            return math.nan
        return -avail if avail > 0.0 else math.inf

    def summarize(self, model, plan, score):
        availability = min(1.0, -score)
        # The winner's time prediction is recomputed for reporting (may
        # legitimately be +inf for availability-feasible plans whose
        # expected makespan diverges).
        return float(model.predict_time(plan)), availability


#: Registered objectives, keyed by :attr:`Objective.name`.
OBJECTIVES: dict[str, Objective] = {
    obj.name: obj for obj in (TimeObjective(), AvailabilityObjective())
}


def get_objective(objective: "str | Objective") -> Objective:
    """Resolve an objective name (or pass an instance through)."""
    if isinstance(objective, Objective):
        return objective
    try:
        return OBJECTIVES[objective]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown objective {objective!r}; registered: {sorted(OBJECTIVES)}"
        ) from None


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a checkpoint-interval optimization.

    Attributes
    ----------
    plan:
        The selected checkpoint schedule.
    predicted_time:
        The optimizing model's expected execution time for ``plan``
        (minutes).  This is the quantity shown as the "diamond" prediction
        markers in Figures 2, 4 and 5.  Under the ``availability``
        objective it is the reporting-only time prediction of the
        availability-optimal plan and may be ``+inf``.
    predicted_efficiency:
        ``T_B / predicted_time`` — the paper's efficiency metric — under
        the ``time`` objective; the predicted steady-state useful-work
        fraction under ``availability``.
    evaluations:
        Number of candidate plans the sweep evaluated (diagnostics).
    certificate:
        Bounded-iteration evidence for the sweep
        (:class:`~repro.core.numerics.OptimizationCertificate`): total
        evaluations spent, numerics events observed while optimizing, and
        whether refinement moved the sweep winner.  ``None`` for results
        produced before the guard layer (or deserialized from old cache
        entries).
    objective:
        Registered name of the objective that selected ``plan``
        (``"time"`` by default).  Serialized only when not ``"time"``,
        so results written before the objective layer round-trip
        unchanged.
    """

    plan: CheckpointPlan
    predicted_time: float
    predicted_efficiency: float
    evaluations: int = 0
    certificate: OptimizationCertificate | None = None
    objective: str = "time"

    def __post_init__(self) -> None:
        if math.isnan(self.predicted_time):
            raise ValueError("predicted_time is NaN (numerics-guard violation)")
        if not (self.predicted_time > 0):
            raise ValueError(f"predicted_time must be positive, got {self.predicted_time}")
        if math.isnan(self.predicted_efficiency):
            raise ValueError("predicted_efficiency is NaN (numerics-guard violation)")
        if not (0 < self.predicted_efficiency <= 1 + 1e-9):
            raise ValueError(
                f"predicted efficiency must be in (0, 1], got {self.predicted_efficiency}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; round-trips losslessly through :meth:`from_dict`.

        ``certificate`` is emitted only when present, so entries written
        by older code deserialize unchanged.
        """
        data: dict[str, Any] = {
            "plan": self.plan.to_dict(),
            "predicted_time": self.predicted_time,
            "predicted_efficiency": self.predicted_efficiency,
            "evaluations": self.evaluations,
        }
        if self.certificate is not None:
            data["certificate"] = self.certificate.to_dict()
        if self.objective != "time":
            data["objective"] = self.objective
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationResult":
        cert = data.get("certificate")
        return cls(
            plan=CheckpointPlan.from_dict(data["plan"]),
            predicted_time=float(data["predicted_time"]),
            predicted_efficiency=float(data["predicted_efficiency"]),
            evaluations=int(data.get("evaluations", 0)),
            certificate=(
                None if cert is None else OptimizationCertificate.from_dict(cert)
            ),
            objective=str(data.get("objective", "time")),
        )


class CheckpointModel(ABC):
    """A technique for predicting execution time and choosing intervals.

    Subclasses set :attr:`name` (the label used in figures and the
    experiment registry) and implement :meth:`predict_time` plus
    :meth:`candidate_level_subsets`; the bounded brute-force sweep of
    Section III-C is shared (see :mod:`repro.core.optimizer`).
    """

    #: Technique label, e.g. ``"dauwe"`` or ``"moody"``.
    name: str = "abstract"

    #: Whether this model's ``predict_time_batch`` accepts a 2-D ``(V, C)``
    #: counts matrix with a 1-D ``tau0`` grid and returns a ``(V, T)``
    #: array — the contract the optimizer's batched sweep relies on (see
    #: :func:`split_grid_counts`).  Models leaving this False are swept
    #: one count vector at a time.
    supports_grid_eval: bool = False

    #: Whether ``predict_time`` / ``predict_time_batch`` accept a
    #: keyword-only ``diagnostics=`` argument
    #: (:class:`~repro.core.numerics.ModelDiagnostics`) recording every
    #: clamp/overflow/divergence as a structured event.  The optimizer
    #: only threads its diagnostics through models that opt in, so
    #: third-party models with the plain signature keep working.
    supports_diagnostics: bool = False

    #: How faithfully the model prices the silent-error failure mode when
    #: constructed with ``silent_errors=``: ``"full"`` (verification cost,
    #: detection latency and recovery-level selection all threaded —
    #: the Dauwe recursion), ``"cost-only"`` (only the verification cost
    #: ``V`` inflates checkpoint writes — the closed-form baselines), or
    #: ``None`` (the model does not accept the option).
    silent_error_fidelity: str | None = None

    #: Whether the deployed protocol takes a checkpoint whose scheduled
    #: position coincides with application completion.  Length-*blind*
    #: techniques (Moody, Benoit) checkpoint on schedule because their
    #: model does not know the application is ending; length-aware
    #: techniques omit the pointless final write.  The experiment harness
    #: forwards this to the simulator (see Figure 5, Section IV-F).
    takes_scheduled_end_checkpoint: bool = False

    def __init__(self, system: SystemSpec):
        self.system = system

    # ------------------------------------------------------------------
    @abstractmethod
    def predict_time(self, plan: CheckpointPlan) -> float:
        """Expected wall-clock execution time (minutes) under ``plan``.

        Must return ``math.inf`` for plans the model deems hopeless rather
        than raising, so the optimizer can sweep freely.  NaN is never an
        acceptable return value — the numerics guard
        (:mod:`repro.core.numerics`) pins invalid cells to ``+inf`` and
        records why.
        """

    def predict_efficiency(self, plan: CheckpointPlan) -> float:
        """The paper's efficiency metric: ``T_B / E[T]`` for ``plan``."""
        t = self.predict_time(plan)
        if math.isnan(t):
            raise ValueError(
                f"model returned NaN time for {plan.describe()} "
                "(numerics-guard violation: predictions must be finite or +inf)"
            )
        if not (t > 0):
            raise ValueError(f"model returned non-positive time {t} for {plan.describe()}")
        if math.isinf(t):
            return 0.0
        return self.system.baseline_time / t

    @abstractmethod
    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """Level subsets this technique's plan space may use.

        Examples: Daly returns ``[(L,)]`` (PFS only); Moody returns the
        full ``[(1, .., L)]``; the Dauwe model returns every prefix
        ``(1..l)`` so that short applications may skip top levels
        (Section IV-F); Di returns the top-two-levels variants.
        """

    def optimize(
        self, objective: str | Objective = "time", **sweep_options
    ) -> OptimizationResult:
        """Select the plan optimizing ``objective`` under this model.

        Runs the bounded brute-force sweep of Section III-C over
        ``candidate_level_subsets() x tau0 grid x integer counts`` followed
        by a golden-section refinement of ``tau0``, scoring candidates with
        the registered :class:`Objective` (``"time"`` — the paper's, and
        the default — or ``"availability"``).  Keyword arguments are
        forwarded to :func:`repro.core.optimizer.sweep_plans`.
        """
        from .optimizer import sweep_plans  # local import to avoid a cycle

        return sweep_plans(self, objective=objective, **sweep_options)

    # ------------------------------------------------------------------
    def validate_plan(self, plan: CheckpointPlan) -> None:
        """Raise ``ValueError`` if ``plan`` refers to unknown system levels."""
        if plan.top_level > self.system.num_levels:
            raise ValueError(
                f"plan uses level {plan.top_level} but {self.system.name} "
                f"has only {self.system.num_levels} levels"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} on {self.system.name}>"
