"""Shared interfaces for checkpoint-interval models and optimizers.

Every technique the paper compares (Daly, Moody, Di, Benoit, Dauwe) is a
:class:`CheckpointModel`: given a :class:`~repro.systems.spec.SystemSpec`
it can *predict* the expected execution time of a candidate
:class:`~repro.core.plan.CheckpointPlan` and *optimize* over its own plan
space.  The simulator then measures each technique's chosen plan, which is
exactly the paper's experimental procedure (Section IV-C).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..systems.spec import SystemSpec
from .numerics import OptimizationCertificate
from .plan import CheckpointPlan

__all__ = ["CheckpointModel", "OptimizationResult", "split_grid_counts"]


def split_grid_counts(counts, tau0: np.ndarray):
    """Normalize a ``predict_time_batch`` counts argument for grid evaluation.

    The optimizer's batched sweep passes ``counts`` as a 2-D ``(V, C)``
    matrix of ``V`` candidate count vectors together with a 1-D ``tau0``
    grid of ``T`` points, expecting a ``(V, T)`` result.  This helper
    returns ``(count_columns, tau0)`` shaped for broadcasting: each count
    column as a ``(V, 1)`` array so the model's stage recursion evaluates
    the whole grid elementwise.  Plain 1-D/tuple counts pass through
    untouched, keeping the original per-vector semantics.
    """
    if isinstance(counts, np.ndarray) and counts.ndim == 2:
        if tau0.ndim != 1:
            raise ValueError(
                f"a counts grid needs a 1-D tau0 axis, got shape {tau0.shape}"
            )
        cols = tuple(
            counts[:, k].astype(float)[:, None] for k in range(counts.shape[1])
        )
        return cols, tau0
    return counts, tau0


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a checkpoint-interval optimization.

    Attributes
    ----------
    plan:
        The selected checkpoint schedule.
    predicted_time:
        The optimizing model's expected execution time for ``plan``
        (minutes).  This is the quantity shown as the "diamond" prediction
        markers in Figures 2, 4 and 5.
    predicted_efficiency:
        ``T_B / predicted_time`` — the paper's efficiency metric.
    evaluations:
        Number of candidate plans the sweep evaluated (diagnostics).
    certificate:
        Bounded-iteration evidence for the sweep
        (:class:`~repro.core.numerics.OptimizationCertificate`): total
        evaluations spent, numerics events observed while optimizing, and
        whether refinement moved the sweep winner.  ``None`` for results
        produced before the guard layer (or deserialized from old cache
        entries).
    """

    plan: CheckpointPlan
    predicted_time: float
    predicted_efficiency: float
    evaluations: int = 0
    certificate: OptimizationCertificate | None = None

    def __post_init__(self) -> None:
        if math.isnan(self.predicted_time):
            raise ValueError("predicted_time is NaN (numerics-guard violation)")
        if not (self.predicted_time > 0):
            raise ValueError(f"predicted_time must be positive, got {self.predicted_time}")
        if math.isnan(self.predicted_efficiency):
            raise ValueError("predicted_efficiency is NaN (numerics-guard violation)")
        if not (0 < self.predicted_efficiency <= 1 + 1e-9):
            raise ValueError(
                f"predicted efficiency must be in (0, 1], got {self.predicted_efficiency}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; round-trips losslessly through :meth:`from_dict`.

        ``certificate`` is emitted only when present, so entries written
        by older code deserialize unchanged.
        """
        data: dict[str, Any] = {
            "plan": self.plan.to_dict(),
            "predicted_time": self.predicted_time,
            "predicted_efficiency": self.predicted_efficiency,
            "evaluations": self.evaluations,
        }
        if self.certificate is not None:
            data["certificate"] = self.certificate.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationResult":
        cert = data.get("certificate")
        return cls(
            plan=CheckpointPlan.from_dict(data["plan"]),
            predicted_time=float(data["predicted_time"]),
            predicted_efficiency=float(data["predicted_efficiency"]),
            evaluations=int(data.get("evaluations", 0)),
            certificate=(
                None if cert is None else OptimizationCertificate.from_dict(cert)
            ),
        )


class CheckpointModel(ABC):
    """A technique for predicting execution time and choosing intervals.

    Subclasses set :attr:`name` (the label used in figures and the
    experiment registry) and implement :meth:`predict_time` plus
    :meth:`candidate_level_subsets`; the bounded brute-force sweep of
    Section III-C is shared (see :mod:`repro.core.optimizer`).
    """

    #: Technique label, e.g. ``"dauwe"`` or ``"moody"``.
    name: str = "abstract"

    #: Whether this model's ``predict_time_batch`` accepts a 2-D ``(V, C)``
    #: counts matrix with a 1-D ``tau0`` grid and returns a ``(V, T)``
    #: array — the contract the optimizer's batched sweep relies on (see
    #: :func:`split_grid_counts`).  Models leaving this False are swept
    #: one count vector at a time.
    supports_grid_eval: bool = False

    #: Whether ``predict_time`` / ``predict_time_batch`` accept a
    #: keyword-only ``diagnostics=`` argument
    #: (:class:`~repro.core.numerics.ModelDiagnostics`) recording every
    #: clamp/overflow/divergence as a structured event.  The optimizer
    #: only threads its diagnostics through models that opt in, so
    #: third-party models with the plain signature keep working.
    supports_diagnostics: bool = False

    #: Whether the deployed protocol takes a checkpoint whose scheduled
    #: position coincides with application completion.  Length-*blind*
    #: techniques (Moody, Benoit) checkpoint on schedule because their
    #: model does not know the application is ending; length-aware
    #: techniques omit the pointless final write.  The experiment harness
    #: forwards this to the simulator (see Figure 5, Section IV-F).
    takes_scheduled_end_checkpoint: bool = False

    def __init__(self, system: SystemSpec):
        self.system = system

    # ------------------------------------------------------------------
    @abstractmethod
    def predict_time(self, plan: CheckpointPlan) -> float:
        """Expected wall-clock execution time (minutes) under ``plan``.

        Must return ``math.inf`` for plans the model deems hopeless rather
        than raising, so the optimizer can sweep freely.  NaN is never an
        acceptable return value — the numerics guard
        (:mod:`repro.core.numerics`) pins invalid cells to ``+inf`` and
        records why.
        """

    def predict_efficiency(self, plan: CheckpointPlan) -> float:
        """The paper's efficiency metric: ``T_B / E[T]`` for ``plan``."""
        t = self.predict_time(plan)
        if math.isnan(t):
            raise ValueError(
                f"model returned NaN time for {plan.describe()} "
                "(numerics-guard violation: predictions must be finite or +inf)"
            )
        if not (t > 0):
            raise ValueError(f"model returned non-positive time {t} for {plan.describe()}")
        if math.isinf(t):
            return 0.0
        return self.system.baseline_time / t

    @abstractmethod
    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """Level subsets this technique's plan space may use.

        Examples: Daly returns ``[(L,)]`` (PFS only); Moody returns the
        full ``[(1, .., L)]``; the Dauwe model returns every prefix
        ``(1..l)`` so that short applications may skip top levels
        (Section IV-F); Di returns the top-two-levels variants.
        """

    def optimize(self, **sweep_options) -> OptimizationResult:
        """Select the plan minimizing this model's predicted time.

        Runs the bounded brute-force sweep of Section III-C over
        ``candidate_level_subsets() x tau0 grid x integer counts`` followed
        by a golden-section refinement of ``tau0``.  Keyword arguments are
        forwarded to :func:`repro.core.optimizer.sweep_plans`.
        """
        from .optimizer import sweep_plans  # local import to avoid a cycle

        return sweep_plans(self, **sweep_options)

    # ------------------------------------------------------------------
    def validate_plan(self, plan: CheckpointPlan) -> None:
        """Raise ``ValueError`` if ``plan`` refers to unknown system levels."""
        if plan.top_level > self.system.num_levels:
            raise ValueError(
                f"plan uses level {plan.top_level} but {self.system.name} "
                f"has only {self.system.num_levels} levels"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} on {self.system.name}>"
