"""Core contribution of the paper: the hierarchical multilevel model.

Public surface:

* :class:`~repro.core.plan.CheckpointPlan` — pattern-based schedules.
* :class:`~repro.core.dauwe.DauweModel` — the Section III model.
* :class:`~repro.core.interfaces.CheckpointModel` /
  :class:`~repro.core.interfaces.OptimizationResult` — model interface.
* :func:`~repro.core.optimizer.sweep_plans` — Section III-C optimization.
* :mod:`~repro.core.truncated` — Eqns. 1-2 probability machinery.
"""

from .dauwe import DauweModel
from .interfaces import CheckpointModel, OptimizationResult
from .optimizer import enumerate_count_vectors, golden_section, sweep_plans
from .plan import CheckpointPlan
from .regime import RegimePlanResult, SegmentPlan, plan_regimes
from .severity import LevelMapping
from .truncated import (
    expected_failed_attempts,
    expected_failures,
    failure_probability,
    survival_probability,
    truncated_mean,
    unprotected_completion_time,
)

__all__ = [
    "CheckpointModel",
    "CheckpointPlan",
    "DauweModel",
    "LevelMapping",
    "OptimizationResult",
    "RegimePlanResult",
    "SegmentPlan",
    "enumerate_count_vectors",
    "expected_failed_attempts",
    "expected_failures",
    "failure_probability",
    "golden_section",
    "plan_regimes",
    "survival_probability",
    "sweep_plans",
    "truncated_mean",
    "unprotected_completion_time",
]
