"""The paper's execution-time prediction model (Section III, Eqns. 1-14).

The model estimates the expected execution time ``T_ML`` of an application
protected by a pattern-based multilevel checkpointing protocol.  It is
*hierarchical*: the expected duration of a level-``i`` execution interval
(computation plus all overhead from level-``<= i`` events) feeds the
computation of the level-``i+1`` interval, so each stage only has to price
the failure severities it newly protects against (Eqn. 4).

Per stage ``i`` (Eqns. 5-14, using this module's vocabulary):

=========  ===========================================================
``gamma``  expected failures during the ``tau_i`` intervals of this
           stage — negative binomial, Eqn. (5)
``T_Wtau`` rework for those failures: ``gamma * E(tau_i, lam_i) * m``
           where ``m`` is the interval count, Eqn. (6)
``T_d``    successful checkpoints: ``N_i * delta_i``, Eqn. (7)
``alpha``  failed checkpoints, Eqn. (8)
``T_df``   time inside failed checkpoints, Eqn. (9)
``T_Wd``   progress lost to failed checkpoints, Eqn. (10)
``beta``   successful restarts needed, Eqn. (11)
``zeta``   failed restarts, Eqn. (12)
``T_r``    successful restart time ``beta * R_i``, Eqn. (13)
``T_rf``   time inside failed restarts, Eqn. (14)
=========  ===========================================================

Extensions that the paper exercises but does not write out:

* **Level subsets** (Section IV-F): plans may skip top levels; severities
  above the top used level restart the application from scratch and are
  priced with the renewal formula of
  :func:`repro.core.truncated.unprotected_completion_time`.
* **Ablation switches**: ``include_checkpoint_failures`` /
  ``include_restart_failures`` disable the ``alpha``/``zeta`` machinery to
  quantify exactly the modeling gap the paper attributes to prior work
  (Sections IV-D, IV-G).
* **Silent errors** (``silent_errors=``): verification cost ``V`` joins
  every checkpoint write and silent strikes are priced at the shallowest
  used level whose checkpoint spacing exceeds the detection latency
  ``D`` (see :mod:`repro.core.silent` for the shared approximations).
* **Steady-state availability** (:meth:`DauweModel.predict_availability`):
  the same recursion over a single top-level cycle yields the
  useful-work fraction that the ``availability`` objective maximizes.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..systems.spec import SystemSpec
from .interfaces import CheckpointModel, split_grid_counts
from .numerics import ModelDiagnostics, flag
from .plan import CheckpointPlan
from .severity import LevelMapping
from .silent import SilentErrorSpec
from .truncated import truncated_mean, unprotected_completion_time

__all__ = ["DauweModel"]

# Events with per-attempt failure probability this close to 1 make the
# negative-binomial retry count astronomically large; the plan is hopeless
# and reported as infinite expected time.
_MAX_RATE_TIME = 500.0


class DauweModel(CheckpointModel):
    """Hierarchical continuous execution-time model (the paper's Sec. III).

    Parameters
    ----------
    system:
        The scenario being modeled.
    include_checkpoint_failures:
        Model failures striking during checkpoint writes (Eqns. 8-10).
        Disabling reproduces the optimistic assumption the paper
        criticizes in Benoit et al. [18].
    include_restart_failures:
        Model failures striking during restarts (Eqns. 11-14 beyond plain
        ``beta * R``).  Disabling reproduces Di et al.'s assumption [17].
    final_interval_plus_one:
        Eqn. (4) as printed counts ``N_i + 1`` lower intervals at every
        stage.  Applied literally at the *top* stage it prices one phantom
        top-level interval of work beyond ``T_B`` (Eqn. 3 makes ``N_L``
        intervals cover ``T_B`` exactly), which would both bias the
        optimizer toward overly dense top-level patterns and push the
        model's predictions systematically below the simulation — at odds
        with the accuracy the paper demonstrates for it.  We therefore
        read the top stage as exactly ``N_L`` intervals by default
        (``False``); set ``True`` for the literal printed form (ablation;
        see DESIGN.md).
    allow_level_skipping:
        Offer prefix level subsets to the optimizer so short applications
        may omit top-level checkpoints (Section IV-F).
    silent_errors:
        Optional :class:`~repro.core.silent.SilentErrorSpec` (or its dict
        form) enabling the silent-error failure mode.  The verification
        cost ``V`` is added to every level's checkpoint time, and silent
        strikes are priced at the shallowest used level whose checkpoint
        spacing exceeds the detection latency ``D`` (a deeper level's
        spacing is needed before its newest checkpoint predates a strike
        detected ``D`` late); cells where *no* used level's spacing beats
        ``D`` treat silent errors like unprotected severities — a
        from-scratch renewal at the silent rate.  ``None`` (default) is
        bitwise-transparent: the evaluation takes the exact fail-stop-only
        arithmetic path.
    """

    name = "dauwe"
    supports_grid_eval = True
    supports_diagnostics = True
    #: Full silent-error fidelity: V, D and the recovery level are all
    #: threaded through the stage recursion (baselines are "cost-only").
    silent_error_fidelity = "full"

    def __init__(
        self,
        system: SystemSpec,
        include_checkpoint_failures: bool = True,
        include_restart_failures: bool = True,
        final_interval_plus_one: bool = False,
        allow_level_skipping: bool = True,
        silent_errors: SilentErrorSpec | Mapping | None = None,
    ):
        super().__init__(system)
        self.include_checkpoint_failures = include_checkpoint_failures
        self.include_restart_failures = include_restart_failures
        self.final_interval_plus_one = final_interval_plus_one
        self.allow_level_skipping = allow_level_skipping
        self.silent_errors = SilentErrorSpec.resolve(silent_errors)
        self._mappings: dict[tuple[int, ...], LevelMapping] = {}

    # ------------------------------------------------------------------
    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """Prefixes ``(1..l)`` for ``l = L .. 1`` (full protocol first)."""
        L = self.system.num_levels
        if not self.allow_level_skipping:
            return [tuple(range(1, L + 1))]
        return [tuple(range(1, l + 1)) for l in range(L, 0, -1)]

    def _mapping(self, levels: tuple[int, ...]) -> LevelMapping:
        m = self._mappings.get(levels)
        if m is None:
            m = LevelMapping.build(self.system, levels)
            self._mappings[levels] = m
        return m

    # ------------------------------------------------------------------
    def predict_time(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        """Expected execution time ``T_ML`` (Eqn. 4 recursion) for ``plan``."""
        out = self.predict_time_batch(
            plan.levels, plan.counts, np.array([plan.tau0]), diagnostics=diagnostics
        )
        return float(out[0])

    def predict_time_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`predict_time` over an array of ``tau0`` values.

        ``counts`` may also be a 2-D ``(V, C)`` matrix of count vectors
        with a 1-D ``tau0`` grid, returning the full ``(V, T)`` time
        surface in one evaluation of the stage recursion — the optimizer's
        batched-sweep contract (``supports_grid_eval``).

        ``diagnostics`` collects a :class:`NumericsEvent` for every clamp,
        overflow and NaN the evaluation hits (see
        :mod:`repro.core.numerics`); the returned times are identical with
        or without it.
        """
        counts, tau0 = split_grid_counts(counts, np.asarray(tau0, dtype=float))
        total, _ = self._evaluate(
            levels, counts, tau0, want_parts=False, diagnostics=diagnostics
        )
        return total

    def predict_availability(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        """Steady-state useful-work fraction of ``plan``'s pattern.

        The availability objective's native hook: the expected duration of
        one top-level cycle (``_evaluate(steady_state=True)``) divides the
        useful work it advances, ``tau0 * stride``.  Plans that leave any
        severity unprotected — or whose silent errors cannot be caught by
        any used level — have no steady state and report ``0.0``.
        """
        out = self.predict_availability_batch(
            plan.levels, plan.counts, np.array([plan.tau0]), diagnostics=diagnostics
        )
        return float(out[0])

    def predict_availability_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`predict_availability`; grid contract as for
        :meth:`predict_time_batch`."""
        counts, tau0 = split_grid_counts(counts, np.asarray(tau0, dtype=float))
        total, _ = self._evaluate(
            levels, counts, tau0, want_parts=False, diagnostics=diagnostics,
            steady_state=True,
        )
        work = np.asarray(tau0, dtype=float)
        for n in counts:
            work = work * (np.asarray(n, dtype=float) + 1.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            avail = np.where(
                np.isfinite(total) & (total > 0),
                work / np.where(total > 0, total, 1.0),
                0.0,
            )
        return np.broadcast_to(avail, total.shape)

    def predict_breakdown(self, plan: CheckpointPlan) -> Mapping[str, float]:
        """Per-event-type expected time totals for ``plan``.

        Keys mirror Section III-B's taxonomy: ``work``, ``checkpoint``,
        ``failed_checkpoint``, ``restart``, ``failed_restart``,
        ``rework_compute`` (``T_Wtau``), ``rework_checkpoint`` (``T_Wd``)
        and ``unprotected`` (scratch-restart renewal overhead for skipped
        severities).  Summing the values (plus ``work``) gives
        :meth:`predict_time` exactly.
        """
        total, parts = self._evaluate(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float),
            want_parts=True,
        )
        out = {key: float(val[0]) for key, val in parts.items()}
        out["total"] = float(total[0])
        return out

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        want_parts: bool = False,
        diagnostics: ModelDiagnostics | None = None,
        steady_state: bool = False,
    ) -> tuple[np.ndarray, dict[str, np.ndarray] | None]:
        """Stage recursion over ``tau0``; ``counts`` entries may be arrays.

        ``steady_state=True`` evaluates one top-level pattern *cycle*
        instead of the whole run: the top stage prices exactly one
        interval and one checkpoint (``n_ckpt = m_intervals = 1``) and the
        unprotected scratch-restart fold is replaced by an infeasibility
        mark — a cycle struck at a positive renewal rate from scratch has
        no steady state, so its availability is zero.  This is the basis
        of :meth:`predict_availability_batch`.

        Every arithmetic step is elementwise, so scalar counts with a 1-D
        ``tau0`` (the classic path) and ``(V, 1)`` count columns with a
        ``(T,)`` grid (the optimizer's batched sweep) both evaluate the
        same expressions — grid cells are bitwise identical to the
        corresponding 1-D calls.  ``want_parts=False`` skips the per-event
        bookkeeping that only :meth:`predict_breakdown` needs.

        The guard policy is finite-or-``+inf``: every cell whose expected
        time diverges (clamp, overflow or NaN) is pinned to ``+inf``, and
        with ``diagnostics`` supplied each such cell is recorded as a
        :class:`~repro.core.numerics.NumericsEvent` at a
        ``"<model>.<site>"`` key.  The enclosing ``errstate`` only quiets
        the hardware flags for the non-finite cells that are recorded and
        remapped below — finite cells take the exact same arithmetic path
        as the unguarded code.
        """
        if len(counts) != len(levels) - 1:
            raise ValueError(
                f"{len(levels)}-level plan needs {len(levels) - 1} counts, "
                f"got {len(counts)}"
            )
        mp = self._mapping(tuple(levels))
        T_B = self.system.baseline_time
        u = mp.num_used
        counts = tuple(np.asarray(n, dtype=float) for n in counts)
        shape = np.broadcast_shapes(tau0.shape, *(n.shape for n in counts))
        zeros = lambda: np.zeros(shape)

        stride = np.asarray(1.0)
        for n in counts:
            stride = stride * (n + 1.0)
        # Eqn. (3): number of top-used-level checkpoints over the whole run.
        # A subnormal tau0 can underflow the denominator; the resulting
        # inf/NaN cells are flagged and pinned at the end of the routine.
        with np.errstate(over="ignore", divide="ignore"):
            n_top = T_B / (tau0 * stride)

        tau_k = np.broadcast_to(tau0.astype(float), shape).copy()  # tau_hat_1
        hist_tau: list[np.ndarray] = []
        hist_rework: list[np.ndarray] = []  # gamma_j * E(tau_j, lam_j)
        bad = np.zeros(shape, dtype=bool)

        silent = self.silent_errors
        if silent is not None:
            # Which cells already price silent errors at some stage, and
            # the running product of lower interval counts (level-(k+1)
            # checkpoints are ``tau0 * stride_k`` work apart).
            silent_done = np.zeros(shape, dtype=bool)
            stride_k = np.asarray(1.0)

        def expm1_rec(x, site):
            # safe_expm1 without its errstate: the stage loop below already
            # holds one, and re-entering per call costs ~5% of a sweep.
            out = np.expm1(x)
            if diagnostics is not None:
                diagnostics.record_mask(site, "overflow", np.isinf(out), values=x, label="x")
                diagnostics.record_mask(site, "nan", np.isnan(out), values=x, label="x")
            return out
        # Per-stage overhead terms are "per level-(k+1) interval"; to report
        # whole-run totals each stage's terms are later scaled by the number
        # of such intervals in the run (the product of the interval counts
        # of every stage above it).
        stage_parts: list[dict[str, np.ndarray]] = []
        stage_multipliers: list[np.ndarray | float] = []

        for k in range(u):
            lam_k = mp.rates[k]
            lam_c = mp.cumulative_rates[k]
            delta = mp.checkpoint_times[k]
            if silent is not None:
                delta = delta + silent.verify_cost
            R = mp.restart_times[k]
            if k < u - 1:
                N_k = counts[k]
                m_intervals = N_k + 1.0
                n_ckpt = N_k
            elif steady_state:
                # One top-level cycle: a single interval, a single
                # checkpoint — the renewal unit of the availability ratio.
                n_ckpt = 1.0
                m_intervals = 1.0
            else:
                n_ckpt = n_top
                m_intervals = n_top + 1.0 if self.final_interval_plus_one else n_top

            with np.errstate(over="ignore", invalid="ignore"):
                rate_time = lam_k * tau_k
                bad |= flag(
                    diagnostics, f"{self.name}.gamma", "clamp",
                    rate_time > _MAX_RATE_TIME, values=rate_time, label="rate_time",
                )
                gamma = expm1_rec(rate_time, f"{self.name}.gamma")  # Eqn. (5)
                E_tau = np.asarray(truncated_mean(tau_k, lam_k))
                T_Wtau = gamma * E_tau * m_intervals  # Eqn. (6)
                T_d = n_ckpt * delta  # Eqn. (7)

                hist_tau.append(tau_k)
                hist_rework.append(gamma * E_tau)

                if self.include_checkpoint_failures and delta > 0:
                    bad |= flag(
                        diagnostics, f"{self.name}.alpha", "clamp",
                        lam_c * delta > _MAX_RATE_TIME,
                        values=lam_c * delta, label="rate_time",
                    )
                    alpha = n_ckpt * expm1_rec(lam_c * delta, f"{self.name}.alpha")  # Eqn. (8)
                    T_df = alpha * truncated_mean(delta, lam_c)  # Eqn. (9)
                    # Eqn. (10): progress lost with the failed checkpoint.
                    lost = zeros()
                    for j in range(k + 1):
                        lost += (hist_tau[j] + hist_rework[j]) * mp.shares[j]
                    T_Wd = alpha * lost
                else:
                    alpha = zeros()
                    T_df = zeros()
                    T_Wd = zeros()

                # Eqn. (11): successful restarts required at this level.
                beta = mp.shares[k] * alpha + gamma * (
                    mp.shares[k] * alpha + m_intervals
                )
                T_r = beta * R  # Eqn. (13)
                if self.include_restart_failures and R > 0:
                    bad |= flag(
                        diagnostics, f"{self.name}.zeta", "clamp",
                        lam_c * R > _MAX_RATE_TIME,
                        values=lam_c * R, label="rate_time",
                    )
                    zeta = beta * expm1_rec(lam_c * R, f"{self.name}.zeta")  # Eqn. (12)
                    T_rf = zeta * truncated_mean(R, lam_c)  # Eqn. (14)
                else:
                    T_rf = zeros()

                T_sil = None
                if silent is not None:
                    # Silent strikes roll back to the shallowest level
                    # whose checkpoint spacing exceeds the detection
                    # latency: only then is the newest checkpoint at that
                    # level typically older than the strike when the
                    # detector fires.  Per event the run loses the strike
                    # position within the interval, the latency window,
                    # and a level-k restart.
                    spacing = tau0 * stride_k
                    sel = (
                        np.broadcast_to(
                            spacing > silent.detection_latency, shape
                        )
                        & ~silent_done
                    )
                    T_sil = zeros()
                    if np.any(sel):
                        lam_s = silent.rate
                        rate_time_s = lam_s * tau_k
                        bad |= flag(
                            diagnostics, f"{self.name}.silent", "clamp",
                            sel & (rate_time_s > _MAX_RATE_TIME),
                            values=rate_time_s, label="rate_time",
                        )
                        gamma_s = expm1_rec(
                            np.where(sel, rate_time_s, 0.0),
                            f"{self.name}.silent",
                        )
                        E_s = np.asarray(truncated_mean(tau_k, lam_s))
                        T_sil = np.where(
                            sel,
                            gamma_s
                            * (E_s + silent.detection_latency + R)
                            * m_intervals,
                            0.0,
                        )
                        silent_done = silent_done | sel
                    if k < u - 1:
                        stride_k = stride_k * (N_k + 1.0)

                if want_parts:
                    entry = {
                        "checkpoint": np.broadcast_to(
                            np.asarray(T_d, dtype=float), shape
                        ),
                        "failed_checkpoint": T_df,
                        "restart": T_r,
                        "failed_restart": T_rf,
                        "rework_compute": T_Wtau,
                        "rework_checkpoint": T_Wd,
                    }
                    if T_sil is not None:
                        entry["silent"] = T_sil
                    stage_parts.append(entry)
                    stage_multipliers.append(m_intervals)

                # Eqn. (4)
                tau_k = tau_k * m_intervals + T_d + T_df + T_r + T_rf + T_Wtau + T_Wd
                if T_sil is not None:
                    tau_k = tau_k + T_sil

        parts: dict[str, np.ndarray] | None = None
        if want_parts:
            # Whole-run totals: stage k's terms occur once per level-(k+1)
            # interval, i.e. prod of interval counts of the stages above it.
            parts = {
                "work": tau0 * stride * np.asarray(stage_multipliers[-1], dtype=float),
                "checkpoint": zeros(),
                "failed_checkpoint": zeros(),
                "restart": zeros(),
                "failed_restart": zeros(),
                "rework_compute": zeros(),
                "rework_checkpoint": zeros(),
                "unprotected": zeros(),
            }
            if silent is not None:
                parts["silent"] = zeros()
            for k in range(u):
                mult = np.ones(shape)
                for j in range(k + 1, u):
                    mult = mult * stage_multipliers[j]
                for key, val in stage_parts[k].items():
                    parts[key] = parts[key] + val * mult

        total = tau_k
        resid = None
        if silent is not None:
            # Cells whose every used level is spaced tighter than the
            # detection latency never hold a pre-strike checkpoint: their
            # silent errors force a from-scratch renewal, exactly like
            # unprotected fail-stop severities.
            resid = np.where(silent_done, 0.0, silent.rate)
        if steady_state:
            # A cycle struck from scratch at a positive renewal rate has
            # no steady state: mark it infeasible (availability zero).
            infeasible = np.broadcast_to(
                np.asarray(mp.unprotected_rate > 0), shape
            ).copy()
            if resid is not None:
                infeasible |= resid > 0
            bad |= flag(
                diagnostics, f"{self.name}.availability", "divergence",
                infeasible & ~bad,
            )
        elif resid is None:
            if mp.unprotected_rate > 0:
                with np.errstate(over="ignore", invalid="ignore"):
                    bad |= flag(
                        diagnostics, f"{self.name}.unprotected", "clamp",
                        mp.unprotected_rate * total > _MAX_RATE_TIME,
                        values=mp.unprotected_rate * total, label="rate_time",
                    )
                    grown = np.asarray(
                        unprotected_completion_time(
                            total, mp.unprotected_rate, mp.unprotected_restart
                        )
                    )
                if want_parts:
                    with np.errstate(invalid="ignore"):
                        parts["unprotected"] = np.where(
                            np.isfinite(grown) & np.isfinite(total), grown - total, np.inf
                        )
                total = grown
        elif mp.unprotected_rate > 0 or bool(np.any(resid > 0)):
            # Blend the fail-stop unprotected renewal with the silent
            # residual: rates add, and the per-event overhead is the
            # rate-weighted mean of the severity restart and the silent
            # detection latency (a corruption does not reboot hardware —
            # its only per-event overhead beyond lost work is ``D``).
            with np.errstate(over="ignore", invalid="ignore"):
                rate_eff = mp.unprotected_rate + resid
                overhead = (
                    mp.unprotected_rate * mp.unprotected_restart
                    + resid * silent.detection_latency
                )
                restart_eff = np.where(
                    rate_eff > 0,
                    overhead / np.where(rate_eff > 0, rate_eff, 1.0),
                    0.0,
                )
                bad |= flag(
                    diagnostics, f"{self.name}.unprotected", "clamp",
                    rate_eff * total > _MAX_RATE_TIME,
                    values=rate_eff * total, label="rate_time",
                )
                grown = np.asarray(
                    unprotected_completion_time(total, rate_eff, restart_eff)
                )
            if want_parts:
                with np.errstate(invalid="ignore"):
                    parts["unprotected"] = np.where(
                        np.isfinite(grown) & np.isfinite(total), grown - total, np.inf
                    )
            total = grown

        # Guard invariant: NaN never escapes, and every +inf cell that was
        # not already claimed by a clamp above is recorded as it is pinned.
        bad |= flag(diagnostics, f"{self.name}.total", "nan", np.isnan(total))
        bad |= flag(
            diagnostics, f"{self.name}.total", "divergence", np.isinf(total) & ~bad
        )
        bad |= ~np.isfinite(total)
        total = np.where(bad, np.inf, total)
        return total, parts
