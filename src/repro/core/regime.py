"""Per-regime re-optimization with boundary carryover pricing.

A static plan is optimal only for the regime it was optimized against.
Under a :class:`~repro.systems.regime.RegimeSchedule` the planning
question becomes piecewise: *within* each stationary segment the paper's
machinery applies unchanged (optimize the scaled system), and the only
genuinely new cost is at the *boundaries* — work performed since the
last checkpoint is in flight when the regime flips, and the new regime's
failure rate taxes it until the next checkpoint commits.

:func:`plan_regimes` prices exactly that decomposition:

1. **per-segment plans** — each segment's effective system
   (``schedule.scaled_system``) is optimized independently (Dauwe by
   default), giving a plan and a predicted efficiency ``e_j`` (useful
   work per wall-clock minute) for the stationary stretch;
2. **fluid walk** — the run is walked segment by segment at rate
   ``e_j`` to find how much work lands in each segment and when the run
   finishes;
3. **boundary carryover** — at each crossed boundary the un-checkpointed
   in-flight work ``D = w mod tau0_j`` is exposed to the *next* regime's
   failure rate for the ``D / e_{j+1}`` wall-clock minutes it takes to
   reach the next checkpoint; to first order the expected rework is

       ``carry_j = lam_{j+1} * (D / e_{j+1}) * D``

   (expected number of strikes in the exposure window times the work
   each would destroy).  The carryover is added to the predicted
   makespan, so two schedules that differ only in where their boundaries
   cut the checkpoint pattern price differently — the quantity the
   oracle walker in :mod:`repro.simulator.adaptive` exploits by swapping
   plans at checkpoint commits rather than mid-interval.

The result is intentionally a *prediction*, symmetric with the paper's
``T_ML``: the adaptive simulator measures the same decomposition
empirically (replans, detection latency, regret).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..systems.regime import RegimeSchedule
from ..systems.spec import SystemSpec
from .dauwe import DauweModel
from .plan import CheckpointPlan

__all__ = ["RegimePlanResult", "SegmentPlan", "plan_regimes"]


@dataclass(frozen=True)
class SegmentPlan:
    """One segment's stationary optimization result."""

    index: int
    start: float  # wall-clock minutes; schedule boundary
    rate: float  # effective system failure rate in this segment
    plan: CheckpointPlan
    predicted_time: float  # T_ML of the whole application under this regime
    predicted_efficiency: float  # useful work per wall-clock minute

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "rate": self.rate,
            "plan": self.plan.to_dict(),
            "predicted_time": self.predicted_time,
            "predicted_efficiency": self.predicted_efficiency,
        }


@dataclass(frozen=True)
class RegimePlanResult:
    """Per-segment plans plus the carryover-priced makespan prediction."""

    segments: tuple[SegmentPlan, ...]
    #: Predicted wall-clock completion time under the schedule-aware
    #: piecewise plan (``inf`` when some load-bearing segment is hopeless).
    predicted_makespan: float
    #: First-order boundary carryover, one entry per boundary the fluid
    #: walk crossed before completion (already included in the makespan).
    carryover: tuple[float, ...]

    def plan_for_segment(self, j: int) -> CheckpointPlan:
        return self.segments[j].plan

    def to_dict(self) -> dict[str, Any]:
        return {
            "segments": [s.to_dict() for s in self.segments],
            "predicted_makespan": self.predicted_makespan,
            "carryover": list(self.carryover),
        }


def plan_regimes(
    system: SystemSpec,
    schedule: RegimeSchedule,
    model_factory=DauweModel,
    model_options: Mapping[str, Any] | None = None,
    sweep_options: Mapping[str, Any] | None = None,
) -> RegimePlanResult:
    """Optimize every segment of ``schedule`` and price the boundaries.

    ``model_factory`` is any :class:`~repro.core.interfaces.
    CheckpointModel` subclass (the Dauwe model by default — the regime
    layer's reference planner); ``model_options`` / ``sweep_options``
    pass through to its constructor and ``optimize`` respectively.
    """
    model_options = dict(model_options or {})
    sweep_options = dict(sweep_options or {})
    T_B = system.baseline_time

    segments: list[SegmentPlan] = []
    for j in range(schedule.num_segments):
        scaled = schedule.scaled_system(system, j)
        try:
            result = model_factory(scaled, **model_options).optimize(**sweep_options)
            plan_j = result.plan
            pred = float(result.predicted_time)
        except RuntimeError:
            # No feasible plan for this segment's regime: keep flying the
            # previous segment's plan (there is nothing better to swap
            # to).  A first segment with no feasible plan means the base
            # study itself is hopeless — let that error propagate.
            if not segments:
                raise
            plan_j = segments[-1].plan
            pred = math.inf
        # Efficiency as work per wall-clock minute of the *prediction*;
        # a hopeless segment (infinite prediction) advances no work.
        eff = T_B / pred if math.isfinite(pred) and pred > 0 else 0.0
        segments.append(
            SegmentPlan(
                index=j,
                start=schedule.boundaries[j],
                rate=system.failure_rate * schedule.segments[j].rate_scale,
                plan=plan_j,
                predicted_time=pred,
                predicted_efficiency=eff,
            )
        )

    # Fluid walk: advance work at each segment's predicted efficiency,
    # pricing the in-flight work at every boundary actually crossed.
    t = 0.0
    w = 0.0
    carry: list[float] = []
    makespan = math.inf
    for j, seg in enumerate(segments):
        remaining = T_B - w
        if remaining <= 0:
            makespan = t
            break
        last = j == len(segments) - 1
        if seg.predicted_efficiency <= 0:
            if last:
                break  # hopeless forever: makespan stays +inf
            t = schedule.boundaries[j + 1]
            continue
        if not last:
            wall = max(0.0, schedule.boundaries[j + 1] - t)
            done = wall * seg.predicted_efficiency
            if done < remaining:
                w += done
                t = schedule.boundaries[j + 1]
                # Boundary carryover: work past the last committed
                # checkpoint position, exposed to the next regime.
                tau0 = seg.plan.tau0
                exposed = w - math.floor(w / tau0) * tau0
                nxt = segments[j + 1]
                if exposed > 0 and nxt.predicted_efficiency > 0:
                    cost = nxt.rate * (exposed / nxt.predicted_efficiency) * exposed
                    carry.append(cost)
                    t += cost
                elif exposed > 0:
                    carry.append(math.inf)
                continue
        makespan = t + remaining / seg.predicted_efficiency
        break

    return RegimePlanResult(
        segments=tuple(segments),
        predicted_makespan=makespan,
        carryover=tuple(carry),
    )
