"""Failure-probability math shared by every model in the package.

This module implements the probability machinery of Section III-B of the
paper:

* Eqn. (1): the probability ``P(t, X)`` that an exponentially-distributed
  failure with rate ``X`` strikes within an interval of length ``t``.
* Eqn. (2): the *truncated* expectation ``E(t, X)`` — the mean amount of
  the interval that is lost when a failure does strike, i.e. the mean of
  the exponential distribution restricted to ``[0, t]``.
* The negative-binomial retry estimators used for Eqns. (5), (8) and (12):
  the expected number of failed attempts before one attempt of length
  ``t`` succeeds is ``P / (1 - P) = expm1(X t)``.
* A renewal-theory helper giving the expected completion time of a block
  of work with *no* checkpoint protection (used to price severities that a
  truncated protocol leaves unprotected, Section IV-F behaviour).

All functions accept scalars or NumPy arrays and broadcast; the analytic
models sweep thousands of candidate intervals at once and rely on this.

Numerical notes
---------------
The printed form of Eqn. (2),

    E(t, X) = [1/X - e^{-Xt} (1/X + t)] / P(t, X),

is algebraically equal to ``1/X - t / expm1(X t)``, which is the form used
here: it is stable for ``X t`` near zero (where it tends to ``t/2``) and
cannot lose precision to cancellation for small rates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "failure_probability",
    "truncated_mean",
    "expected_failures",
    "expected_failed_attempts",
    "unprotected_completion_time",
    "survival_probability",
]

# exp() overflows float64 a little above exp(709); past this point the
# correction term t/expm1(Xt) is zero to machine precision anyway.
_EXP_OVERFLOW = 700.0


def failure_probability(t, rate):
    """Probability of at least one failure in an interval (Eqn. 1).

    ``P(t, X) = 1 - exp(-X t)`` for interval length ``t`` and failure
    rate ``X``.  Both arguments broadcast.

    >>> failure_probability(0.0, 0.5)
    0.0
    >>> round(failure_probability(2.0, 0.5), 6)
    0.632121
    """
    t = np.asarray(t, dtype=float)
    rate = np.asarray(rate, dtype=float)
    out = -np.expm1(-rate * t)
    return out.item() if out.ndim == 0 else out


def survival_probability(t, rate):
    """Probability that an interval of length ``t`` completes failure-free.

    Complement of :func:`failure_probability`; provided because simulator
    invariants and tests state properties in terms of the survival side.
    """
    t = np.asarray(t, dtype=float)
    rate = np.asarray(rate, dtype=float)
    out = np.exp(-rate * t)
    return out.item() if out.ndim == 0 else out


def truncated_mean(t, rate):
    """Expected time lost to a failure that strikes within ``[0, t]`` (Eqn. 2).

    This is the mean of the exponential distribution with rate ``rate``
    truncated to the interval ``[0, t]``:

        E(t, X) = 1/X - t / expm1(X t)

    Limits: ``E -> t/2`` as ``X t -> 0`` (failures uniform over a short
    interval) and ``E -> 1/X`` as ``X t -> inf`` (truncation irrelevant).
    ``t == 0`` returns 0 by continuity.
    """
    t = np.asarray(t, dtype=float)
    rate = np.asarray(rate, dtype=float)
    xt = rate * t
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        small = xt < 1e-8
        big = xt > _EXP_OVERFLOW
        mid = ~(small | big)
        out = np.empty(np.broadcast(t, rate).shape, dtype=float)
        # series: E = t/2 - X t^2 / 12 + O((Xt)^3 t)
        tt = np.broadcast_to(t, out.shape)
        rr = np.broadcast_to(rate, out.shape)
        xx = np.broadcast_to(xt, out.shape)
        out[small] = tt[small] / 2.0 - rr[small] * tt[small] ** 2 / 12.0
        out[big] = 1.0 / rr[big]
        out[mid] = 1.0 / rr[mid] - tt[mid] / np.expm1(xx[mid])
    return out.item() if out.ndim == 0 else out


def expected_failures(t, rate):
    """Expected number of failed attempts per success for an event of length ``t``.

    The negative-binomial estimator the paper uses for Eqns. (5), (8) and
    (12): with per-attempt failure probability ``P = P(t, X)``, the mean
    number of failures before the first success is

        P / (1 - P) = expm1(X t).

    Multiply by the number of successful events required to get the total
    expected failure count (as Eqns. 8 and 12 do with ``N_i``/``beta_i``).
    """
    t = np.asarray(t, dtype=float)
    rate = np.asarray(rate, dtype=float)
    with np.errstate(over="ignore"):
        out = np.expm1(rate * t)
    return out.item() if out.ndim == 0 else out


def expected_failed_attempts(t, rate, successes):
    """Total expected failed attempts to achieve ``successes`` events of length ``t``.

    Direct vectorized form of Eqns. (8) and (12):
    ``alpha = successes * P(t, X) / (1 - P(t, X))``.
    """
    successes = np.asarray(successes, dtype=float)
    out = np.asarray(expected_failures(t, rate)) * successes
    return out.item() if out.ndim == 0 else out


def unprotected_completion_time(work, rate, restart_cost):
    """Expected wall time to finish ``work`` with no protecting checkpoint.

    Used to price failure severities that a *truncated* protocol (one that
    skips its top level(s), Section IV-F) cannot recover from: every such
    failure restarts the application from scratch at cost ``restart_cost``
    and all completed work is recomputed.

    With per-attempt success probability ``p = exp(-rate * work)`` the
    number of failed attempts is geometric with mean ``(1-p)/p`` and each
    failed attempt costs the truncated mean plus the restart:

        E[T] = work + expm1(rate * work) * (E(work, rate) + restart_cost)

    For ``rate * work`` large this grows as ``exp(rate * work)`` — the
    model then correctly reports such plans as hopeless. Returns ``inf``
    when the expectation overflows.
    """
    work = np.asarray(work, dtype=float)
    rate = np.asarray(rate, dtype=float)
    retries = np.asarray(expected_failures(work, rate))
    lost = np.asarray(truncated_mean(work, rate))
    with np.errstate(over="ignore", invalid="ignore"):
        out = work + retries * (lost + restart_cost)
    out = np.where(np.isnan(out), np.inf, out)
    return out.item() if out.ndim == 0 else out
