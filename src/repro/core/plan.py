"""Checkpoint plans: the decision variables of every optimization technique.

A :class:`CheckpointPlan` is a pattern-based multilevel checkpoint schedule
in the SCR style the paper models (Section II-B): a fixed computation
interval ``tau0`` between successive checkpoints, and for each pair of
adjacent *used* levels an integer count ``N`` of lower-level checkpoints
taken before the next higher-level checkpoint.

Plans also carry the subset of the system's levels they actually use.
This generalizes three situations in the paper at once:

* Daly's traditional checkpoint/restart uses only the top (PFS) level of a
  multilevel system (Section IV-C);
* Di et al.'s two-level model uses only the top two levels (Section IV-C);
* the paper's own model (and Di's) may *skip* level-L checkpoints for
  short applications (Section IV-F), i.e. use only a bottom subset.

A failure of severity ``s`` is recovered from the lowest used level
``>= s``; if none exists the application restarts from scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["CheckpointPlan"]


@dataclass(frozen=True)
class CheckpointPlan:
    """A pattern-based multilevel checkpoint schedule.

    Parameters
    ----------
    levels:
        Ascending, 1-based system checkpoint levels this plan uses.
        ``(1, 2, 3)`` uses all levels of a 3-level system; ``(3,)`` takes
        only level-3 checkpoints.
    tau0:
        The computation interval (minutes of application *work*) between
        successive checkpoints — the paper's real-valued decision variable.
    counts:
        ``N`` values, one per adjacent used-level pair: ``counts[k]`` is
        the number of ``levels[k]`` checkpoints taken before each
        ``levels[k+1]`` checkpoint (the paper's ``N_i``).  Every entry is
        a non-negative integer; ``len(counts) == len(levels) - 1``.
        ``counts[k] == 0`` means every ``levels[k]`` position is promoted
        straight to a ``levels[k+1]`` checkpoint.
    """

    levels: tuple[int, ...]
    tau0: float
    counts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(int(v) for v in self.levels))
        object.__setattr__(self, "counts", tuple(int(v) for v in self.counts))
        if not self.levels:
            raise ValueError("a plan must use at least one checkpoint level")
        if any(lv < 1 for lv in self.levels):
            raise ValueError(f"levels are 1-based and positive, got {self.levels}")
        if any(b <= a for a, b in zip(self.levels, self.levels[1:])):
            raise ValueError(f"levels must be strictly ascending, got {self.levels}")
        if len(self.counts) != len(self.levels) - 1:
            raise ValueError(
                f"need {len(self.levels) - 1} counts for {len(self.levels)} "
                f"used levels, got {len(self.counts)}"
            )
        if any(n < 0 for n in self.counts):
            raise ValueError(f"counts must be non-negative, got {self.counts}")
        if not (self.tau0 > 0 and math.isfinite(self.tau0)):
            raise ValueError(f"tau0 must be positive and finite, got {self.tau0}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_level(cls, level: int, tau0: float) -> "CheckpointPlan":
        """A traditional (Daly-style) plan checkpointing only ``level``."""
        return cls(levels=(level,), tau0=tau0)

    @classmethod
    def uniform(cls, num_levels: int, tau0: float, count: int) -> "CheckpointPlan":
        """All of ``1..num_levels`` with the same ``N`` at every boundary."""
        return cls(
            levels=tuple(range(1, num_levels + 1)),
            tau0=tau0,
            counts=(count,) * (num_levels - 1),
        )

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def num_used_levels(self) -> int:
        return len(self.levels)

    @property
    def top_level(self) -> int:
        """The highest system level this plan checkpoints to."""
        return self.levels[-1]

    def stride(self, k: int) -> int:
        """Checkpoint positions between ``levels[k]`` checkpoints.

        ``stride(0) == 1``: the lowest used level checkpoints at every
        position.  ``stride(k) = prod_{j<k} (counts[j] + 1)``.
        """
        s = 1
        for j in range(k):
            s *= self.counts[j] + 1
        return s

    def work_between(self, k: int) -> float:
        """Application work between successive ``levels[k]`` checkpoints.

        This is the paper's level-``k`` interval length in *work* terms:
        ``tau0 * prod_{j<k} (counts[j] + 1)``.
        """
        return self.tau0 * self.stride(k)

    @property
    def pattern_work(self) -> float:
        """Work covered by one full pattern (between top-level checkpoints)."""
        return self.work_between(self.num_used_levels - 1)

    def level_at_position(self, m: int) -> int:
        """System level of the checkpoint taken at work position ``m * tau0``.

        Positions are 1-based.  The checkpoint taken is the *highest* used
        level whose stride divides ``m`` — e.g. with ``levels=(1,2,3)``,
        ``counts=(2,1)`` the sequence of levels at positions 1.. is
        1,1,2,1,1,3,1,1,2,1,1,3,...
        """
        if m < 1:
            raise ValueError(f"positions are 1-based, got {m}")
        chosen = self.levels[0]
        for k in range(self.num_used_levels - 1, 0, -1):
            if m % self.stride(k) == 0:
                chosen = self.levels[k]
                break
        return chosen

    def iter_levels(self, num_positions: int) -> Iterator[int]:
        """Yield the checkpoint level for positions ``1..num_positions``."""
        for m in range(1, num_positions + 1):
            yield self.level_at_position(m)

    def recovery_level(self, severity: int) -> int | None:
        """Lowest used level able to recover a severity-``severity`` failure.

        Returns ``None`` when the plan has no sufficiently high level, in
        which case such a failure restarts the application from scratch
        (the risk a short application may rationally accept, Sec. IV-F).
        """
        for lv in self.levels:
            if lv >= severity:
                return lv
        return None

    def checkpoints_per_pattern(self, k: int) -> int:
        """Number of ``levels[k]`` checkpoints in one full pattern.

        The highest used level checkpoints once per pattern; each lower
        level checkpoints ``counts[k]`` times per occurrence of the level
        above it.
        """
        top = self.num_used_levels - 1
        if k == top:
            return 1
        n = self.counts[k]
        for j in range(k + 1, top):
            n *= self.counts[j] + 1
        return n

    def scaled(self, tau0: float) -> "CheckpointPlan":
        """The same pattern with a different computation interval."""
        return CheckpointPlan(levels=self.levels, tau0=tau0, counts=self.counts)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; round-trips losslessly through :meth:`from_dict`."""
        return {
            "levels": list(self.levels),
            "tau0": self.tau0,
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointPlan":
        """Rebuild (and re-validate) a plan from :meth:`to_dict` output."""
        unknown = set(data) - {"levels", "tau0", "counts"}
        if unknown:
            raise ValueError(f"unknown plan field(s) {sorted(unknown)}")
        return cls(
            levels=tuple(data["levels"]),
            tau0=float(data["tau0"]),
            counts=tuple(data.get("counts", ())),
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. ``tau0=12.5min, L1 x3 -> L2 x2 -> L4``."""
        parts = [f"tau0={self.tau0:.4g}min"]
        chain = []
        for k, lv in enumerate(self.levels):
            if k < len(self.counts):
                chain.append(f"L{lv} x{self.counts[k]}")
            else:
                chain.append(f"L{lv}")
        parts.append(" -> ".join(chain))
        return ", ".join(parts)
