"""Silent-error (SDC) failure-mode specification and strike stream.

Fail-stop failures — the paper's only failure mode — announce themselves;
silent data corruptions (Aupy/Benoit et al., arXiv:1310.8486) do not: a
strike corrupts the running state, every checkpoint written *after* the
strike captures the corruption, and the error only surfaces after a
detection latency ``D``, at which point the run must roll back to a
checkpoint taken *before* the strike (a deeper level, or scratch, when
the newer levels are all poisoned).  Guarding against this costs a
verification step of duration ``V`` appended to every checkpoint write.

:class:`SilentErrorSpec` is the strict-validated parameter block threaded
through models (``silent_errors=`` model option), both trial engines, the
scenario specs and the CLI.  :class:`SilentStream` is the shared
strike-time source: both the scalar and the batched engine consume the
same class with identically seeded generators, which is what makes their
silent-error trials bitwise identical.

Modelling approximations (shared by models and simulator, documented
here once):

* at most one strike is "armed" at a time — strikes landing between an
  armed strike and its detection are dropped at detection time, because
  the rollback to a pre-strike checkpoint cures them too;
* a fail-stop rollback does **not** disarm a pending strike: the
  detector still fires at ``strike + D`` and re-validates state
  (checkpoints newer than the strike are invalidated — usually a no-op
  after the rollback — and the restart cost is paid), a conservative
  "detector memory" semantics;
* a strike still armed when the application completes is counted
  (``silent_undetected``) but does not change the outcome — the run
  finished on possibly-corrupted state, which is precisely the hazard
  the availability objective prices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["SilentErrorSpec", "SilentStream"]

_SPEC_FIELDS = ("mtbf", "verify_cost", "detection_latency")


@dataclass(frozen=True)
class SilentErrorSpec:
    """Parameters of the silent-error failure mode.

    Attributes
    ----------
    mtbf:
        Mean time between silent errors (minutes of wall-clock; strikes
        form a Poisson process on wall-clock time, like fail-stop
        failures).
    verify_cost:
        ``V`` — verification time appended to every checkpoint write at
        every level (minutes).
    detection_latency:
        ``D`` — delay between a strike and its detection (minutes).
        Checkpoints completed inside the window are corrupted and get
        invalidated at detection.
    """

    mtbf: float
    verify_cost: float = 0.0
    detection_latency: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.mtbf) and self.mtbf > 0):
            raise ValueError(
                f"silent-error mtbf must be positive and finite, got {self.mtbf!r}"
            )
        if not (math.isfinite(self.verify_cost) and self.verify_cost >= 0):
            raise ValueError(
                f"verify_cost must be >= 0 and finite, got {self.verify_cost!r}"
            )
        if not (
            math.isfinite(self.detection_latency) and self.detection_latency >= 0
        ):
            raise ValueError(
                f"detection_latency must be >= 0 and finite, "
                f"got {self.detection_latency!r}"
            )

    @property
    def rate(self) -> float:
        """Strike rate ``1 / mtbf`` (per minute)."""
        return 1.0 / self.mtbf

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "mtbf": self.mtbf,
            "verify_cost": self.verify_cost,
            "detection_latency": self.detection_latency,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SilentErrorSpec":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"silent_errors must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown silent_errors field(s) {sorted(unknown)}; "
                f"known fields: {list(_SPEC_FIELDS)}"
            )
        if "mtbf" not in data:
            raise ValueError("silent_errors is missing required field 'mtbf'")
        return cls(
            mtbf=float(data["mtbf"]),
            verify_cost=float(data.get("verify_cost", 0.0)),
            detection_latency=float(data.get("detection_latency", 0.0)),
        )

    @classmethod
    def resolve(cls, value) -> "SilentErrorSpec | None":
        """Normalize a user-facing value: None, a spec, or its dict form."""
        if value is None or isinstance(value, cls):
            return value
        return cls.from_dict(value)


#: Strike times drawn per refill; matches the batched engine's fail-stop
#: refill width so both streams amortize identically.
_STREAM_BATCH = 4096


class SilentStream:
    """Ordered strike times for one trial, drawn in 4096-wide batches.

    Gap draws accumulate into absolute times with the carry folded into
    the first gap of the next batch — the exact mechanics of the batched
    engine's fail-stop refill — and both trial engines consume this same
    class with the same per-trial child generator, so their silent-error
    draw sequences are bitwise identical by construction.
    """

    __slots__ = ("_scale", "_rng", "_times", "_idx", "_carry")

    def __init__(self, spec: SilentErrorSpec, rng: np.random.Generator):
        self._scale = spec.mtbf
        self._rng = rng
        self._times = np.empty(0)
        self._idx = 0
        self._carry = 0.0

    def _refill(self) -> None:
        gaps = self._rng.exponential(self._scale, _STREAM_BATCH)
        gaps[0] += self._carry
        self._times = np.add.accumulate(gaps)
        self._carry = float(self._times[-1])
        self._idx = 0

    def peek(self) -> float:
        """The next strike time (does not consume it)."""
        if self._idx >= self._times.size:
            self._refill()
        return float(self._times[self._idx])

    def pop(self) -> float:
        """Consume and return the next strike time."""
        value = self.peek()
        self._idx += 1
        return value

    def skip_past(self, t: float) -> int:
        """Drop every strike at or before ``t``; returns how many."""
        dropped = 0
        while self.peek() <= t:
            self._idx += 1
            dropped += 1
        return dropped
