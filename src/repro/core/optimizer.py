"""Bounded brute-force sweep + refinement for checkpoint-interval selection.

Section III-C of the paper optimizes a model "by evaluating the equation's
execution time at every point in a bounded region of the solution space":
``tau0`` in ``(0, T_B)`` and integer checkpoint counts ``N_1..N_{L-1}``
with the pattern's work bounded by the application length.  This module
implements that sweep once, shared by every model:

1. enumerate the model's candidate level subsets (full protocol, skip-top
   variants, single level, ... — technique-specific);
2. for each subset, enumerate integer count vectors from a graded
   candidate set, pruned by ``tau0_min * prod(N+1) <= T_B``;
3. evaluate the model over the full ``(count vector x tau0)`` grid in
   batched chunks when the model's ``predict_time_batch`` accepts a 2-D
   counts matrix (``supports_grid_eval``), falling back to one vectorized
   call per count vector, and to scalar ``predict_time`` calls for models
   with no batch path at all;
4. refine the winner: golden-section search on ``tau0`` plus a hill-climb
   over neighbouring integer counts.

The sweep is exhaustive over the bounded grid, so — as the paper argues —
the result is the global optimum of the model up to grid resolution, which
the refinement then sharpens.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence

import numpy as np

from .interfaces import CheckpointModel, Objective, OptimizationResult, get_objective
from .numerics import ModelDiagnostics, OptimizationCertificate
from .plan import CheckpointPlan

__all__ = ["sweep_plans", "golden_section", "enumerate_count_vectors"]

# Graded candidate sets: wider count vectors use sparser grids; the
# hill-climb refinement bridges the gaps.
_CAND_1 = tuple(range(1, 17)) + (20, 24, 32, 40, 48, 64, 96, 128)
_CAND_2 = tuple(range(1, 17)) + (20, 24, 32, 40, 48, 64)
_CAND_3 = tuple(range(1, 11)) + (12, 16, 20, 24, 32, 48)


def _candidates_for(num_counts: int) -> tuple[int, ...]:
    if num_counts <= 1:
        return _CAND_1
    if num_counts == 2:
        return _CAND_2
    return _CAND_3


def enumerate_count_vectors(
    num_counts: int,
    product_bound: float,
    candidates: Sequence[int] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield integer count vectors with ``prod(N_i + 1) <= product_bound``.

    ``num_counts == 0`` yields the single empty vector (single-level
    plans).  Candidates default to a graded set that keeps the sweep
    tractable for deep protocols; the caller's refinement step is expected
    to polish between grid points.
    """
    cands = tuple(candidates) if candidates is not None else _candidates_for(num_counts)
    if num_counts == 0:
        yield ()
        return

    def rec(prefix: tuple[int, ...], budget: float) -> Iterator[tuple[int, ...]]:
        depth = len(prefix)
        for n in cands:
            if n + 1 > budget:
                continue
            nxt = prefix + (n,)
            if depth + 1 == num_counts:
                yield nxt
            else:
                yield from rec(nxt, budget / (n + 1))

    yield from rec((), product_bound)


def golden_section(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    iterations: int = 60,
    tol: float = 0.0,
    full_output: bool = False,
    sense: str = "min",
) -> tuple[float, float] | tuple[float, float, int]:
    """Optimize a unimodal scalar function on ``[lo, hi]``.

    Returns ``(argmin, min)``, or ``(argmin, min, evaluations)`` with
    ``full_output=True`` where ``evaluations`` is the exact number of
    ``fn`` calls made.  ``sense="min"`` (the default) minimizes;
    ``sense="max"`` maximizes — the registered objectives all reduce to
    scores-to-minimize, but callers optimizing a raw quantity (e.g. an
    availability curve directly) can flip the sense instead of negating
    by hand.  The model cost curves in ``tau0`` are smooth and
    unimodal for fixed counts (checkpoint overhead decreasing, failure
    rework increasing), which golden-section search exploits.

    ``tol > 0`` enables early termination once the bracket has shrunk to
    ``tol * max(|lo|, |hi|)`` (relative width) — the iteration budget then
    acts as a cap rather than a fixed cost.

    Degenerate objectives have a defined contract rather than undefined
    behaviour (pinned by the regression tests):

    * **All-infinite** ``fn``: every comparison sees ``inf <= inf``, so the
      bracket walks toward ``lo`` and the search returns
      ``(x, math.inf)`` for some interior ``x`` — the caller must treat a
      non-finite minimum as "no feasible interval", never as a value.
    * **Flat / already-converged bracket**: with ``tol > 0`` and
      ``hi - lo`` at or below the width floor the loop exits immediately
      after the two probe evaluations (``evaluations == 2``) and returns
      the better probe.  A flat ``fn`` returns one of the probes with the
      shared value — stable, not an error.
    """
    if sense not in ("min", "max"):
        raise ValueError(f"sense must be 'min' or 'max', got {sense!r}")
    if sense == "max":
        x, fx, evals = golden_section(
            lambda t: -fn(t), lo, hi, iterations=iterations, tol=tol,
            full_output=True,
        )
        if full_output:
            return x, -fx, evals
        return x, -fx
    if not (hi > lo):
        raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = fn(c), fn(d)
    evals = 2
    width_floor = tol * max(abs(lo), abs(hi))
    for _ in range(iterations):
        if tol > 0.0 and (b - a) <= width_floor:
            break
        if fc <= fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = fn(d)
        evals += 1
    x, fx = (c, fc) if fc <= fd else (d, fd)
    if full_output:
        return x, fx, evals
    return x, fx


def _model_kwargs(
    model: CheckpointModel, diagnostics: ModelDiagnostics | None
) -> dict:
    """Diagnostics keyword for models that opt in, empty otherwise.

    Third-party models predating the numerics guard keep their plain
    ``predict_time(plan)`` signature; only ``supports_diagnostics`` models
    receive the accumulator.
    """
    if diagnostics is not None and getattr(model, "supports_diagnostics", False):
        return {"diagnostics": diagnostics}
    return {}


def _poison_check(
    times: np.ndarray, diagnostics: ModelDiagnostics | None, tau0s
) -> None:
    """Record NaN poisoning of a batch grid as a loud diagnostic.

    A NaN anywhere in a sweep grid means a model violated the
    finite-or-``+inf`` contract; the cells still lose (they are masked to
    ``inf`` by the unchanged selection logic below) but the event makes
    the violation visible in the optimization certificate instead of
    silently vanishing into the mask.
    """
    if diagnostics is None:
        return
    nan_mask = np.isnan(times)
    if nan_mask.any():
        diagnostics.record_mask(
            "optimizer.grid", "nan", nan_mask,
            values=np.broadcast_to(tau0s, times.shape), label="tau0",
        )


def _batch_eval(
    model: CheckpointModel,
    levels: tuple[int, ...],
    counts: tuple[int, ...],
    tau0s: np.ndarray,
    diagnostics: ModelDiagnostics | None = None,
    objective: Objective | None = None,
) -> np.ndarray:
    """Vectorized objective scoring (with the objective's scalar fallback).

    Under the default ``time`` objective this is exactly the model's
    ``predict_time_batch`` (or a scalar ``predict_time`` loop), so the
    returned scores are the predicted times, bitwise.
    """
    obj = get_objective("time") if objective is None else objective
    out = np.asarray(
        obj.batch_scores(
            model, levels, counts, tau0s, **_model_kwargs(model, diagnostics)
        ),
        dtype=float,
    )
    if out.shape != tau0s.shape:
        raise ValueError(
            f"{type(model).__name__} batch scores for objective "
            f"{obj.name!r} have shape {out.shape}, expected {tau0s.shape}"
        )
    return out


#: Count vectors per batched grid evaluation.  Bounds peak memory (each
#: chunk allocates O(chunk * tau0_points) arrays per model stage) while
#: keeping the numpy calls large enough to amortize dispatch overhead.
_GRID_CHUNK = 256


def _grid_eval_subset(
    model: CheckpointModel,
    levels: tuple[int, ...],
    vecs: list[tuple[int, ...]],
    tau0s: np.ndarray,
    pattern_cap: float,
    diagnostics: ModelDiagnostics | None = None,
    objective: Objective | None = None,
) -> tuple[float, tuple[int, ...], float, int]:
    """Evaluate every (count vector, tau0) cell of one level subset batched.

    Returns ``(best_score, best_counts, best_tau0, evaluations)`` for the
    subset.  Infeasible cells (pattern work exceeding ``pattern_cap``) are
    masked to infinity rather than skipped, so the winning cell — and the
    first-wins tie-breaking order — matches the per-vector sweep exactly.
    NaN cells are additionally recorded as ``optimizer.grid`` poisoning
    events on ``diagnostics`` before being masked.
    """
    obj = get_objective("time") if objective is None else objective
    best_score = math.inf
    best_counts: tuple[int, ...] = ()
    best_tau0 = float(tau0s[-1])
    evaluations = 0
    for start in range(0, len(vecs), _GRID_CHUNK):
        chunk = vecs[start : start + _GRID_CHUNK]
        counts_mat = np.asarray(chunk, dtype=float)
        strides = np.prod(counts_mat + 1.0, axis=1)[:, None]
        feasible = tau0s[None, :] * strides <= pattern_cap
        if not feasible.any():
            continue
        scores = np.asarray(
            obj.batch_scores(
                model, levels, counts_mat, tau0s,
                **_model_kwargs(model, diagnostics),
            ),
            dtype=float,
        )
        if scores.shape != (len(chunk), tau0s.size):
            raise ValueError(
                f"{type(model).__name__} batch scores for objective "
                f"{obj.name!r} have shape {scores.shape} for a counts grid, "
                f"expected {(len(chunk), tau0s.size)}"
            )
        evaluations += int(feasible.sum())
        _poison_check(scores, diagnostics, tau0s[None, :])
        scores = np.where(feasible & np.isfinite(scores), scores, math.inf)
        v, t = divmod(int(np.argmin(scores)), tau0s.size)
        if scores[v, t] < best_score:
            best_score = float(scores[v, t])
            best_counts = tuple(int(c) for c in chunk[v])
            best_tau0 = float(tau0s[t])
    return best_score, best_counts, best_tau0, evaluations


def sweep_plans(
    model: CheckpointModel,
    tau0_points: int = 96,
    tau0_min: float | None = None,
    tau0_max: float | None = None,
    count_candidates: Sequence[int] | None = None,
    refine: bool = True,
    max_pattern_work: float | None = None,
    grid_eval: bool = True,
    diagnostics: ModelDiagnostics | None = None,
    objective: str | Objective = "time",
) -> OptimizationResult:
    """Run the Section III-C bounded sweep for ``model`` and refine the winner.

    Parameters mirror the paper's bounds: ``tau0`` is swept on a
    log-spaced grid inside ``(0, T_B)`` and count vectors are pruned so a
    full pattern never exceeds the application's work
    (``tau0 * prod(N_i + 1) <= T_B``).

    ``objective`` selects the registered scoring
    (:data:`~repro.core.interfaces.OBJECTIVES`): the default ``"time"``
    minimizes predicted execution time — every score below *is* a
    predicted time, bitwise identical to the pre-objective sweep — while
    ``"availability"`` maximizes the steady-state useful-work fraction
    (scored as its negation, ``+inf`` marking availability-infeasible
    plans such as level subsets that leave a severity unprotected).

    ``grid_eval=True`` (the default) evaluates the entire
    ``(count vector x tau0)`` grid of each level subset in batched 2-D
    ``predict_time_batch`` calls for models that advertise
    ``supports_grid_eval``; ``False`` forces the one-call-per-count-vector
    path (kept for models without a grid-capable batch method, and as the
    benchmark baseline).  Both paths select the same winning plan.

    Numerics events — clamps/overflows recorded by ``supports_diagnostics``
    models, NaN grid poisoning, infeasible refinement brackets — are
    aggregated on ``diagnostics`` (an internal accumulator is created when
    none is passed) and summarized in the
    :class:`~repro.core.numerics.OptimizationCertificate` attached to the
    returned result.
    """
    if diagnostics is None:
        diagnostics = ModelDiagnostics()
    obj = get_objective(objective)
    system = model.system
    T_B = system.baseline_time
    pattern_cap = max_pattern_work if max_pattern_work is not None else T_B
    lo = tau0_min if tau0_min is not None else max(1e-4, T_B * 1e-5)
    hi = tau0_max if tau0_max is not None else T_B
    hi = min(hi, pattern_cap)
    if not (0 < lo < hi):
        raise ValueError(f"invalid tau0 bounds [{lo}, {hi}] (pattern cap {pattern_cap})")
    tau0s = np.geomspace(lo, hi, tau0_points)

    best_score = math.inf
    best_levels: tuple[int, ...] | None = None
    best_counts: tuple[int, ...] = ()
    best_tau0 = hi
    evaluations = 0

    for levels in model.candidate_level_subsets():
        num_counts = len(levels) - 1
        vec_iter = enumerate_count_vectors(num_counts, pattern_cap / lo, count_candidates)
        if grid_eval and num_counts > 0 and getattr(model, "supports_grid_eval", False):
            vecs = list(vec_iter)
            if not vecs:
                continue
            s_score, s_counts, s_tau0, s_evals = _grid_eval_subset(
                model, levels, vecs, tau0s, pattern_cap, diagnostics, obj
            )
            evaluations += s_evals
            if s_score < best_score:
                best_score = s_score
                best_levels = levels
                best_counts = s_counts
                best_tau0 = s_tau0
            continue
        for counts in vec_iter:
            stride = math.prod(n + 1 for n in counts)
            mask = tau0s * stride <= pattern_cap
            if not mask.any():
                continue
            ts = tau0s[mask]
            scores = _batch_eval(model, levels, counts, ts, diagnostics, obj)
            evaluations += ts.size
            _poison_check(scores, diagnostics, ts)
            finite = np.isfinite(scores)
            if not finite.any():
                continue
            idx = int(np.argmin(np.where(finite, scores, math.inf)))
            if scores[idx] < best_score:
                best_score = float(scores[idx])
                best_levels = levels
                best_counts = counts
                best_tau0 = float(ts[idx])

    if best_levels is None:
        detail = (
            "every candidate evaluated to infinite expected time"
            if obj.name == "time"
            else f"every candidate was infeasible under the {obj.name!r} objective"
        )
        raise RuntimeError(
            f"{type(model).__name__} found no feasible plan for {system.name}; "
            + detail
        )

    refinement_moved = False
    if refine:
        sweep_winner = (best_levels, best_counts, best_tau0, best_score)
        best_levels, best_counts, best_tau0, best_score, extra = _refine(
            model, best_levels, best_counts, best_tau0, best_score, lo, pattern_cap,
            diagnostics, obj,
        )
        evaluations += extra
        refinement_moved = (
            (best_levels, best_counts, best_tau0, best_score) != sweep_winner
        )

    plan = CheckpointPlan(levels=best_levels, tau0=best_tau0, counts=best_counts)
    predicted_time, predicted_efficiency = obj.summarize(model, plan, best_score)
    return OptimizationResult(
        plan=plan,
        predicted_time=predicted_time,
        predicted_efficiency=predicted_efficiency,
        evaluations=evaluations,
        certificate=OptimizationCertificate.from_diagnostics(
            diagnostics, evaluations=evaluations, refinement_moved=refinement_moved,
            objective=obj.name,
        ),
        objective=obj.name,
    )


#: Relative bracket width at which the refinement's golden-section polish
#: stops: far below the model's meaningful resolution in tau0, so results
#: are unchanged, but the search no longer pays a fixed 60-iteration cost
#: when it has already converged.
_REFINE_TOL = 1e-10


def _refine(
    model: CheckpointModel,
    levels: tuple[int, ...],
    counts: tuple[int, ...],
    tau0: float,
    score: float,
    tau0_lo: float,
    pattern_cap: float,
    diagnostics: ModelDiagnostics | None = None,
    objective: Objective | None = None,
):
    """Golden-section tau0 polish + integer hill-climb on the counts."""
    obj = get_objective("time") if objective is None else objective
    evals = 0
    # The polish runs diagnostics-free: it re-evaluates scalar points
    # inside the region the grid sweep already swept (and recorded events
    # for), and threading the collector through ~300 one-element
    # predict_time calls costs ~20% of optimize() wall-clock for no new
    # information.  Refinement-specific incidents (infeasible brackets)
    # are still recorded below under "optimizer.refine".
    kwargs = _model_kwargs(model, None)

    def polish(cts: tuple[int, ...], center: float) -> tuple[float, float]:
        nonlocal evals
        stride = math.prod(n + 1 for n in cts)
        hi_t = pattern_cap / stride
        if hi_t <= tau0_lo:
            # Contract: a candidate whose feasible tau0 bracket is empty
            # (pattern can't fit even at the smallest interval) is priced
            # +inf at the incoming center — it can never win the climb.
            # Recorded so certificates show the hill-climb probed past the
            # feasible region rather than silently skipping.
            if diagnostics is not None:
                diagnostics.record(
                    "optimizer.refine", "divergence",
                    worst={"stride": float(stride)},
                )
            return center, math.inf
        a = max(tau0_lo, center / 4.0)
        b = min(hi_t, center * 4.0)
        if not b > a:
            a, b = tau0_lo, hi_t
        fn = lambda t: obj.plan_score(
            model, CheckpointPlan(levels=levels, tau0=t, counts=cts), **kwargs
        )
        t0, tt, n = golden_section(fn, a, b, tol=_REFINE_TOL, full_output=True)
        evals += n
        return t0, tt

    tau0, s_ref = polish(counts, tau0)
    if s_ref < score:
        score = s_ref

    steps = (1, 2, 4)
    for _ in range(50):  # bounded hill-climb; typically converges in a few moves
        improved = False
        for k in range(len(counts)):
            for sign in (1, -1):
                for step in steps:
                    cand = counts[k] + sign * step
                    if cand < 1:
                        continue
                    cts = counts[:k] + (cand,) + counts[k + 1 :]
                    t0, tt = polish(cts, tau0)
                    if tt < score:
                        counts, tau0, score = cts, t0, tt
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return levels, counts, tau0, score, evals
