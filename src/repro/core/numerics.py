"""Numerics guard: safe evaluation primitives and structured diagnostics.

The model equations legitimately diverge at the edges of their domain —
``expm1(lam * tau)`` overflows for failure-dominated systems, the
negative-binomial retry count explodes as per-attempt failure probability
approaches 1, and steady-state efficiencies collapse to zero.  The guard
layer's contract is that every model answer is **finite or ``+inf``,
never NaN**, and that every clamp, overflow or divergence that turned a
would-be number into ``+inf`` is *recorded* as a structured
:class:`NumericsEvent` instead of being silently masked.

Invariants (enforced by ``repro.validate`` and the test suite):

1. *Finite-or-inf*: model predictions are strictly positive finite floats
   or ``+inf``; NaN never escapes a guarded evaluation.
2. *Exactness*: on inputs where the unguarded code produced a finite
   value, the guarded code is **bitwise identical** — the primitives only
   observe and record, they do not reroute finite arithmetic.
3. *Loudness*: whenever a prediction is ``+inf``, at least one event was
   recorded on the :class:`ModelDiagnostics` for that evaluation (when
   one was supplied).

Event ``kind`` taxonomy:

==============  =====================================================
``clamp``       a guard threshold fired (e.g. ``lam * tau`` beyond the
                negative-binomial horizon) and the result was pinned
                to ``+inf`` by policy
``overflow``    floating-point overflow produced ``+inf`` organically
``divergence``  a quantity left its meaningful domain (zero/negative
                efficiency, infeasible refinement bracket, ...)
``nan``         an invalid operation produced NaN (always re-mapped to
                ``+inf`` before the caller sees it)
==============  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "NumericsEvent",
    "ModelDiagnostics",
    "OptimizationCertificate",
    "flag",
    "safe_expm1",
    "safe_div",
    "log1p_sum",
    "prod1p",
]


@dataclass
class NumericsEvent:
    """Aggregated record of one kind of numeric incident at one site.

    Attributes
    ----------
    site:
        Where in the evaluation the incident happened, dotted by owner —
        e.g. ``"dauwe.gamma"``, ``"moody.efficiency"``,
        ``"optimizer.grid"``.
    kind:
        Taxonomy entry: ``"clamp"``, ``"overflow"``, ``"divergence"`` or
        ``"nan"`` (see the module docstring).
    count:
        Number of grid cells / scalar evaluations affected.
    worst:
        Worst offender inputs observed, keyed by a caller-chosen label
        (e.g. ``{"rate_time": 1.2e4}``) — enough to reproduce the most
        extreme cell without storing the whole grid.
    """

    site: str
    kind: str
    count: int = 0
    worst: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"site": self.site, "kind": self.kind, "count": self.count}
        if self.worst:
            data["worst"] = dict(self.worst)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NumericsEvent":
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            count=int(data["count"]),
            worst={str(k): float(v) for k, v in dict(data.get("worst", {})).items()},
        )


def _worst_of(values, mask) -> float:
    """Largest offending value under ``mask``; NaN offenders rank worst."""
    vals = np.broadcast_to(np.asarray(values, dtype=float), np.shape(mask))
    off = vals[np.asarray(mask, dtype=bool)] if np.ndim(mask) else np.atleast_1d(vals)
    if off.size == 0:
        return math.inf
    with np.errstate(invalid="ignore"):
        return float(np.max(np.where(np.isnan(off), np.inf, off)))


class ModelDiagnostics:
    """Per-evaluation accumulator of :class:`NumericsEvent` records.

    One instance is threaded through ``predict_time(..., diagnostics=)``
    and the optimizer sweep; events with the same ``(site, kind)`` are
    aggregated (counts summed, worst offenders maxed), so the object stays
    O(#sites) even across million-cell grids.
    """

    def __init__(self) -> None:
        self._events: dict[tuple[str, str], NumericsEvent] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        site: str,
        kind: str,
        count: int = 1,
        worst: Mapping[str, float] | None = None,
    ) -> None:
        """Add ``count`` incidents at ``(site, kind)``."""
        if count <= 0:
            return
        ev = self._events.get((site, kind))
        if ev is None:
            ev = NumericsEvent(site=site, kind=kind)
            self._events[(site, kind)] = ev
        ev.count += int(count)
        if worst:
            for label, value in worst.items():
                value = float(value)
                prev = ev.worst.get(label)
                if prev is None or value > prev:
                    ev.worst[label] = value

    def record_mask(
        self,
        site: str,
        kind: str,
        mask,
        values=None,
        label: str = "value",
    ) -> None:
        """Record every True cell of a boolean ``mask`` (scalar or array).

        ``values`` (broadcastable to ``mask``) supplies the offending
        inputs; the maximum over flagged cells is kept as the worst
        offender under ``label``.
        """
        n = int(np.count_nonzero(mask))
        if n == 0:
            return
        worst = {label: _worst_of(values, mask)} if values is not None else None
        self.record(site, kind, count=n, worst=worst)

    def merge(self, other: "ModelDiagnostics") -> None:
        """Fold ``other``'s events into this accumulator."""
        for ev in other.events():
            self.record(ev.site, ev.kind, count=ev.count, worst=ev.worst)

    # ------------------------------------------------------------------
    def events(self) -> list[NumericsEvent]:
        """All events, sorted by site then kind (deterministic output)."""
        return [self._events[k] for k in sorted(self._events)]

    def counts(self) -> dict[str, int]:
        """Flat ``{"site:kind": count}`` mapping (the manifest currency)."""
        return {f"{ev.site}:{ev.kind}": ev.count for ev in self.events()}

    @property
    def total(self) -> int:
        return sum(ev.count for ev in self._events.values())

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ModelDiagnostics {self.counts()!r}>"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"total": self.total, "events": [ev.to_dict() for ev in self.events()]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelDiagnostics":
        diag = cls()
        for item in data.get("events", ()):
            ev = NumericsEvent.from_dict(item)
            diag.record(ev.site, ev.kind, count=ev.count, worst=ev.worst)
        return diag


def flag(
    diagnostics: ModelDiagnostics | None,
    site: str,
    kind: str,
    mask,
    values=None,
    label: str = "value",
):
    """Record ``mask``'s True cells (when diagnostics are on) and return it.

    Designed for the models' guard lines: ``bad |= flag(diag, site, kind,
    condition, ...)`` records the incident and keeps the original boolean
    flow — with ``diagnostics=None`` it is exactly the bare condition, so
    the finite path is untouched.
    """
    if diagnostics is not None:
        diagnostics.record_mask(site, kind, mask, values=values, label=label)
    return mask


# ----------------------------------------------------------------------
# safe evaluation primitives
# ----------------------------------------------------------------------
def safe_expm1(
    x,
    diagnostics: ModelDiagnostics | None = None,
    site: str = "expm1",
):
    """``expm1(x)`` with overflow recorded instead of silently suppressed.

    Bitwise identical to ``np.expm1`` under ``errstate(over="ignore")``:
    overflow still yields ``+inf`` (the mathematically honest limit), but
    each overflowing cell is recorded as an ``overflow`` event carrying
    the largest offending exponent.
    """
    x = np.asarray(x, dtype=float)
    with np.errstate(over="ignore", invalid="ignore"):
        out = np.expm1(x)
    if diagnostics is not None:
        diagnostics.record_mask(site, "overflow", np.isinf(out), values=x, label="x")
        diagnostics.record_mask(site, "nan", np.isnan(out), values=x, label="x")
    return out


def safe_div(
    num,
    den,
    diagnostics: ModelDiagnostics | None = None,
    site: str = "div",
):
    """Elementwise ``num / den`` with divergences recorded, never warned.

    ``x / 0 -> inf`` (``divergence`` event), ``0 / 0`` and ``inf / inf``
    -> NaN (``nan`` event) — the raw IEEE quotient is returned unchanged
    so callers decide the remap policy; on finite quotients the result is
    bitwise identical to the bare division.
    """
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = num / den
    if diagnostics is not None:
        diagnostics.record_mask(
            site, "divergence", np.isinf(out), values=den, label="denominator"
        )
        diagnostics.record_mask(
            site, "nan", np.isnan(out), values=den, label="denominator"
        )
    return out


def log1p_sum(factors: Iterable):
    """``sum(log1p(f))`` — the log of ``prod(1 + f)``, overflow-free.

    The magnitude channel for :func:`prod1p`: even when the direct product
    overflows, the log-space sum remains finite and identifies how far
    past the representable range the chain went.
    """
    out = np.asarray(0.0)
    for f in factors:
        out = out + np.log1p(np.asarray(f, dtype=float))
    return out


def prod1p(
    factors: Iterable,
    diagnostics: ModelDiagnostics | None = None,
    site: str = "prod1p",
):
    """``prod(1 + f)`` over ``factors`` with overflow recorded in log space.

    The product is computed directly — bitwise identical to the naive
    chain ``(f0+1)*(f1+1)*...`` used by the models' stride computations —
    and only when a cell overflows is the log-space magnitude
    (:func:`log1p_sum`) evaluated to report the worst offender.
    """
    factors = list(factors)
    out = np.asarray(1.0)
    with np.errstate(over="ignore"):
        for f in factors:
            out = out * (np.asarray(f, dtype=float) + 1.0)
    if diagnostics is not None and np.isinf(out).any():
        diagnostics.record_mask(
            site, "overflow", np.isinf(out), values=log1p_sum(factors), label="log_product"
        )
    return out


# ----------------------------------------------------------------------
# optimization certificate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizationCertificate:
    """Bounded-iteration evidence attached to an ``OptimizationResult``.

    Attributes
    ----------
    evaluations:
        Total candidate-plan evaluations the sweep + refinement performed
        (the iteration bound actually spent).
    events:
        Flat ``{"site:kind": count}`` numerics-event totals observed while
        optimizing — clamps, overflows, divergences and NaNs seen across
        the whole grid, in :meth:`ModelDiagnostics.counts` form.
    refinement_moved:
        Whether the golden-section/hill-climb refinement changed the sweep
        winner (different counts, different ``tau0`` or a strictly better
        predicted time).
    objective:
        Registered name of the objective the sweep optimized
        (``"time"`` — the default and the only pre-objective behavior —
        or ``"availability"``).  Serialized only when not ``"time"``, so
        certificates written before the objective layer round-trip
        unchanged.
    """

    evaluations: int
    events: Mapping[str, int] = field(default_factory=dict)
    refinement_moved: bool = False
    objective: str = "time"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", {str(k): int(v) for k, v in dict(self.events).items()}
        )

    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "evaluations": self.evaluations,
            "events": dict(self.events),
            "refinement_moved": self.refinement_moved,
        }
        if self.objective != "time":
            data["objective"] = self.objective
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizationCertificate":
        return cls(
            evaluations=int(data["evaluations"]),
            events={str(k): int(v) for k, v in dict(data.get("events", {})).items()},
            refinement_moved=bool(data.get("refinement_moved", False)),
            objective=str(data.get("objective", "time")),
        )

    @classmethod
    def from_diagnostics(
        cls,
        diagnostics: ModelDiagnostics,
        evaluations: int,
        refinement_moved: bool = False,
        objective: str = "time",
    ) -> "OptimizationCertificate":
        return cls(
            evaluations=evaluations,
            events=diagnostics.counts(),
            refinement_moved=refinement_moved,
            objective=objective,
        )
