"""Mapping of failure severities onto the levels a plan actually uses.

The paper's equations index failures by checkpoint level because the full
protocol dedicates level ``i`` to severity ``i``.  As soon as a technique
uses a *subset* of the system's levels (Daly: top only; Di: top two;
short-application plans: bottom prefix — Sections II-C, IV-C, IV-F), each
used level must absorb every severity class it is the cheapest recoverer
for, and severities above the top used level become *unprotected*: they
restart the application from scratch.

:class:`LevelMapping` precomputes, for a ``(system, used levels)`` pair,
the effective per-used-level failure rates (the paper's ``lambda_i``),
severity shares (``S_i``), cumulative rates (``lambda_c``), checkpoint and
restart durations, and the unprotected tail rate/restart cost.  All five
analytic models consume this one structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..systems.spec import SystemSpec

__all__ = ["LevelMapping"]


@dataclass(frozen=True)
class LevelMapping:
    """Severity classes folded onto the used levels of a plan.

    Index ``k`` (0-based) ranges over the *used* levels in ascending
    order.  ``rates[k]`` is the total rate of failures recovered at used
    level ``k`` — the effective ``lambda_{k}`` of the paper's equations.
    """

    levels: tuple[int, ...]
    rates: tuple[float, ...]
    shares: tuple[float, ...]
    cumulative_rates: tuple[float, ...]
    checkpoint_times: tuple[float, ...]
    restart_times: tuple[float, ...]
    unprotected_rate: float
    unprotected_restart: float

    @classmethod
    def build(cls, system: SystemSpec, levels: tuple[int, ...]) -> "LevelMapping":
        """Fold ``system``'s severity classes onto ``levels``.

        Severity ``s`` is recovered at the lowest used level ``>= s``;
        severities above the top used level contribute to the unprotected
        tail, whose restart cost is the rate-weighted mean of their
        per-severity restart times (reloading the application start state
        costs the severity's own restart time).
        """
        if not levels:
            raise ValueError("a plan must use at least one level")
        if any(lv < 1 or lv > system.num_levels for lv in levels):
            raise ValueError(
                f"levels {levels} out of range for {system.num_levels}-level "
                f"system {system.name}"
            )
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError(f"levels must be strictly ascending, got {levels}")

        sys_rates = system.level_rates
        total = system.failure_rate
        rates = [0.0] * len(levels)
        un_rate = 0.0
        un_cost = 0.0
        for s in range(1, system.num_levels + 1):
            target = next((k for k, lv in enumerate(levels) if lv >= s), None)
            if target is None:
                un_rate += sys_rates[s - 1]
                un_cost += sys_rates[s - 1] * system.restart_time(s)
            else:
                rates[target] += sys_rates[s - 1]
        cum: list[float] = []
        acc = 0.0
        for r in rates:
            acc += r
            cum.append(acc)
        return cls(
            levels=tuple(levels),
            rates=tuple(rates),
            shares=tuple(r / total for r in rates),
            cumulative_rates=tuple(cum),
            checkpoint_times=tuple(system.checkpoint_time(lv) for lv in levels),
            restart_times=tuple(system.restart_time(lv) for lv in levels),
            unprotected_rate=un_rate,
            unprotected_restart=(un_cost / un_rate) if un_rate > 0 else 0.0,
        )

    @property
    def num_used(self) -> int:
        return len(self.levels)

    @property
    def protected_rate(self) -> float:
        """Total rate of failures some used level can recover."""
        return self.cumulative_rates[-1]
