"""Cross-check validator: optimize-then-simulate under adversarial regimes.

``python -m repro validate [--stress] [--quick]`` runs every technique
over a system catalog — the paper's Table I by default, the adversarial
:data:`~repro.systems.stress.STRESS_SYSTEMS` with ``--stress`` — and
checks the numerics-guard invariants end to end:

1. **Boundary predictions**: each model is evaluated on every
   :func:`~repro.systems.stress.boundary_taus` probe of every candidate
   level subset.  Predictions must be finite-or-``+inf`` and strictly
   positive; NaN anywhere is a violation, and an ``+inf`` from a
   diagnostics-capable model without a recorded
   :class:`~repro.core.numerics.NumericsEvent` is a *silent-inf*
   violation (the guard must be loud).
2. **Optimization**: the Section III-C sweep must either return a finite
   plan carrying an :class:`~repro.core.numerics.OptimizationCertificate`
   or raise the defined ``RuntimeError`` ("no feasible plan") — reported
   as a ``hopeless`` verdict, not a failure.  Any other exception is a
   crash violation.
3. **Simulation cross-check**: feasible plans are measured by the
   simulator (small trial counts, wall-clock-capped) and the
   model-vs-simulator efficiency deviation is *reported* as a band —
   models legitimately deviate outside their derivation regime, so
   deviation is informative output, never an invariant.
4. **Objective/failure-mode variants**: the multilevel trio is
   re-validated under the availability objective (availability
   predictions must be NaN-free and within ``[0, 1]`` at every boundary
   probe; the model's availability is cross-checked against the
   simulator's measured useful-work fraction as a deviation band), and
   the Dauwe recursion under each system-scaled
   :func:`~repro.systems.stress.silent_variants` overlay — where the
   scalar and batched trial engines must stay **bitwise identical**
   (any divergence is an ``engine-divergence`` violation).
5. **Regime pass** (``--stress`` only): every handcrafted
   :func:`~repro.systems.stress.drift_regimes` overlay of the Table I
   catalog is validated twice over — the scalar and batched engines
   must stay bitwise identical on the piecewise-exponential regime
   streams, and the adaptive replanner of
   :func:`~repro.simulator.compare_adaptive` must finish no later than
   the static plan on average over shared drifting failure streams
   (``adaptive-loses`` violation otherwise; the regimes are curated to
   be observable, survivable, and worth adapting to, so a loss means
   the detector or replanner regressed).  The carryover-priced
   :func:`~repro.core.plan_regimes` prediction versus the adaptive
   walker's measurement joins the deviation band.

The command exits non-zero iff an invariant is violated; deviation bands
and per-site event totals always print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from .core.numerics import ModelDiagnostics
from .core.plan import CheckpointPlan
from .core.silent import SilentErrorSpec
from .experiments.runner import DEFAULT_TECHNIQUES, pair_seed
from .models import make_model
from .simulator import simulate_many
from .systems import TEST_SYSTEM_ORDER, TEST_SYSTEMS
from .systems.spec import SystemSpec
from .systems.stress import (
    boundary_taus,
    drift_regimes,
    silent_variants,
    stress_systems,
)

__all__ = [
    "PairReport",
    "ValidationReport",
    "Violation",
    "format_validation",
    "run_validation",
]

#: Per-trial event-scale caps above which the simulation cross-check is
#: skipped (the discrete simulator walks every checkpoint position and
#: failure; beyond these the check would dominate the validator's
#: wall-clock without testing anything new about the *models*).
_MAX_EXPECTED_FAILURES = 2e4
_MAX_PATTERN_POSITIONS = 5e4
#: Total scalar-loop event budget for the engine-parity re-run: the
#: scalar engine processes events one at a time in Python, so parity is
#: only checked where its worst case stays cheap (the bitwise invariant
#: is also pinned by the test suite on moderate configurations).
_MAX_PARITY_EVENTS = 1e4


@dataclass(frozen=True)
class Violation:
    """One invariant breach; any violation makes the validator exit non-zero."""

    system: str
    technique: str
    check: str  # "nan" | "non-positive" | "silent-inf" | "crash"
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "technique": self.technique,
            "check": self.check,
            "detail": self.detail,
        }


@dataclass
class PairReport:
    """Outcome of validating one (system, technique) pair.

    ``variant`` names a non-default configuration of the pair — the
    availability objective (``"availability"``) or a silent-error
    overlay (``"sdc0"``..) — and is empty for the paper's baseline runs.
    """

    system: str
    technique: str
    verdict: str  # "ok" | "hopeless" | "predict-only" | "crash"
    predicted_efficiency: float | None = None
    simulated_efficiency: float | None = None
    deviation: float | None = None
    probe_evaluations: int = 0
    events: Mapping[str, int] = field(default_factory=dict)
    note: str = ""
    variant: str = ""

    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "technique": self.technique,
            "verdict": self.verdict,
            "predicted_efficiency": self.predicted_efficiency,
            "simulated_efficiency": self.simulated_efficiency,
            "deviation": self.deviation,
            "probe_evaluations": self.probe_evaluations,
            "events": dict(self.events),
            "note": self.note,
            "variant": self.variant,
        }


@dataclass
class ValidationReport:
    """Everything one ``repro validate`` run observed."""

    catalog: str  # "standard" | "stress"
    pairs: list[PairReport] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def event_totals(self) -> dict[str, int]:
        """Aggregate ``site:kind`` event counts across every pair."""
        totals: dict[str, int] = {}
        for pair in self.pairs:
            for key, count in pair.events.items():
                totals[key] = totals.get(key, 0) + count
        return dict(sorted(totals.items()))

    def deviation_band(self) -> tuple[float, float] | None:
        """(min, max) predicted-minus-simulated efficiency, when measured."""
        devs = [p.deviation for p in self.pairs if p.deviation is not None]
        if not devs:
            return None
        return min(devs), max(devs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "catalog": self.catalog,
            "ok": self.ok,
            "pairs": [p.to_dict() for p in self.pairs],
            "violations": [v.to_dict() for v in self.violations],
            "event_totals": self.event_totals(),
        }


def _probe_specs(model) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """(levels, counts) combinations probed at every boundary tau0."""
    probes: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for levels in model.candidate_level_subsets():
        num_counts = len(levels) - 1
        if num_counts == 0:
            probes.append((tuple(levels), ()))
        else:
            probes.append((tuple(levels), (1,) * num_counts))
            probes.append((tuple(levels), (4,) * num_counts))
    return probes


def _check_predictions(
    report: ValidationReport,
    pair: PairReport,
    times: np.ndarray,
    events_before: int,
    diag: ModelDiagnostics | None,
    context: str,
) -> None:
    """Apply the finite-or-inf invariants to one batch of predictions."""
    times = np.asarray(times, dtype=float)
    if np.isnan(times).any():
        report.violations.append(
            Violation(pair.system, pair.technique, "nan",
                      f"NaN prediction at {context}")
        )
    finite = np.isfinite(times)
    if (times[finite] <= 0).any():
        report.violations.append(
            Violation(pair.system, pair.technique, "non-positive",
                      f"non-positive finite prediction at {context}")
        )
    if diag is not None and np.isinf(times).any() and diag.total == events_before:
        report.violations.append(
            Violation(pair.system, pair.technique, "silent-inf",
                      f"+inf prediction with no recorded event at {context}")
        )


def _probe_boundaries(
    report: ValidationReport,
    pair: PairReport,
    model,
    system: SystemSpec,
    diag: ModelDiagnostics | None,
) -> None:
    """Invariant check 1: boundary-of-domain predictions."""
    taus = np.asarray(boundary_taus(system), dtype=float)
    for levels, counts in _probe_specs(model):
        context = f"levels={levels} counts={counts}"
        kwargs = {"diagnostics": diag} if diag is not None else {}
        before = diag.total if diag is not None else 0
        batch = getattr(model, "predict_time_batch", None)
        if batch is not None:
            times = np.asarray(batch(levels, counts, taus, **kwargs), dtype=float)
        else:
            times = np.array(
                [
                    model.predict_time(
                        CheckpointPlan(levels=levels, tau0=float(t), counts=counts),
                        **kwargs,
                    )
                    for t in taus
                ],
                dtype=float,
            )
        pair.probe_evaluations += times.size
        _check_predictions(report, pair, times, before, diag, context)


def _probe_availability(
    report: ValidationReport,
    pair: PairReport,
    model,
    system: SystemSpec,
    diag: ModelDiagnostics | None,
) -> None:
    """Availability invariants: NaN-free and within [0, 1] at the boundaries.

    Zero is legitimate (infeasible under the availability objective, e.g.
    an unprotected severity class), so unlike time predictions there is
    no positivity requirement — only range and NaN-freedom.
    """
    batch = getattr(model, "predict_availability_batch", None)
    if batch is None:
        return
    taus = np.asarray(boundary_taus(system), dtype=float)
    for levels, counts in _probe_specs(model):
        context = f"availability levels={levels} counts={counts}"
        kwargs = {"diagnostics": diag} if diag is not None else {}
        avail = np.asarray(batch(levels, counts, taus, **kwargs), dtype=float)
        pair.probe_evaluations += avail.size
        if np.isnan(avail).any():
            report.violations.append(
                Violation(pair.system, pair.technique, "nan",
                          f"NaN availability at {context}")
            )
        if ((avail < 0.0) | (avail > 1.0 + 1e-9)).any():
            report.violations.append(
                Violation(pair.system, pair.technique, "availability-range",
                          f"availability outside [0, 1] at {context}")
            )


def _check_engine_parity(
    report: ValidationReport,
    pair: PairReport,
    system: SystemSpec,
    plan: CheckpointPlan,
    silent_errors: SilentErrorSpec,
    trials: int,
    seed: int | None,
    max_time: float | None,
) -> None:
    """Scalar-vs-batch bitwise identity with the silent overlay on.

    The two trial engines promise bitwise-equal results for the same
    seeds; the silent-error threading must preserve that, so any field
    differing in any trial is an ``engine-divergence`` invariant
    violation, not a tolerance question.
    """
    common = dict(
        trials=min(trials, 8), seed=seed, max_time=max_time,
        silent_errors=silent_errors, return_trials=True,
    )
    _, scalar = simulate_many(system, plan, engine="scalar", **common)
    _, batch = simulate_many(system, plan, engine="batch", **common)
    for i, (a, b) in enumerate(zip(scalar, batch)):
        if a != b:
            report.violations.append(
                Violation(
                    pair.system, pair.technique, "engine-divergence",
                    f"scalar and batch engines disagree on trial {i} "
                    f"under silent errors {silent_errors.to_dict()}",
                )
            )
            return


def _sweep_options(system: SystemSpec, quick: bool) -> dict:
    """Stress-tuned sweep bounds: coarse but fully guarded."""
    return {
        "tau0_points": 16 if quick else 32,
        "count_candidates": (1, 2, 4, 8, 16),
    }


def _worst_case_events(
    system: SystemSpec,
    predicted_time: float,
    silent_errors: SilentErrorSpec | None,
) -> float:
    """Per-trial event-count bound used to gate simulation cost.

    Gate on the *predicted makespan*, not the baseline: a barely
    feasible plan (tiny efficiency) runs orders of magnitude longer
    than T_B and accrues a failure event per MTBF for the whole span.
    A silent overlay adds its strike rate, and a positive detection
    latency can invalidate committed checkpoints until trials hit the
    ``max_time`` ceiling (50x predicted) — in that regime the model's
    makespan is no bound at all, so the ceiling itself is the horizon.
    """
    horizon = (
        predicted_time
        if math.isfinite(predicted_time) and predicted_time > 0
        else system.baseline_time
    )
    rate = 1.0 / system.mtbf
    if silent_errors is not None:
        rate += silent_errors.rate
        if silent_errors.detection_latency > 0:
            horizon *= 50.0
    return horizon * rate


def _simulation_tractable(
    system: SystemSpec,
    plan: CheckpointPlan,
    predicted_time: float,
    silent_errors: SilentErrorSpec | None = None,
) -> bool:
    expected_failures = _worst_case_events(system, predicted_time, silent_errors)
    positions = system.baseline_time / plan.tau0
    return (
        expected_failures <= _MAX_EXPECTED_FAILURES
        and positions <= _MAX_PATTERN_POSITIONS
    )


def _validate_pair(
    report: ValidationReport,
    system: SystemSpec,
    technique: str,
    trials: int,
    seed: int,
    quick: bool,
    objective: str = "time",
    silent_errors: SilentErrorSpec | None = None,
    variant: str = "",
) -> PairReport:
    pair = PairReport(
        system=system.name, technique=technique, verdict="ok", variant=variant
    )
    model_options = (
        {"silent_errors": silent_errors} if silent_errors is not None else {}
    )
    model = make_model(technique, system, **model_options)
    diag = (
        ModelDiagnostics()
        if getattr(model, "supports_diagnostics", False)
        else None
    )
    try:
        _probe_boundaries(report, pair, model, system, diag)
        if objective == "availability":
            _probe_availability(report, pair, model, system, diag)

        try:
            opt = model.optimize(
                objective=objective, **_sweep_options(system, quick)
            )
        except RuntimeError as exc:
            # The defined "no feasible plan" contract: a verdict, not a bug.
            pair.verdict = "hopeless"
            pair.note = str(exc)
            return pair

        if opt.certificate is not None:
            for key, count in opt.certificate.events.items():
                diag_events = dict(pair.events)
                diag_events[key] = diag_events.get(key, 0) + count
                pair.events = diag_events
        pair.predicted_efficiency = opt.predicted_efficiency
        _check_predictions(
            report, pair, np.array([opt.predicted_time]),
            0, None, "optimize() result",
        )

        if not _simulation_tractable(
            system, opt.plan, opt.predicted_time, silent_errors
        ):
            pair.verdict = "predict-only"
            pair.note = "simulation skipped (event count beyond validator caps)"
            return pair

        max_time = (
            50.0 * opt.predicted_time
            if math.isfinite(opt.predicted_time)
            else None
        )
        stats = simulate_many(
            system,
            opt.plan,
            trials=trials,
            seed=pair_seed(seed, system.name, technique),
            max_time=max_time,
            silent_errors=silent_errors,
        )
        # With the availability objective, predicted_efficiency is the
        # model's steady-state availability and the simulator's
        # efficiency is the measured useful-work fraction — the same
        # quantity, so the deviation band stays meaningful.
        pair.simulated_efficiency = stats.mean_efficiency
        if stats.mean_efficiency > 0:
            pair.deviation = opt.predicted_efficiency - stats.mean_efficiency
        if silent_errors is not None:
            parity_budget = min(trials, 8) * _worst_case_events(
                system, opt.predicted_time, silent_errors
            )
            if parity_budget <= _MAX_PARITY_EVENTS:
                _check_engine_parity(
                    report, pair, system, opt.plan, silent_errors,
                    trials, pair_seed(seed, system.name, technique), max_time,
                )
    except Exception as exc:  # noqa: BLE001 - crash *is* the invariant
        pair.verdict = "crash"
        pair.note = f"{type(exc).__name__}: {exc}"
        report.violations.append(
            Violation(system.name, technique, "crash", pair.note)
        )
    finally:
        if diag is not None:
            merged = dict(pair.events)
            for key, count in diag.counts().items():
                merged[key] = merged.get(key, 0) + count
            pair.events = merged
    return pair


def _validate_regime(
    report: ValidationReport,
    system: SystemSpec,
    regime_name: str,
    schedule,
    trials: int,
    seed: int,
    quick: bool,
) -> PairReport:
    """Invariant check 5: one (system, drift regime) pair.

    Two invariants, one deviation band:

    * the scalar and batched trial engines must stay **bitwise
      identical** on the piecewise-exponential regime stream (the static
      segment-0 plan, shared seeds);
    * the adaptive replanner's mean makespan must not exceed the static
      plan's over shared drifting streams (``adaptive-loses``);
    * the regime-aware :func:`~repro.core.plan_regimes` prediction vs
      the adaptive walker's measured efficiency is *reported* into the
      deviation band — like the stationary passes, deviation is
      informative, never an invariant.
    """
    from .failures.registry import RegimeSourceFactory
    from .simulator.adaptive import compare_adaptive

    pair = PairReport(
        system=system.name, technique="dauwe", verdict="ok",
        variant=f"regime:{regime_name}",
    )
    try:
        model = make_model("dauwe", system)
        try:
            opt = model.optimize(**_sweep_options(system, quick))
        except RuntimeError as exc:
            pair.verdict = "hopeless"
            pair.note = str(exc)
            return pair

        # Engine parity on the regime stream, budget-gated like the
        # silent pass (the scalar engine walks every event in Python;
        # storms multiply the event count by the drift factor).
        factory = RegimeSourceFactory.for_system(system, schedule)
        max_time = (
            50.0 * opt.predicted_time
            if math.isfinite(opt.predicted_time)
            else None
        )
        horizon = max_time if max_time is not None else system.baseline_time
        parity_budget = min(trials, 8) * horizon * max(factory.rates)
        if parity_budget <= _MAX_PARITY_EVENTS:
            common = dict(
                trials=min(trials, 8),
                seed=pair_seed(seed, system.name, "dauwe"),
                max_time=max_time,
                source_factory=factory,
                return_trials=True,
            )
            _, scalar = simulate_many(system, opt.plan, engine="scalar", **common)
            _, batch = simulate_many(system, opt.plan, engine="batch", **common)
            for i, (a, b) in enumerate(zip(scalar, batch)):
                if a != b:
                    report.violations.append(
                        Violation(
                            pair.system, pair.technique, "engine-divergence",
                            f"scalar and batch engines disagree on trial {i} "
                            f"of regime {regime_name!r}",
                        )
                    )
                    break

        comparison = compare_adaptive(
            system, schedule, trials=trials,
            seed=pair_seed(seed, system.name, f"regime:{regime_name}"),
        )
        T_B = system.baseline_time
        if comparison.predicted_makespan > 0:
            pair.predicted_efficiency = T_B / comparison.predicted_makespan
        if comparison.adaptive_mean > 0:
            pair.simulated_efficiency = T_B / comparison.adaptive_mean
        if (
            pair.predicted_efficiency is not None
            and pair.simulated_efficiency is not None
        ):
            pair.deviation = (
                pair.predicted_efficiency - pair.simulated_efficiency
            )
        pair.note = (
            f"adaptive {comparison.improvement:+.1%} vs static, "
            f"{comparison.mean_replans:.1f} replans"
        )
        if not comparison.adaptive_wins:
            report.violations.append(
                Violation(
                    pair.system, pair.technique, "adaptive-loses",
                    f"adaptive mean makespan {comparison.adaptive_mean:.1f} "
                    f"exceeds static {comparison.static_mean:.1f} on curated "
                    f"drift regime {regime_name!r}",
                )
            )
    except Exception as exc:  # noqa: BLE001 - crash *is* the invariant
        pair.verdict = "crash"
        pair.note = f"{type(exc).__name__}: {exc}"
        report.violations.append(
            Violation(system.name, "dauwe", "crash", pair.note)
        )
    return pair


def run_validation(
    stress: bool = False,
    quick: bool = False,
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    systems: Sequence[SystemSpec] | None = None,
    trials: int | None = None,
    seed: int = 0,
    regimes: bool | None = None,
) -> ValidationReport:
    """Validate every technique against a system catalog.

    ``stress=True`` swaps the paper's Table I catalog for the adversarial
    :data:`~repro.systems.stress.STRESS_SYSTEMS`.  ``quick=True`` coarsens
    the sweeps and shrinks the trial count — the CI smoke configuration.
    ``systems`` overrides the catalog entirely (any validated
    :class:`SystemSpec` list).  ``regimes`` controls the drift-regime
    pass; the default (``None``) runs it exactly when ``stress`` is on.
    """
    if systems is None:
        if stress:
            systems = stress_systems()
        else:
            systems = [TEST_SYSTEMS[name] for name in TEST_SYSTEM_ORDER]
    if trials is None:
        trials = 6 if quick else 24
    report = ValidationReport(catalog="stress" if stress else "standard")
    for system in systems:
        for technique in techniques:
            report.pairs.append(
                _validate_pair(report, system, technique, trials, seed, quick)
            )
    # Availability pass: the multilevel trio has native availability
    # predictions worth cross-checking against measured useful-work
    # fractions; the closed-form baselines degrade to the time optimum
    # (documented), so re-validating them would only repeat the time pass.
    avail_techs = [t for t in techniques if t in ("dauwe", "di", "moody")]
    for system in systems:
        for technique in avail_techs:
            report.pairs.append(
                _validate_pair(
                    report, system, technique, trials, seed, quick,
                    objective="availability", variant="availability",
                )
            )
    # Silent-error pass: the full-fidelity Dauwe recursion against each
    # system-scaled overlay, including the scalar-vs-batch engine parity
    # invariant (any bitwise divergence is a violation).
    if "dauwe" in techniques:
        for system in systems:
            for i, overlay in enumerate(silent_variants(system)):
                report.pairs.append(
                    _validate_pair(
                        report, system, "dauwe", trials, seed, quick,
                        silent_errors=overlay, variant=f"sdc{i}",
                    )
                )
    # Regime pass (--stress only): engine parity on piecewise streams
    # plus the adaptive-beats-static invariant on every curated drift
    # regime of the Table I catalog (the drift curation is calibrated
    # against Table I physics, so the pass uses that catalog regardless
    # of which one the stationary passes ran on).
    if (stress if regimes is None else regimes) and "dauwe" in techniques:
        regime_names = ("M", "B", "D1") if quick else TEST_SYSTEM_ORDER
        regime_trials = 16 if quick else 32
        for name in regime_names:
            system = TEST_SYSTEMS[name]
            for regime_name, schedule in drift_regimes(system):
                report.pairs.append(
                    _validate_regime(
                        report, system, regime_name, schedule,
                        regime_trials, seed, quick,
                    )
                )
    return report


def format_validation(report: ValidationReport) -> str:
    """Human-readable validation summary (one line per pair)."""
    lines = [
        f"numerics validation — {report.catalog} catalog, "
        f"{len(report.pairs)} (system, technique) pairs"
    ]
    for p in report.pairs:
        name = f"{p.system}/{p.technique}"
        if p.variant:
            name += f"@{p.variant}"
        bits = [f"{name}: {p.verdict}"]
        if p.predicted_efficiency is not None:
            bits.append(f"pred_eff={p.predicted_efficiency:.4f}")
        if p.simulated_efficiency is not None:
            bits.append(f"sim_eff={p.simulated_efficiency:.4f}")
        if p.deviation is not None:
            bits.append(f"dev={p.deviation:+.4f}")
        if p.total_events:
            bits.append(f"events={p.total_events}")
        if p.note:
            bits.append(f"({p.note})")
        lines.append("  " + "  ".join(bits))
    band = report.deviation_band()
    if band is not None:
        lines.append(
            f"model-vs-simulator efficiency deviation band: "
            f"[{band[0]:+.4f}, {band[1]:+.4f}]"
        )
    totals = report.event_totals()
    if totals:
        lines.append("numerics events by site:")
        for key, count in totals.items():
            lines.append(f"  {key}: {count}")
    else:
        lines.append("numerics events: none recorded")
    if report.violations:
        lines.append(f"VIOLATIONS ({len(report.violations)}):")
        for v in report.violations:
            lines.append(f"  {v.system}/{v.technique} [{v.check}]: {v.detail}")
    else:
        lines.append("invariants: all checks passed (finite-or-inf, NaN-free, loud)")
    return "\n".join(lines)
