"""Piecewise-stationary system regimes: elastic schedules over a run.

The paper — and every model in this repository so far — assumes a
*stationary* world: one MTBF, one cost vector, one node count, fixed for
the whole execution.  Real machines are not stationary: allocations grow
and shrink at reconfiguration points, burst buffers degrade, and failure
rates drift as hardware ages or jobs migrate (Raghavendra & Vadhiyar,
arXiv:1711.00270; Sodre, arXiv:1802.07455).  A :class:`RegimeSchedule`
captures that as a sequence of piecewise-stationary segments, each
scaling the base :class:`~repro.systems.spec.SystemSpec`:

* ``mtbf_scale`` — multiplies the system MTBF (``< 1``: failures speed
  up, ``> 1``: the machine calms down);
* ``nodes_scale`` — node-count factor at a reconfiguration point.  The
  system-wide failure rate is proportional to the node count, so the
  effective rate scales by ``nodes_scale / mtbf_scale``.  The workload is
  assumed weak-scaled (work per node constant), so the baseline time is
  unchanged — the documented simplification, see DESIGN §13;
* ``checkpoint_scale`` / ``restart_scale`` — per-level checkpoint and
  restart cost factors (storage tiers congesting or recovering).

Segment durations are wall-clock minutes (the MTBF's unit).  Every
segment except the last must have a finite positive ``duration``; the
last segment is open-ended (``duration`` omitted / ``None``) and its
scales persist for the remainder of the run, so a schedule always covers
every time the simulator can reach.

The schedule is frozen and strict-JSON: unknown fields are rejected so a
typo in a hand-written study file fails loudly (the same contract as
:class:`~repro.systems.spec.SystemSpec`).  Scenario specs serialize it
only when present, keeping every no-regime study hash byte-identical.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["RegimeSegment", "RegimeSchedule"]

#: Keys accepted per segment by :meth:`RegimeSegment.from_dict`.
_SEGMENT_FIELDS = (
    "duration",
    "mtbf_scale",
    "checkpoint_scale",
    "restart_scale",
    "nodes_scale",
)

#: Keys accepted by :meth:`RegimeSchedule.from_dict`.
_SCHEDULE_FIELDS = ("segments",)


def _check_scale(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


@dataclass(frozen=True)
class RegimeSegment:
    """One stationary stretch of a :class:`RegimeSchedule`.

    ``duration`` is the segment's wall-clock length in minutes, or
    ``None`` for the open-ended final segment.  All scales default to 1
    (no change from the base system).
    """

    duration: float | None = None
    mtbf_scale: float = 1.0
    checkpoint_scale: float = 1.0
    restart_scale: float = 1.0
    nodes_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.duration is not None:
            duration = float(self.duration)
            if not math.isfinite(duration) or duration <= 0:
                raise ValueError(
                    f"segment duration must be positive and finite, got {duration}"
                )
            object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "mtbf_scale", _check_scale("mtbf_scale", self.mtbf_scale))
        object.__setattr__(
            self, "checkpoint_scale", _check_scale("checkpoint_scale", self.checkpoint_scale)
        )
        object.__setattr__(
            self, "restart_scale", _check_scale("restart_scale", self.restart_scale)
        )
        object.__setattr__(self, "nodes_scale", _check_scale("nodes_scale", self.nodes_scale))

    @property
    def rate_scale(self) -> float:
        """Failure-rate multiplier: node growth speeds failures, MTBF slows them."""
        return self.nodes_scale / self.mtbf_scale

    @property
    def is_neutral(self) -> bool:
        """True when the segment leaves the base system untouched."""
        return (
            self.mtbf_scale == 1.0
            and self.checkpoint_scale == 1.0
            and self.restart_scale == 1.0
            and self.nodes_scale == 1.0
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form; defaults are omitted (lossless round-trip)."""
        out: dict[str, Any] = {}
        if self.duration is not None:
            out["duration"] = self.duration
        for key in ("mtbf_scale", "checkpoint_scale", "restart_scale", "nodes_scale"):
            value = getattr(self, key)
            if value != 1.0:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeSegment":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"regime segment must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(_SEGMENT_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown regime segment field(s) {sorted(unknown)}; "
                f"known fields: {list(_SEGMENT_FIELDS)}"
            )
        return cls(
            duration=(None if data.get("duration") is None else float(data["duration"])),
            mtbf_scale=float(data.get("mtbf_scale", 1.0)),
            checkpoint_scale=float(data.get("checkpoint_scale", 1.0)),
            restart_scale=float(data.get("restart_scale", 1.0)),
            nodes_scale=float(data.get("nodes_scale", 1.0)),
        )


@dataclass(frozen=True)
class RegimeSchedule:
    """A piecewise-stationary schedule of system regimes.

    ``segments[j]`` governs ``boundaries[j] <= t < boundaries[j + 1]``;
    the last segment (open-ended) governs everything past its start.
    """

    segments: tuple[RegimeSegment, ...]
    _boundaries: tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        segments = tuple(self.segments)
        if not segments:
            raise ValueError("a regime schedule needs at least one segment")
        if any(not isinstance(s, RegimeSegment) for s in segments):
            raise ValueError("schedule segments must be RegimeSegment instances")
        for j, seg in enumerate(segments[:-1]):
            if seg.duration is None:
                raise ValueError(
                    f"segment {j} has no duration but is not the last segment; "
                    "only the final segment is open-ended"
                )
        if segments[-1].duration is not None:
            raise ValueError(
                "the final segment must be open-ended (omit its duration); "
                "its scales persist for the remainder of the run"
            )
        object.__setattr__(self, "segments", segments)
        bounds = [0.0]
        for seg in segments[:-1]:
            bounds.append(bounds[-1] + seg.duration)
        object.__setattr__(self, "_boundaries", tuple(bounds))

    # ------------------------------------------------------------------
    @property
    def boundaries(self) -> tuple[float, ...]:
        """Segment start times: ``boundaries[0] == 0.0``."""
        return self._boundaries

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def is_trivial(self) -> bool:
        """True when no segment changes anything (pure bookkeeping schedule)."""
        return all(seg.is_neutral for seg in self.segments)

    def segment_at(self, t: float) -> int:
        """Index of the segment governing wall-clock time ``t`` (>= 0)."""
        j = self.num_segments - 1
        while j > 0 and t < self._boundaries[j]:
            j -= 1
        return j

    def effective_rates(self, base_rate: float) -> tuple[float, ...]:
        """Per-segment system failure rates for a base rate ``1/MTBF``."""
        return tuple(base_rate * seg.rate_scale for seg in self.segments)

    def scaled_system(self, system, j: int):
        """The base ``system`` as segment ``j`` sees it.

        The effective MTBF folds both knobs (``mtbf * mtbf_scale /
        nodes_scale``); checkpoint and restart costs scale per level.
        When restart times were defaulted but the two cost scales differ,
        the restart vector is materialized from the checkpoint times
        first so each scale lands on its own vector.
        """
        seg = self.segments[j]
        if seg.is_neutral:
            return system
        ckpt = tuple(c * seg.checkpoint_scale for c in system.checkpoint_times)
        rest = system.restart_times
        if rest is None and seg.restart_scale != seg.checkpoint_scale:
            rest = system.checkpoint_times
        if rest is not None:
            rest = tuple(r * seg.restart_scale for r in rest)
        return replace(
            system,
            mtbf=system.mtbf * seg.mtbf_scale / seg.nodes_scale,
            checkpoint_times=ckpt,
            restart_times=rest,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"segments": [seg.to_dict() for seg in self.segments]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeSchedule":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"regime schedule must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(_SCHEDULE_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown regime schedule field(s) {sorted(unknown)}; "
                f"known fields: {list(_SCHEDULE_FIELDS)}"
            )
        segments = data.get("segments")
        if not isinstance(segments, (list, tuple)):
            raise ValueError("regime schedule needs a 'segments' array")
        return cls(tuple(RegimeSegment.from_dict(seg) for seg in segments))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RegimeSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def resolve(cls, value: "RegimeSchedule | Mapping | None") -> "RegimeSchedule | None":
        """Accept a schedule, its dict form, or ``None`` (spec-layer helper)."""
        if value is None or isinstance(value, RegimeSchedule):
            return value
        return cls.from_dict(value)

    def summary(self) -> str:
        """One-line human-readable form for reports and logs."""
        parts = []
        for j, seg in enumerate(self.segments):
            span = (
                f"[{self._boundaries[j]:g}, inf)"
                if j == self.num_segments - 1
                else f"[{self._boundaries[j]:g}, {self._boundaries[j] + seg.duration:g})"
            )
            knobs = seg.to_dict()
            knobs.pop("duration", None)
            desc = ", ".join(f"{k}={v:g}" for k, v in knobs.items()) or "base"
            parts.append(f"{span}: {desc}")
        return "; ".join(parts)
