"""The paper's test systems (Table I) and the exascale scenario grids.

Every value in :data:`TEST_SYSTEMS` is transcribed verbatim from Table I of
the paper; times are minutes and per-level failure severities are
probability distributions, exactly as the table normalizes them.

The grids for Figures 4-6 scale test system B (BlueGene/Q Mira, four
checkpoint levels) across exascale-like MTBF values and PFS
checkpoint/restart costs, per Section IV-E:

* MTBF between 3 and 26 minutes ("exascale systems are likely to
  experience failures with an MTBF between 3-26 minutes"; the paper
  evaluates five values in the range — it names 26, 15 and 3 in the text
  and we use ``{26, 20, 15, 6, 3}``);
* level-L checkpoint/restart time in ``{10, 20, 30, 40}`` minutes, lower
  levels unchanged (lower-level checkpoints spread data across the machine
  and are insensitive to application scale).

Figure 5 reuses the Figure 4 grid restricted to costs ``{10, 20}`` with a
30-minute application and Figure 4's 1440-minute baseline replaced.
"""

from __future__ import annotations

from .spec import SystemSpec

__all__ = [
    "TEST_SYSTEMS",
    "TEST_SYSTEM_ORDER",
    "get_system",
    "exascale_mtbf_values",
    "exascale_top_costs",
    "exascale_grid",
    "EXASCALE_BASELINE_LONG",
    "EXASCALE_BASELINE_SHORT",
]

#: Baseline execution time (minutes) of the Figure 4 application.
EXASCALE_BASELINE_LONG = 1440.0
#: Baseline execution time (minutes) of the Figure 5 short application.
EXASCALE_BASELINE_SHORT = 30.0

TEST_SYSTEMS: dict[str, SystemSpec] = {
    "M": SystemSpec(
        name="M",
        mtbf=6944.45,
        level_probabilities=(0.083, 0.75, 0.167),
        checkpoint_times=(0.008, 0.075, 17.53),
        baseline_time=1440.0,
        description="Moody et al. [5], BlueGene/L Coastal (3 levels)",
    ),
    "B": SystemSpec(
        name="B",
        mtbf=333.33,
        level_probabilities=(0.556, 0.278, 0.139, 0.027),
        checkpoint_times=(0.167, 0.5, 0.833, 2.5),
        baseline_time=1440.0,
        description="Balaprakash et al. [19], BlueGene/Q Mira (4 levels)",
    ),
    "D1": SystemSpec(
        name="D1",
        mtbf=51.42,
        level_probabilities=(0.857, 0.143),
        checkpoint_times=(0.333, 0.833),
        baseline_time=1440.0,
        description="Di et al. [17], ANL Fusion case 1",
    ),
    "D2": SystemSpec(
        name="D2",
        mtbf=24.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.333, 0.833),
        baseline_time=1440.0,
        description="Di et al. [17], ANL Fusion case 2",
    ),
    "D3": SystemSpec(
        name="D3",
        mtbf=12.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.167, 0.667),
        baseline_time=1440.0,
        description="Di et al. [17], ANL Fusion case 4",
    ),
    "D4": SystemSpec(
        name="D4",
        mtbf=6.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.167, 0.667),
        baseline_time=1440.0,
        description="Di et al. [17], ANL Fusion case 5",
    ),
    "D5": SystemSpec(
        name="D5",
        mtbf=12.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.333, 1.67),
        baseline_time=1440.0,
        description="Di et al. [17], ANL Fusion case 3",
    ),
    "D6": SystemSpec(
        name="D6",
        mtbf=6.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.167, 1.67),
        baseline_time=720.0,
        description="Di et al. [17], ANL Fusion case 6",
    ),
    "D7": SystemSpec(
        name="D7",
        mtbf=4.0,
        level_probabilities=(0.833, 0.167),
        checkpoint_times=(0.667, 3.33),
        baseline_time=360.0,
        description="Di et al. [17], ANL Fusion case 7",
    ),
    "D8": SystemSpec(
        name="D8",
        mtbf=3.13,
        level_probabilities=(0.870, 0.130),
        checkpoint_times=(0.833, 5.0),
        baseline_time=360.0,
        description="Di et al. [17], ANL Fusion case 8",
    ),
    "D9": SystemSpec(
        name="D9",
        mtbf=3.13,
        level_probabilities=(0.870, 0.130),
        checkpoint_times=(0.833, 5.0),
        baseline_time=180.0,
        description="Di et al. [17], ANL Fusion case 9",
    ),
}

#: Table I row order: monotonically increasing resilience difficulty.
TEST_SYSTEM_ORDER: tuple[str, ...] = (
    "M", "B", "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9",
)


def get_system(name: str) -> SystemSpec:
    """Look up a Table I test system by name (case-insensitive)."""
    key = name.upper()
    if key not in TEST_SYSTEMS:
        known = ", ".join(TEST_SYSTEM_ORDER)
        raise KeyError(f"unknown test system {name!r}; known systems: {known}")
    return TEST_SYSTEMS[key]


def exascale_mtbf_values() -> tuple[float, ...]:
    """The five MTBF values (minutes) swept in Figures 4-6, hardest last."""
    return (26.0, 20.0, 15.0, 6.0, 3.0)


def exascale_top_costs(short_application: bool = False) -> tuple[float, ...]:
    """Level-L checkpoint/restart times (minutes) swept in Figure 4 (or 5)."""
    return (10.0, 20.0) if short_application else (10.0, 20.0, 30.0, 40.0)


def exascale_grid(short_application: bool = False) -> list[SystemSpec]:
    """The Figure 4 (or Figure 5) scenario grid, cost-major then MTBF.

    Each scenario is test system B with its total MTBF and level-L
    checkpoint/restart cost replaced; Figure 5 additionally shortens the
    application to 30 minutes.  Scenario names are ``B[mtbf=...,cL=...]``.
    """
    base = TEST_SYSTEMS["B"].with_baseline_time(
        EXASCALE_BASELINE_SHORT if short_application else EXASCALE_BASELINE_LONG
    )
    grid: list[SystemSpec] = []
    for cost in exascale_top_costs(short_application):
        for mtbf in exascale_mtbf_values():
            spec = base.with_mtbf(mtbf).with_top_level_cost(cost)
            grid.append(
                spec.renamed(
                    f"B[mtbf={mtbf:g},cL={cost:g}]",
                    f"{base.description}; scaled MTBF={mtbf:g}min, "
                    f"level-L C/R={cost:g}min, T_B={base.baseline_time:g}min",
                )
            )
    return grid
