"""Test-system catalog (the paper's Table I) and scenario grids."""

from .catalog import (
    EXASCALE_BASELINE_LONG,
    EXASCALE_BASELINE_SHORT,
    TEST_SYSTEM_ORDER,
    TEST_SYSTEMS,
    exascale_grid,
    exascale_mtbf_values,
    exascale_top_costs,
    get_system,
)
from .regime import RegimeSchedule, RegimeSegment
from .spec import SystemSpec
from .stress import (
    STRESS_SYSTEM_ORDER,
    STRESS_SYSTEMS,
    boundary_taus,
    drift_regimes,
    get_stress_system,
    million_node_variant,
    stress_systems,
)

__all__ = [
    "EXASCALE_BASELINE_LONG",
    "EXASCALE_BASELINE_SHORT",
    "RegimeSchedule",
    "RegimeSegment",
    "STRESS_SYSTEM_ORDER",
    "STRESS_SYSTEMS",
    "SystemSpec",
    "TEST_SYSTEM_ORDER",
    "TEST_SYSTEMS",
    "boundary_taus",
    "drift_regimes",
    "exascale_grid",
    "exascale_mtbf_values",
    "exascale_top_costs",
    "get_stress_system",
    "get_system",
    "million_node_variant",
    "stress_systems",
]
