"""Test-system catalog (the paper's Table I) and scenario grids."""

from .catalog import (
    EXASCALE_BASELINE_LONG,
    EXASCALE_BASELINE_SHORT,
    TEST_SYSTEM_ORDER,
    TEST_SYSTEMS,
    exascale_grid,
    exascale_mtbf_values,
    exascale_top_costs,
    get_system,
)
from .spec import SystemSpec

__all__ = [
    "EXASCALE_BASELINE_LONG",
    "EXASCALE_BASELINE_SHORT",
    "SystemSpec",
    "TEST_SYSTEM_ORDER",
    "TEST_SYSTEMS",
    "exascale_grid",
    "exascale_mtbf_values",
    "exascale_top_costs",
    "get_system",
]
