"""Adversarial stress catalog for the numerics guard.

Where :mod:`repro.systems.catalog` transcribes the paper's Table I, this
module deliberately leaves the models' derivation regime: near-zero and
enormous MTBFs, free and mammoth checkpoints, severity distributions
pinched to a single class, applications shorter than a checkpoint and
longer than the failure horizon, and 10^6-node scaled variants of every
Table I system.  Every spec here passes :class:`SystemSpec` validation —
the point is not malformed *inputs* but extreme *regimes*: feeding these
to the five models must yield finite-or-``+inf`` predictions (never NaN,
never a crash) with every clamp/overflow recorded as a
:class:`~repro.core.numerics.NumericsEvent`.

``repro.validate --stress`` (see :mod:`repro.validate`) sweeps every model
over this catalog plus per-system domain-boundary ``tau0`` values from
:func:`boundary_taus`, and additionally crosses each system with the
availability objective and the :func:`silent_variants` silent-error
overlays (strike rates, verification costs and detection latencies
scaled to the system's own magnitudes).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.silent import SilentErrorSpec
from .catalog import TEST_SYSTEM_ORDER, TEST_SYSTEMS
from .regime import RegimeSchedule, RegimeSegment
from .spec import SystemSpec

__all__ = [
    "STRESS_SYSTEMS",
    "STRESS_SYSTEM_ORDER",
    "boundary_taus",
    "drift_regimes",
    "get_stress_system",
    "million_node_variant",
    "silent_variants",
    "stress_systems",
]

#: Scale factor applied to MTBF for the "10^6-node" variants: failure
#: rate grows linearly with component count, and Table I's machines sit
#: around the 10^4-node mark (Mira: 49k nodes; Coastal: ~1k), so two
#: orders of magnitude of extra failure rate is the forecast regime the
#: paper's Section IV-E exascale discussion targets from above.
MILLION_NODE_MTBF_FACTOR = 100.0


def million_node_variant(spec: SystemSpec) -> SystemSpec:
    """``spec`` scaled to ~10^6 nodes: MTBF divided by 100.

    Severity shares and per-level costs are kept — the paper's own
    Figure 4/5 scaling argument (lower levels spread data across the
    machine and are insensitive to scale) applied pessimistically to
    every level.
    """
    return spec.with_mtbf(spec.mtbf / MILLION_NODE_MTBF_FACTOR).renamed(
        f"{spec.name}@1e6n",
        description=f"{spec.name} scaled to ~1e6 nodes (MTBF / "
        f"{MILLION_NODE_MTBF_FACTOR:g}); {spec.description}".strip("; "),
    )


def _handcrafted() -> dict[str, SystemSpec]:
    """The pathological corner cases, each probing one failure mode."""
    specs = [
        SystemSpec(
            name="storm",
            mtbf=1e-3,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.05, 0.5),
            baseline_time=60.0,
            description="near-zero MTBF: failures every 60ms, every plan hopeless "
            "(expm1 overflow / negative-binomial clamp territory)",
        ),
        SystemSpec(
            name="calm",
            mtbf=1e12,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.05, 0.5),
            baseline_time=1440.0,
            description="enormous MTBF: failure terms underflow toward zero, "
            "optimum degenerates to checkpoint-free",
        ),
        SystemSpec(
            name="free-ckpt",
            mtbf=100.0,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.0, 0.0),
            baseline_time=1440.0,
            description="zero-cost checkpoints at every level: alpha/T_df terms "
            "vanish, density terms divide by vanishing work",
        ),
        SystemSpec(
            name="free-low",
            mtbf=100.0,
            level_probabilities=(0.9, 0.1),
            checkpoint_times=(0.0, 30.0),
            baseline_time=1440.0,
            description="free level-1 next to an expensive PFS: maximal cost "
            "asymmetry between adjacent levels",
        ),
        SystemSpec(
            name="mammoth-ckpt",
            mtbf=100.0,
            level_probabilities=(0.5, 0.5),
            checkpoint_times=(1.0, 1e6),
            baseline_time=1440.0,
            description="checkpoint far larger than both MTBF and application: "
            "every PFS write is doomed (lam*delta >> clamp threshold)",
        ),
        SystemSpec(
            name="skew-low",
            mtbf=50.0,
            level_probabilities=(1.0 - 1e-6, 1e-6),
            checkpoint_times=(0.1, 10.0),
            baseline_time=1440.0,
            description="pathological severity ratio: top level protects a "
            "1e-6 sliver of the failure mass",
        ),
        SystemSpec(
            name="skew-high",
            mtbf=50.0,
            level_probabilities=(1e-6, 1.0 - 1e-6),
            checkpoint_times=(0.1, 10.0),
            baseline_time=1440.0,
            description="inverted severity ratio: essentially every failure "
            "needs the PFS checkpoint",
        ),
        SystemSpec(
            name="blink-app",
            mtbf=100.0,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.05, 5.0),
            baseline_time=1e-3,
            description="application far shorter than any checkpoint: tau0 "
            "domain (0, T_B) collapses to sub-millisecond intervals",
        ),
        SystemSpec(
            name="epoch-app",
            mtbf=1e7,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.05, 5.0),
            baseline_time=1e9,
            description="application of ~1900 years on a reliable machine: "
            "huge-count patterns, products prone to overflow",
        ),
        SystemSpec(
            name="deep5",
            mtbf=30.0,
            level_probabilities=(0.4, 0.3, 0.15, 0.1, 0.05),
            checkpoint_times=(0.01, 0.05, 0.25, 1.25, 6.25),
            baseline_time=1440.0,
            description="five-level hierarchy under heavy failure load: "
            "deepest stage recursion the catalog exercises",
        ),
    ]
    return {s.name: s for s in specs}


def _build() -> dict[str, SystemSpec]:
    systems = _handcrafted()
    for name in TEST_SYSTEM_ORDER:
        variant = million_node_variant(TEST_SYSTEMS[name])
        systems[variant.name] = variant
    return systems


#: The full adversarial catalog: handcrafted corner cases plus the
#: 10^6-node variants of every Table I system (M/B/D1-D9).
STRESS_SYSTEMS: dict[str, SystemSpec] = _build()

#: Deterministic iteration order (handcrafted first, then scaled Table I).
STRESS_SYSTEM_ORDER: tuple[str, ...] = tuple(STRESS_SYSTEMS)


def get_stress_system(name: str) -> SystemSpec:
    """Look up a stress system by name (case-sensitive), with a clear error."""
    try:
        return STRESS_SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown stress system {name!r}; available: {list(STRESS_SYSTEM_ORDER)}"
        ) from None


def stress_systems() -> list[SystemSpec]:
    """The catalog in deterministic order."""
    return [STRESS_SYSTEMS[name] for name in STRESS_SYSTEM_ORDER]


def silent_variants(system: SystemSpec) -> list[SilentErrorSpec]:
    """Silent-error corner regimes scaled to ``system``'s own magnitudes.

    Three overlays per system, each probing one extreme of the SDC
    model/simulator paths:

    1. bare strikes — instant detection, free verification (the pure
       corruption-rate term);
    2. adversarial — verification as costly as the PFS checkpoint and a
       detection latency of half the MTBF, so most checkpoint spacings
       sit *inside* the detection window (deep-rollback pricing);
    3. undetectable — latency beyond ten applications' worth of work, so
       no level's spacing beats it and the whole rate must fold into the
       unprotected-renewal residual.
    """
    mtbf = system.mtbf
    c_top = system.checkpoint_times[-1]
    return [
        SilentErrorSpec(mtbf=5.0 * mtbf),
        SilentErrorSpec(
            mtbf=5.0 * mtbf,
            verify_cost=c_top,
            detection_latency=0.5 * mtbf,
        ),
        SilentErrorSpec(
            mtbf=1e6 * mtbf,
            detection_latency=10.0 * system.baseline_time,
        ),
    ]


def drift_regimes(system: SystemSpec) -> list[tuple[str, RegimeSchedule]]:
    """Handcrafted drift regimes scaled to ``system``'s own magnitudes.

    Three named schedules per system, each a scenario where the spec the
    static plan was optimized against goes stale mid-run — the regimes
    ``validate --stress`` asserts the adaptive replanner beats the static
    plan on (mean makespan, adaptive <= static):

    1. ``decay`` — the machine degrades for good: the failure rate jumps
       a quarter of the way through the baseline work;
    2. ``storm`` — a transient burst: double the decay drift for a
       window in the middle of the run, then back to spec (exercises the
       detector's two-sided response — densify, then relax);
    3. ``scale-out`` — a reconfiguration point: node count (and so
       failure rate) up by the same drift factor, with checkpoint and
       restart costs up 1.5x, permanently.

    The catalog is *curated*: a regime is only emitted when adapting to
    it is physically meaningful for the system at hand.  The drift
    magnitude is bounded on both sides — strong enough that the drifted
    stretch produces an *observable* failure stream (a nominal 10x,
    harsher for near-idle machines: Moody's system fails ~0.2 times per
    baseline, so a 10x drift there would fire no failures and be
    neither detectable nor worth adapting to), yet mild enough that the
    drifted regime stays *survivable* (post-drift MTBF at least ~15
    level-1 checkpoint costs; a regime where every plan stalls turns
    the adaptive-vs-static invariant into a coin flip between
    horizon-capped runs).  Systems already so failure-dense that even a
    2x drift crosses the survivability cliff (Di's 3-4-minute-MTBF
    configurations) get *no* regimes.  The transient storm needs more:
    it must be several times the base rate (else the static plan's
    storm losses — the whole pie — are too small to cover detection and
    relaxation delays) and short-gapped enough to detect *within* the
    window, so it is emitted only when a harsher-than-decay burst is
    survivable.  Onsets are fractions of the baseline time so every
    system drifts while real work remains; the pre-drift segment
    matches the spec, so a false-positive replan before the onset costs
    the adaptive walker.
    """
    T = system.baseline_time
    c1 = system.checkpoint_times[0]
    drift = min(0.1, T / (16.0 * system.mtbf))  # observable
    drift = max(drift, 15.0 * c1 / system.mtbf)  # survivable
    drift = min(drift, 0.5)  # still at least a 2x drift
    if system.mtbf * drift < 4.0 * c1:
        # Past the survivability cliff: no meaningful drift exists.
        return []
    out = [
        (
            "decay",
            RegimeSchedule((
                RegimeSegment(duration=0.25 * T),
                RegimeSegment(mtbf_scale=drift),
            )),
        ),
    ]
    storm = max(drift * drift, 15.0 * c1 / system.mtbf)
    # A storm must be at least ~4x the base rate (survivably) to leave a
    # pie worth the detection and relaxation delays, and the top-level
    # checkpoint must still fit between storm failures — a machine whose
    # top level is unwritable mid-storm dooms static and adaptive alike
    # (severity-top failures roll both back to pre-storm state), leaving
    # nothing for replanning to win.
    if storm <= 0.25 and system.mtbf * storm >= system.checkpoint_times[-1]:
        out.append(
            (
                "storm",
                RegimeSchedule((
                    RegimeSegment(duration=0.3 * T),
                    RegimeSegment(duration=0.3 * T, mtbf_scale=storm),
                    RegimeSegment(),
                )),
            )
        )
    # The reconfiguration needs to multiply the rate several-fold to be
    # detectable above the cost bump it rides along with.
    if drift <= 0.25:
        out.append(
            (
                "scale-out",
                RegimeSchedule((
                    RegimeSegment(duration=0.25 * T),
                    RegimeSegment(
                        nodes_scale=0.8 / drift,
                        checkpoint_scale=1.5,
                        restart_scale=1.5,
                    ),
                )),
            )
        )
    return out


def boundary_taus(system: SystemSpec) -> list[float]:
    """Domain-boundary ``tau0`` probes for ``system``.

    The model domain is ``0 < tau0 <= T_B``; this returns values hugging
    both ends plus interior magnitudes: the smallest positive double,
    denormal-adjacent and absolute tiny values, fractions of ``T_B``, and
    ``T_B`` itself.  All values are valid :class:`CheckpointPlan`
    intervals (positive, finite); duplicates after clamping to the domain
    are removed while preserving order.
    """
    T_B = system.baseline_time
    candidates = [
        float(np.nextafter(0.0, 1.0)),  # smallest positive subnormal
        1e-300,                         # extreme but normal magnitude
        1e-12,
        T_B * 1e-6,
        T_B * 0.5,
        T_B,
    ]
    out: list[float] = []
    for t in candidates:
        if 0.0 < t <= T_B and math.isfinite(t) and t not in out:
            out.append(t)
    return out
