"""System specifications: the inputs every model and the simulator share.

A :class:`SystemSpec` captures exactly the columns of Table I of the paper:
the number of checkpoint/restart levels, the system MTBF, the probability
that a failure belongs to each severity class, the per-level checkpoint
(= restart) durations, and the application's baseline execution time.

All times are in **minutes**, matching the paper's normalized units.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

__all__ = ["SystemSpec"]

#: Keys accepted by :meth:`SystemSpec.from_dict`, in canonical dump order.
_SPEC_FIELDS = (
    "name",
    "mtbf",
    "level_probabilities",
    "checkpoint_times",
    "baseline_time",
    "restart_times",
    "description",
)


def _as_tuple(values: Sequence[float]) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class SystemSpec:
    """An HPC system + application scenario, in the paper's Table I format.

    Parameters
    ----------
    name:
        Short identifier (e.g. ``"M"``, ``"B"``, ``"D4"``).
    mtbf:
        System mean time between failures, minutes.  The total failure
        rate is ``lambda = 1 / mtbf`` and is the sum of the per-level
        rates (Section III-B).
    level_probabilities:
        ``S_i`` for ``i = 1..L``: the probability that a failure has
        severity ``i`` (requires a level >= i checkpoint to recover).
        Must be positive and sum to 1 (small rounding slack is allowed
        and renormalized, because Table I's printed values round to three
        digits).
    checkpoint_times:
        ``delta_i`` for ``i = 1..L``, minutes.  A level-i checkpoint's
        duration is *inclusive* of the nested lower-level checkpoints SCR
        performs (Section II-B), so ``delta`` must be non-decreasing.
    baseline_time:
        ``T_B``: failure-and-resilience-free execution time, minutes.
    restart_times:
        ``R_i`` per level; defaults to ``checkpoint_times`` as assumed by
        the paper ("checkpoint times are assumed to be equal to restart
        times for each system").
    description:
        Free-form provenance note (source paper / machine name).
    """

    name: str
    mtbf: float
    level_probabilities: tuple[float, ...]
    checkpoint_times: tuple[float, ...]
    baseline_time: float
    restart_times: tuple[float, ...] | None = None
    description: str = ""
    _norm_probs: tuple[float, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "level_probabilities", _as_tuple(self.level_probabilities))
        object.__setattr__(self, "checkpoint_times", _as_tuple(self.checkpoint_times))
        if self.restart_times is not None:
            object.__setattr__(self, "restart_times", _as_tuple(self.restart_times))
        # Finiteness first: NaN slips past every ordered comparison below
        # (``nan <= 0`` is False) and inf would silently propagate into the
        # models, so both are rejected outright (numerics-guard contract).
        if not math.isfinite(self.mtbf):
            raise ValueError(f"mtbf must be finite, got {self.mtbf}")
        if not math.isfinite(self.baseline_time):
            raise ValueError(f"baseline_time must be finite, got {self.baseline_time}")
        if any(not math.isfinite(p) for p in self.level_probabilities):
            raise ValueError(
                f"severity probabilities must be finite, got {self.level_probabilities}"
            )
        if any(not math.isfinite(d) for d in self.checkpoint_times):
            raise ValueError(
                f"checkpoint times must be finite, got {self.checkpoint_times}"
            )
        if self.restart_times is not None and any(
            not math.isfinite(r) for r in self.restart_times
        ):
            raise ValueError(f"restart times must be finite, got {self.restart_times}")
        if any(r < 0 for r in self.restart_times or ()):
            raise ValueError("restart times must be non-negative")
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.baseline_time <= 0:
            raise ValueError(f"baseline_time must be positive, got {self.baseline_time}")
        L = len(self.level_probabilities)
        if L == 0:
            raise ValueError("at least one checkpoint level is required")
        if len(self.checkpoint_times) != L:
            raise ValueError(
                f"checkpoint_times has {len(self.checkpoint_times)} entries "
                f"but there are {L} severity classes"
            )
        if self.restart_times is not None and len(self.restart_times) != L:
            raise ValueError(
                f"restart_times has {len(self.restart_times)} entries "
                f"but there are {L} severity classes"
            )
        if any(p <= 0 for p in self.level_probabilities):
            raise ValueError("every severity class probability must be positive")
        total = sum(self.level_probabilities)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=5e-3):
            raise ValueError(
                f"severity probabilities must sum to 1 (got {total:.6f}); "
                "Table I rounding slack is limited to 5e-3"
            )
        if any(d < 0 for d in self.checkpoint_times):
            raise ValueError("checkpoint times must be non-negative")
        if any(
            b < a - 1e-12
            for a, b in zip(self.checkpoint_times, self.checkpoint_times[1:])
        ):
            raise ValueError(
                "checkpoint times must be non-decreasing across levels "
                "(a level-i checkpoint includes all lower-level checkpoints)"
            )
        object.__setattr__(
            self, "_norm_probs", tuple(p / total for p in self.level_probabilities)
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """``L``: number of checkpoint/restart levels (= severity classes)."""
        return len(self.level_probabilities)

    @property
    def failure_rate(self) -> float:
        """Total system failure rate ``lambda = 1 / MTBF`` (per minute)."""
        return 1.0 / self.mtbf

    @property
    def severity_probabilities(self) -> tuple[float, ...]:
        """``S_i``, exactly normalized to sum to 1."""
        return self._norm_probs

    @property
    def level_rates(self) -> tuple[float, ...]:
        """Per-severity failure rates ``lambda_i = S_i * lambda`` (Sec. III-B)."""
        lam = self.failure_rate
        return tuple(s * lam for s in self._norm_probs)

    def restart_time(self, level: int) -> float:
        """``R_i`` for 1-based ``level``; equals ``delta_i`` unless overridden."""
        times = self.restart_times or self.checkpoint_times
        return times[level - 1]

    def checkpoint_time(self, level: int) -> float:
        """``delta_i`` for 1-based ``level``."""
        return self.checkpoint_times[level - 1]

    def cumulative_rate(self, level: int) -> float:
        """``lambda_c = sum_{j<=level} lambda_j`` (the rate used in Eqns. 8/12)."""
        return sum(self.level_rates[:level])

    def mtbf_of_level(self, level: int) -> float:
        """Mean time between failures of severity exactly ``level``."""
        return 1.0 / self.level_rates[level - 1]

    # ------------------------------------------------------------------
    # scenario derivation (used by the Figure 4/5 grids)
    # ------------------------------------------------------------------
    def with_mtbf(self, mtbf: float) -> "SystemSpec":
        """Same system with a rescaled total failure rate."""
        return replace(self, mtbf=float(mtbf))

    def with_top_level_cost(self, cost: float) -> "SystemSpec":
        """Same system with the level-L checkpoint *and* restart time replaced.

        Lower-level costs are untouched (lower levels spread data across
        the machine and are insensitive to application scale, Sec. IV-E).
        """
        ckpt = self.checkpoint_times[:-1] + (float(cost),)
        rest = None
        if self.restart_times is not None:
            rest = self.restart_times[:-1] + (float(cost),)
        if ckpt[-1] < (ckpt[-2] if len(ckpt) > 1 else 0.0):
            raise ValueError(
                f"top-level cost {cost} would be below the level-{self.num_levels - 1} cost"
            )
        return replace(self, checkpoint_times=ckpt, restart_times=rest)

    def with_baseline_time(self, baseline_time: float) -> "SystemSpec":
        """Same system running a different-length application."""
        return replace(self, baseline_time=float(baseline_time))

    def renamed(self, name: str, description: str | None = None) -> "SystemSpec":
        return replace(
            self,
            name=name,
            description=self.description if description is None else description,
        )

    # ------------------------------------------------------------------
    # lossless serialization (the currency of declarative studies)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict carrying every constructor field losslessly.

        ``restart_times`` is emitted only when explicitly set, preserving
        the "defaults to checkpoint times" semantics across a round-trip.
        """
        data: dict[str, Any] = {
            "name": self.name,
            "mtbf": self.mtbf,
            "level_probabilities": list(self.level_probabilities),
            "checkpoint_times": list(self.checkpoint_times),
            "baseline_time": self.baseline_time,
        }
        if self.restart_times is not None:
            data["restart_times"] = list(self.restart_times)
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        """Build a validated spec from :meth:`to_dict` output (or user JSON).

        Unknown keys are rejected so a typo in a hand-written study file
        (``"mtbf_minutes"``, ``"ckpt_times"``) fails loudly instead of
        silently falling back to a default.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"system spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown system spec field(s) {sorted(unknown)}; "
                f"known fields: {list(_SPEC_FIELDS)}"
            )
        missing = {"name", "mtbf", "level_probabilities", "checkpoint_times",
                   "baseline_time"} - set(data)
        if missing:
            raise ValueError(f"system spec is missing required field(s) {sorted(missing)}")
        return cls(
            name=str(data["name"]),
            mtbf=float(data["mtbf"]),
            level_probabilities=tuple(data["level_probabilities"]),
            checkpoint_times=tuple(data["checkpoint_times"]),
            baseline_time=float(data["baseline_time"]),
            restart_times=(
                None if data.get("restart_times") is None
                else tuple(data["restart_times"])
            ),
            description=str(data.get("description", "")),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One-line human-readable summary, Table I style."""
        probs = ", ".join(f"{p:.3f}" for p in self.level_probabilities)
        costs = ", ".join(f"{c:g}" for c in self.checkpoint_times)
        return (
            f"{self.name}: L={self.num_levels} MTBF={self.mtbf:g}min "
            f"S=({probs}) delta=({costs})min T_B={self.baseline_time:g}min"
        )
