"""Fitting failure models to traces: the trace -> SystemSpec loop.

Given a failure log (real or synthesized), estimate the exponential
per-severity rates the paper's models consume, optionally test the
exponential assumption, and assemble a ready-to-optimize
:class:`~repro.systems.spec.SystemSpec`.

Estimators
----------
* Exponential rate MLE on a censored observation window is simply
  ``count / horizon`` (failures per minute) — per severity class and
  overall.
* Weibull shape/scale MLE solves the standard profile-likelihood
  equation for the shape parameter (via ``scipy.optimize.brentq``) with
  the scale given in closed form; used to *detect* burstiness
  (``shape < 1``) that would violate the exponential assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize, stats

from ..systems.spec import SystemSpec
from .traces import FailureTrace

__all__ = [
    "fit_exponential_rates",
    "fit_weibull",
    "exponential_ks_test",
    "spec_from_trace",
    "WeibullFit",
]


def fit_exponential_rates(trace: FailureTrace) -> tuple[float, ...]:
    """Per-severity rate MLEs ``count_i / horizon`` (per minute)."""
    if len(trace) == 0:
        raise ValueError("cannot fit rates to an empty trace")
    return tuple(c / trace.horizon for c in trace.severity_counts())


@dataclass(frozen=True)
class WeibullFit:
    """MLE result for inter-arrival gaps."""

    shape: float
    scale: float

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def is_bursty(self) -> bool:
        """Decreasing hazard (shape < 1): failures cluster."""
        return self.shape < 1.0


def fit_weibull(gaps: Sequence[float]) -> WeibullFit:
    """Weibull MLE for positive inter-arrival samples.

    Solves the profile likelihood for the shape ``k``:

        sum(x^k ln x)/sum(x^k) - 1/k = mean(ln x)

    then ``scale = (mean(x^k))^(1/k)``.
    """
    x = np.asarray(list(gaps), dtype=float)
    if x.size < 2:
        raise ValueError(f"need at least 2 samples, got {x.size}")
    if (x <= 0).any():
        raise ValueError("inter-arrival samples must be positive")
    logx = np.log(x)
    mean_log = logx.mean()

    def profile(k: float) -> float:
        xk = x**k
        return float((xk * logx).sum() / xk.sum() - 1.0 / k - mean_log)

    lo, hi = 1e-3, 1.0
    while profile(hi) < 0 and hi < 1e3:
        hi *= 2.0
    k = optimize.brentq(profile, lo, hi)
    scale = float((x**k).mean() ** (1.0 / k))
    return WeibullFit(shape=k, scale=scale)


def exponential_ks_test(gaps: Sequence[float]) -> float:
    """Kolmogorov-Smirnov p-value for exponential inter-arrivals.

    Small p (< 0.05, say) rejects the exponential assumption the paper's
    models share; the Weibull simulator extension is then the honest
    choice for the simulation side.
    """
    x = np.asarray(list(gaps), dtype=float)
    if x.size < 2:
        raise ValueError(f"need at least 2 samples, got {x.size}")
    return float(stats.kstest(x, "expon", args=(0, x.mean())).pvalue)


def spec_from_trace(
    name: str,
    trace: FailureTrace,
    checkpoint_times: Sequence[float],
    baseline_time: float,
    description: str = "",
) -> SystemSpec:
    """Build a Table-I-style system from a failure log plus level costs."""
    rates = fit_exponential_rates(trace)
    if len(checkpoint_times) != len(rates):
        raise ValueError(
            f"{len(rates)} severity classes in the trace but "
            f"{len(checkpoint_times)} checkpoint times"
        )
    if any(r <= 0 for r in rates):
        raise ValueError(
            "every severity class needs at least one observed failure; "
            f"counts were {trace.severity_counts()}"
        )
    total = sum(rates)
    return SystemSpec(
        name=name,
        mtbf=1.0 / total,
        level_probabilities=tuple(r / total for r in rates),
        checkpoint_times=tuple(float(c) for c in checkpoint_times),
        baseline_time=float(baseline_time),
        description=description or f"fitted from a {trace.horizon:g}-minute trace",
    )
