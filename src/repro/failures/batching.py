"""Batchable failure-stream descriptors for the lockstep trial engine.

The struct-of-arrays engine (:mod:`repro.simulator.batch`) advances every
trial at once, so it cannot call ``source.next_after`` one failure at a
time.  What it *can* do — because every supported failure process is a
renewal (or replay) process whose scalar source draws in fixed-size
batches — is precompute whole batches of **absolute** failure times per
trial with exactly the scalar source's generator and draw order.  A
*stream spec* is the picklable, declarative description of one such
process; ``spec.spawn(seed_seq)`` builds the per-trial stream whose
``refill(carry)`` returns the next ``(times, severities)`` batch of
:data:`RNG_BATCH` entries.

Bitwise contract (mirrors :mod:`repro.failures.sources` exactly):

* :class:`ExponentialStreamSpec` /: one ``Generator.exponential(scale,
  4096)`` gap batch followed by one ``Generator.random(4096)`` severity
  batch — the order :class:`~repro.failures.sources.
  ExponentialFailureSource` uses, both buffers emptying on the same
  draw;
* :class:`WeibullStreamSpec`: ``scale * Generator.weibull(shape, 4096)``
  (the scalar source multiplies the whole array at refill time, so the
  product is computed on identical operands), then the severity batch;
* :class:`TraceStreamSpec`: no RNG at all — the trace's absolute times
  are replayed per trial, padded with an ``inf``/severity-1 tail once
  exhausted (the scalar source's "never fails again" contract).

The scalar sources chain ``fail_t = fail_t + gap`` one IEEE add at a
time; ``np.add.accumulate`` performs those same sequential adds, with the
previous batch's last absolute time folded into the first gap beforehand
(IEEE addition is commutative, so ``carry + gap == gap + carry``).
Severities come from the same threshold-count formulation the batch
engine has always used, value-equal to ``severity_sampler``'s clamped
inverse-CDF lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "RNG_BATCH",
    "ExponentialStreamSpec",
    "PiecewiseStreamSpec",
    "TraceStreamSpec",
    "WeibullStreamSpec",
]

#: Per-trial draw batch size; must equal the scalar sources' default so
#: generator states advance identically between engines.
RNG_BATCH = 4096


def _severity_cdf(probabilities) -> np.ndarray:
    """The severity CDF, computed with ``severity_sampler``'s exact ops."""
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0 or (probs <= 0).any():
        raise ValueError(f"invalid severity probabilities {probabilities}")
    return np.cumsum(probs / probs.sum())


def _severity_batch(rng: np.random.Generator, cdf: np.ndarray) -> np.ndarray:
    """One 4096-draw severity batch.

    Value-equal to ``severity_sampler``'s clamped inverse-CDF lookup
    (``min(searchsorted(cdf, u, "right") + 1, num_sev)``): counting
    thresholds below ``u`` over ``cdf[:-1]`` yields the same class, and a
    handful of vector compares beats ``searchsorted`` here.
    """
    u = rng.random(RNG_BATCH)
    sev = np.ones(RNG_BATCH, dtype=np.int64)
    for c in cdf[:-1]:
        sev += u >= c
    return sev


class _RenewalTrialStream:
    """Per-trial renewal stream: i.i.d. gaps + i.i.d. severities."""

    __slots__ = ("_rng", "_draw_gaps", "_cdf")

    def __init__(self, rng, draw_gaps, cdf):
        self._rng = rng
        self._draw_gaps = draw_gaps
        self._cdf = cdf

    def refill(self, carry: float) -> tuple[np.ndarray, np.ndarray]:
        gaps = self._draw_gaps(self._rng)
        gaps[0] = carry + gaps[0]
        np.add.accumulate(gaps, out=gaps)
        return gaps, _severity_batch(self._rng, self._cdf)


@dataclass(frozen=True)
class ExponentialStreamSpec:
    """The paper's Poisson process — the batch engine's historical default."""

    rate: float
    severity_probabilities: tuple

    def spawn(self, seed_seq) -> _RenewalTrialStream:
        rate = float(self.rate)
        scale = 1.0 / rate
        cdf = _severity_cdf(self.severity_probabilities)
        return _RenewalTrialStream(
            np.random.default_rng(seed_seq),
            lambda rng: rng.exponential(scale, RNG_BATCH),
            cdf,
        )


@dataclass(frozen=True)
class WeibullStreamSpec:
    """Weibull renewal inter-arrivals (mirrors ``WeibullFailureSource``)."""

    shape: float
    scale: float
    severity_probabilities: tuple

    def spawn(self, seed_seq) -> _RenewalTrialStream:
        shape = float(self.shape)
        scale = float(self.scale)
        cdf = _severity_cdf(self.severity_probabilities)
        return _RenewalTrialStream(
            np.random.default_rng(seed_seq),
            lambda rng: scale * rng.weibull(shape, RNG_BATCH),
            cdf,
        )


class _TraceTrialStream:
    """Per-trial replay cursor over a shared padded trace."""

    __slots__ = ("_times", "_sevs", "_chunk")

    def __init__(self, times: np.ndarray, sevs: np.ndarray):
        self._times = times
        self._sevs = sevs
        self._chunk = 0

    def refill(self, carry: float) -> tuple[np.ndarray, np.ndarray]:
        # Times are already absolute; the carry (last time of the
        # previous batch) is irrelevant to a replayed trace.
        lo = self._chunk * RNG_BATCH
        self._chunk += 1
        if lo >= self._times.size:
            return _INF_TAIL, _ONE_TAIL
        return self._times[lo : lo + RNG_BATCH], self._sevs[lo : lo + RNG_BATCH]


#: Shared failure-free tail chunks for exhausted traces (read-only).
_INF_TAIL = np.full(RNG_BATCH, np.inf)
_INF_TAIL.setflags(write=False)
_ONE_TAIL = np.ones(RNG_BATCH, dtype=np.int64)
_ONE_TAIL.setflags(write=False)


@dataclass(frozen=True)
class TraceStreamSpec:
    """Deterministic trace replay; every trial sees the same failures.

    The trace is validated (positive, strictly increasing times; 1-based
    severities) by the scalar :class:`~repro.failures.sources.
    TraceFailureSource` constructor at registry-resolve time; here it is
    merely padded to a whole number of :data:`RNG_BATCH` chunks with the
    infinite failure-free tail.
    """

    times: tuple
    severities: tuple

    def spawn(self, seed_seq) -> _TraceTrialStream:
        # seed_seq is accepted for interface uniformity but unused: the
        # scalar TraceFailureSource never touches the trial generator
        # either, so generator states stay identical between engines.
        times, sevs = _padded_trace(self.times, self.severities)
        return _TraceTrialStream(times, sevs)


class _PiecewiseTrialStream:
    """Per-trial piecewise-exponential stream via time rescaling.

    An inhomogeneous Poisson process whose rate is piecewise constant is
    a homogeneous unit-rate process in the integrated-hazard ("unit")
    domain.  The stream draws unit-rate exponential gaps, accumulates
    them with the scalar sources' exact sequential-add chain, and maps
    each cumulated hazard ``u`` back to wall-clock time through the
    inverse integrated hazard: with segment start times ``t0[j]``, rates
    ``lam[j]`` and hazard-at-boundary ``u0[j]``,

        ``time = t0[j] + (u - u0[j]) / lam[j]``  where ``u0[j] <= u``.

    The engine's ``carry`` argument (the previous batch's last absolute
    *time*) is ignored — like the trace stream, this process keeps its
    own clock, here the cumulated hazard ``_u_last``.  The scalar
    :class:`~repro.failures.sources.PiecewiseExponentialFailureSource`
    wraps this same class, so both engines consume identical draws and
    compute identical IEEE float times by construction.
    """

    __slots__ = ("_rng", "_cdf", "_t0", "_u0", "_lam", "_u_last")

    def __init__(self, rng, boundaries, rates, cdf):
        self._rng = rng
        self._cdf = cdf
        self._t0 = np.asarray(boundaries, dtype=float)
        self._lam = np.asarray(rates, dtype=float)
        # Integrated hazard at each segment start; the final segment is
        # open-ended so its hazard grows without bound.
        u0 = np.zeros(self._t0.size)
        if self._t0.size > 1:
            u0[1:] = np.cumsum(self._lam[:-1] * np.diff(self._t0))
        self._u0 = u0
        self._u_last = 0.0

    def refill(self, carry: float) -> tuple[np.ndarray, np.ndarray]:
        gaps = self._rng.exponential(1.0, RNG_BATCH)
        gaps[0] = self._u_last + gaps[0]
        np.add.accumulate(gaps, out=gaps)
        self._u_last = float(gaps[-1])
        j = np.searchsorted(self._u0, gaps, side="right") - 1
        times = self._t0[j] + (gaps - self._u0[j]) / self._lam[j]
        return times, _severity_batch(self._rng, self._cdf)


@dataclass(frozen=True)
class PiecewiseStreamSpec:
    """Piecewise-constant-rate Poisson failures (regime schedules).

    ``boundaries`` are segment start times (first entry 0.0, strictly
    increasing) and ``rates`` the per-segment system failure rates — the
    resolved form of a :class:`~repro.systems.regime.RegimeSchedule`
    against one system.  Severities stay i.i.d. across segments (a
    regime rescales *how often* failures strike, not *what* they hit).
    """

    boundaries: tuple
    rates: tuple
    severity_probabilities: tuple

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.rates) or not self.rates:
            raise ValueError(
                f"need one rate per boundary, got {len(self.rates)} rates "
                f"for {len(self.boundaries)} boundaries"
            )
        if self.boundaries[0] != 0.0:
            raise ValueError(
                f"the first segment must start at 0.0, got {self.boundaries[0]}"
            )
        if any(b <= a for a, b in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError(f"boundaries must increase strictly: {self.boundaries}")
        if any(r <= 0 or not np.isfinite(r) for r in self.rates):
            raise ValueError(f"segment rates must be positive finite: {self.rates}")

    def spawn(self, seed_seq) -> _PiecewiseTrialStream:
        return _PiecewiseTrialStream(
            np.random.default_rng(seed_seq),
            self.boundaries,
            self.rates,
            _severity_cdf(self.severity_probabilities),
        )


@lru_cache(maxsize=8)
def _padded_trace(times: tuple, severities: tuple) -> tuple:
    """Pad a trace to whole RNG_BATCH chunks (shared across trials)."""
    k = len(times)
    size = max(((k + RNG_BATCH - 1) // RNG_BATCH) * RNG_BATCH, RNG_BATCH)
    ts = np.full(size, np.inf)
    ss = np.ones(size, dtype=np.int64)
    ts[:k] = times
    ss[:k] = severities
    ts.setflags(write=False)
    ss.setflags(write=False)
    return ts, ss
