"""Failure processes, synthetic traces, rate fitting, and the kind registry."""

from .batching import (
    ExponentialStreamSpec,
    PiecewiseStreamSpec,
    TraceStreamSpec,
    WeibullStreamSpec,
)
from .registry import (
    FAILURE_KINDS,
    FailureSpec,
    RegimeSourceFactory,
    TraceSourceFactory,
    WeibullSourceFactory,
    register_failure_kind,
)
from .fitting import (
    WeibullFit,
    exponential_ks_test,
    fit_exponential_rates,
    fit_weibull,
    spec_from_trace,
)
from .sources import (
    ExponentialFailureSource,
    FailureSource,
    PiecewiseExponentialFailureSource,
    TraceFailureSource,
    WeibullFailureSource,
    severity_sampler,
)
from .traces import FailureTrace, synthesize_trace

__all__ = [
    "ExponentialFailureSource",
    "ExponentialStreamSpec",
    "FAILURE_KINDS",
    "FailureSource",
    "FailureSpec",
    "FailureTrace",
    "PiecewiseExponentialFailureSource",
    "PiecewiseStreamSpec",
    "RegimeSourceFactory",
    "register_failure_kind",
    "TraceFailureSource",
    "TraceSourceFactory",
    "TraceStreamSpec",
    "WeibullFailureSource",
    "WeibullSourceFactory",
    "WeibullStreamSpec",
    "WeibullFit",
    "exponential_ks_test",
    "fit_exponential_rates",
    "fit_weibull",
    "severity_sampler",
    "spec_from_trace",
    "synthesize_trace",
]
