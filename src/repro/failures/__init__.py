"""Failure processes, synthetic traces, and rate fitting."""

from .fitting import (
    WeibullFit,
    exponential_ks_test,
    fit_exponential_rates,
    fit_weibull,
    spec_from_trace,
)
from .sources import (
    ExponentialFailureSource,
    FailureSource,
    TraceFailureSource,
    WeibullFailureSource,
    severity_sampler,
)
from .traces import FailureTrace, synthesize_trace

__all__ = [
    "ExponentialFailureSource",
    "FailureSource",
    "FailureTrace",
    "TraceFailureSource",
    "WeibullFailureSource",
    "WeibullFit",
    "exponential_ks_test",
    "fit_exponential_rates",
    "fit_weibull",
    "severity_sampler",
    "spec_from_trace",
    "synthesize_trace",
]
