"""Failure processes driving the simulator.

The paper (like [5], [11], [17], [18]) assumes failures arrive as a
Poisson process with rate ``lambda = 1/MTBF``, each failure independently
assigned a severity class ``i`` with probability ``S_i`` (Section III-B).
:class:`ExponentialFailureSource` implements exactly that, drawing
inter-arrival times and severities in NumPy batches so the simulator's hot
loop never pays per-draw RNG overhead.

Two further sources support testing and extensions:

* :class:`TraceFailureSource` replays an explicit ``(time, severity)``
  trace — used to cross-validate the fast simulator against the
  process-oriented DES reference implementation event for event, and to
  replay synthesized field traces (:mod:`repro.failures.traces`).
* :class:`WeibullFailureSource` draws inter-arrivals from a Weibull
  renewal process, the most common non-exponential assumption in the HPC
  reliability literature (shape < 1 captures infant-mortality bursts).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

__all__ = [
    "FailureSource",
    "ExponentialFailureSource",
    "PiecewiseExponentialFailureSource",
    "TraceFailureSource",
    "WeibullFailureSource",
    "severity_sampler",
]


class FailureSource(Protocol):
    """A system-wide failure process.

    ``next_after(t)`` returns the absolute time of the next failure
    strictly after ``t`` together with its severity class (1-based).  The
    simulator calls it exactly once per consumed failure, passing the time
    of the failure just handled (or 0.0 initially).
    """

    def next_after(self, t: float) -> tuple[float, int]: ...


def severity_sampler(
    probabilities: Sequence[float], rng: np.random.Generator, batch: int = 4096
):
    """Return a zero-argument callable drawing 1-based severity classes.

    Uses inverse-CDF lookup over a pre-drawn uniform batch; probabilities
    are renormalized defensively (Table I values round to three digits).
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0 or (probs <= 0).any():
        raise ValueError(f"invalid severity probabilities {probabilities}")
    cdf = np.cumsum(probs / probs.sum())
    top = probs.size
    buf: list[int] = []

    def draw() -> int:
        nonlocal buf
        if not buf:
            # Vectorized inverse-CDF for the whole batch; clip guards the
            # u == 1.0 edge.  Reversed so pop() consumes in draw order.
            idxs = np.searchsorted(cdf, rng.random(batch), side="right") + 1
            buf = list(np.minimum(idxs, top)[::-1])
        return buf.pop()

    return draw


class ExponentialFailureSource:
    """Poisson failures with i.i.d. severity classes (the paper's model)."""

    def __init__(
        self,
        rate: float,
        severity_probabilities: Sequence[float],
        rng: np.random.Generator,
        batch: int = 4096,
    ):
        if rate <= 0:
            raise ValueError(f"failure rate must be positive, got {rate}")
        self.rate = float(rate)
        self._scale = 1.0 / self.rate
        self._rng = rng
        self._batch = int(batch)
        self._severity = severity_sampler(severity_probabilities, rng, batch)
        self._gaps = np.empty(0)
        self._idx = 0

    @classmethod
    def for_system(cls, system, rng: np.random.Generator, batch: int = 4096):
        """Build the source matching a :class:`~repro.systems.spec.SystemSpec`."""
        return cls(system.failure_rate, system.severity_probabilities, rng, batch)

    def next_after(self, t: float) -> tuple[float, int]:
        if self._idx >= self._gaps.size:
            self._gaps = self._rng.exponential(self._scale, self._batch)
            self._idx = 0
        gap = self._gaps[self._idx]
        self._idx += 1
        return t + float(gap), self._severity()


class PiecewiseExponentialFailureSource:
    """Poisson failures under a piecewise-constant rate (regime schedules).

    The scalar face of :class:`~repro.failures.batching.
    PiecewiseStreamSpec`: it *wraps the batch engine's per-trial stream
    class directly*, consuming one precomputed absolute failure time per
    ``next_after`` call, so scalar and batched trials draw from the same
    generator in the same order and compute the same IEEE float times —
    bitwise parity by construction rather than by re-derivation.  Like
    the trace source, the process owns its clock: the ``t`` argument is
    only an ordering contract (returned times strictly increase).
    """

    def __init__(
        self,
        boundaries: Sequence[float],
        rates: Sequence[float],
        severity_probabilities: Sequence[float],
        rng: np.random.Generator,
    ):
        from .batching import PiecewiseStreamSpec, _PiecewiseTrialStream, _severity_cdf

        # Validate through the frozen spec so both faces reject exactly
        # the same malformed schedules with the same message.
        PiecewiseStreamSpec(
            tuple(float(b) for b in boundaries),
            tuple(float(r) for r in rates),
            tuple(float(p) for p in severity_probabilities),
        )
        self._stream = _PiecewiseTrialStream(
            rng, boundaries, rates, _severity_cdf(severity_probabilities)
        )
        self._times = np.empty(0)
        self._sevs = np.empty(0, dtype=np.int64)
        self._idx = 0

    def next_after(self, t: float) -> tuple[float, int]:
        if self._idx >= self._times.size:
            self._times, self._sevs = self._stream.refill(0.0)
            self._idx = 0
        out = (float(self._times[self._idx]), int(self._sevs[self._idx]))
        self._idx += 1
        return out


class TraceFailureSource:
    """Replays an explicit failure trace; infinite failure-free tail after it.

    Times must be strictly increasing and positive.  After the trace is
    exhausted, ``next_after`` reports a failure at ``inf`` — i.e. the
    system never fails again.
    """

    def __init__(self, times: Sequence[float], severities: Sequence[int]):
        self.times = [float(t) for t in times]
        self.severities = [int(s) for s in severities]
        if len(self.times) != len(self.severities):
            raise ValueError("times and severities must have equal length")
        if any(t <= 0 for t in self.times[:1]) or any(
            b <= a for a, b in zip(self.times, self.times[1:])
        ):
            raise ValueError("trace times must be positive and strictly increasing")
        if any(s < 1 for s in self.severities):
            raise ValueError("severities are 1-based")
        self._pos = 0

    def next_after(self, t: float) -> tuple[float, int]:
        while self._pos < len(self.times) and self.times[self._pos] <= t:
            self._pos += 1
        if self._pos >= len(self.times):
            return float("inf"), 1
        out = (self.times[self._pos], self.severities[self._pos])
        self._pos += 1
        return out

    def reset(self) -> None:
        """Rewind, so the same trace object can drive several simulators."""
        self._pos = 0


class WeibullFailureSource:
    """Weibull renewal failures (extension beyond the paper's exponential).

    Inter-arrival times are i.i.d. ``Weibull(shape, scale)``; ``shape < 1``
    models the decreasing-hazard bursts observed in field studies,
    ``shape == 1`` degenerates to the exponential source.  The mean
    inter-arrival is ``scale * Gamma(1 + 1/shape)``.
    """

    def __init__(
        self,
        shape: float,
        scale: float,
        severity_probabilities: Sequence[float],
        rng: np.random.Generator,
        batch: int = 4096,
    ):
        if shape <= 0 or scale <= 0:
            raise ValueError("Weibull shape and scale must be positive")
        self.shape = float(shape)
        self.scale = float(scale)
        self._rng = rng
        self._batch = int(batch)
        self._severity = severity_sampler(severity_probabilities, rng, batch)
        self._gaps = np.empty(0)
        self._idx = 0

    @property
    def mean_interarrival(self) -> float:
        from math import gamma

        return self.scale * gamma(1.0 + 1.0 / self.shape)

    def next_after(self, t: float) -> tuple[float, int]:
        if self._idx >= self._gaps.size:
            self._gaps = self.scale * self._rng.weibull(self.shape, self._batch)
            self._idx = 0
        gap = self._gaps[self._idx]
        self._idx += 1
        return t + float(gap), self._severity()
