"""Named failure-source registry: failure processes as spec-addressable data.

Every scenario of the declarative study layer (:mod:`repro.scenarios`)
names its failure process instead of constructing it, so a hand-written
study JSON can say ``{"kind": "weibull", "shape": 0.6}`` and get exactly
the renewal process the Weibull extension study builds in code.  A
:class:`FailureSpec` is the serializable handle; :meth:`FailureSpec.
source_factory` resolves it against a system into the ``source_factory``
callable :func:`repro.simulator.simulate_many` accepts (or ``None`` for
the simulator's built-in exponential default, which keeps the common case
on the exact pre-existing code path).

Registered kinds
----------------
``exponential``
    The paper's Poisson assumption (Section III-B).  No parameters; the
    rate and severity mix come from the system spec.  Resolves to ``None``
    so the simulator uses its default source.
``weibull``
    Weibull renewal inter-arrivals.  Parameters: ``shape`` (required,
    positive; ``< 1`` is bursty) and optional ``scale`` (minutes).  When
    ``scale`` is omitted it is chosen so the mean inter-arrival equals the
    system MTBF — the convention of the Weibull extension study.
``trace``
    Replay an explicit failure trace.  Parameters: ``times`` (strictly
    increasing, positive, minutes) and ``severities`` (1-based ints, same
    length).  Every trial replays the same trace.

Additional kinds can be registered with :func:`register_failure_kind`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import gamma
from typing import Any, Callable, Mapping

from .batching import PiecewiseStreamSpec, TraceStreamSpec, WeibullStreamSpec
from .sources import (
    PiecewiseExponentialFailureSource,
    TraceFailureSource,
    WeibullFailureSource,
)

__all__ = [
    "FAILURE_KINDS",
    "FailureSpec",
    "RegimeSourceFactory",
    "TraceSourceFactory",
    "WeibullSourceFactory",
    "register_failure_kind",
]

#: kind name -> builder(system, **params) -> source_factory | None.  A
#: builder returns either ``None`` (use the simulator's default
#: exponential source) or a callable ``factory(rng) -> FailureSource``
#: invoked once per trial with the trial's generator.
FAILURE_KINDS: dict[str, Callable] = {}


def register_failure_kind(name: str, builder: Callable) -> None:
    """Register ``builder`` under ``name`` (lowercased; must be new)."""
    key = name.lower()
    if key in FAILURE_KINDS:
        raise ValueError(f"failure kind {name!r} is already registered")
    FAILURE_KINDS[key] = builder


def _build_exponential(system):
    # None selects simulate_many's built-in ExponentialFailureSource path.
    return None


@dataclass(frozen=True)
class WeibullSourceFactory:
    """Per-trial Weibull source builder, with a batch-engine descriptor.

    Module-level and frozen (unlike the closures registry builders used
    to return) so it pickles across process boundaries, and it carries
    its parameters declaratively: ``batch_stream`` is the
    :class:`~repro.failures.batching.WeibullStreamSpec` the lockstep
    engine consumes to draw the *same* per-trial failure clock the
    scalar source would.
    """

    shape: float
    scale: float
    severity_probabilities: tuple

    def __call__(self, rng):
        return WeibullFailureSource(
            self.shape, self.scale, self.severity_probabilities, rng
        )

    @property
    def batch_stream(self) -> WeibullStreamSpec:
        return WeibullStreamSpec(
            self.shape, self.scale, self.severity_probabilities
        )


@dataclass(frozen=True)
class TraceSourceFactory:
    """Per-trial trace replay builder, with a batch-engine descriptor."""

    times: tuple
    severities: tuple

    def __call__(self, rng):
        return TraceFailureSource(self.times, self.severities)

    @property
    def batch_stream(self) -> TraceStreamSpec:
        return TraceStreamSpec(self.times, self.severities)


@dataclass(frozen=True)
class RegimeSourceFactory:
    """Per-trial piecewise-exponential source builder (regime schedules).

    The resolved form of a :class:`~repro.systems.regime.RegimeSchedule`
    against one system: segment start times plus the *effective* system
    failure rate in each segment (``base_rate * nodes_scale /
    mtbf_scale``).  Frozen and module-level so it pickles into scenario
    workers, with ``batch_stream`` exposing the
    :class:`~repro.failures.batching.PiecewiseStreamSpec` descriptor —
    ``engine="auto"`` dispatches regime-scheduled scenarios to the
    lockstep engine exactly like the stationary kinds.
    """

    boundaries: tuple
    rates: tuple
    severity_probabilities: tuple

    @classmethod
    def for_system(cls, system, schedule) -> "RegimeSourceFactory":
        return cls(
            boundaries=schedule.boundaries,
            rates=schedule.effective_rates(system.failure_rate),
            severity_probabilities=tuple(system.severity_probabilities),
        )

    def __call__(self, rng):
        return PiecewiseExponentialFailureSource(
            self.boundaries, self.rates, self.severity_probabilities, rng
        )

    @property
    def batch_stream(self) -> PiecewiseStreamSpec:
        return PiecewiseStreamSpec(
            self.boundaries, self.rates, self.severity_probabilities
        )


def _build_weibull(system, shape, scale=None):
    shape = float(shape)
    if shape <= 0:
        raise ValueError(f"weibull shape must be positive, got {shape}")
    if scale is None:
        # Mean inter-arrival pinned to the system MTBF, as in the study.
        scale = system.mtbf / gamma(1.0 + 1.0 / shape)
    return WeibullSourceFactory(
        shape, float(scale), tuple(system.severity_probabilities)
    )


def _build_trace(system, times, severities):
    times = tuple(float(t) for t in times)
    sevs = tuple(int(s) for s in severities)
    TraceFailureSource(times, sevs)  # validate once, loudly, at resolve time
    return TraceSourceFactory(times, sevs)


register_failure_kind("exponential", _build_exponential)
register_failure_kind("weibull", _build_weibull)
register_failure_kind("trace", _build_trace)


@dataclass(frozen=True)
class FailureSpec:
    """A named, serializable failure process (kind + parameters).

    The default spec (``exponential`` with no parameters) resolves to
    ``None`` — the simulator's built-in source — so scenarios that do not
    care about the failure process pay nothing for the indirection.
    """

    kind: str = "exponential"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", str(self.kind).lower())
        object.__setattr__(self, "params", dict(self.params))
        if self.kind not in FAILURE_KINDS:
            known = ", ".join(sorted(FAILURE_KINDS))
            raise ValueError(f"unknown failure kind {self.kind!r}; known: {known}")

    @property
    def is_default(self) -> bool:
        return self.kind == "exponential" and not self.params

    def source_factory(self, system):
        """Resolve against ``system``: a per-trial factory, or ``None``."""
        return FAILURE_KINDS[self.kind](system, **self.params)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Flat JSON form: ``{"kind": ..., <param>: ...}``."""
        out: dict[str, Any] = {"kind": self.kind}
        out.update(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"failure spec must be a mapping, got {type(data).__name__}")
        params = {k: v for k, v in data.items() if k != "kind"}
        return cls(kind=data.get("kind", "exponential"), params=params)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FailureSpec":
        return cls.from_dict(json.loads(text))
