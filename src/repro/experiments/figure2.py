"""Figure 2: five techniques x eleven Table-I systems.

For every test system, each technique's model chooses its own checkpoint
intervals and the simulator measures the resulting efficiency over
independent failure-randomized trials (the paper uses 200).  Rows carry
the bar (simulated mean), its error bar (std) and the diamond (the
model's own prediction).

The experiment is a declarative :class:`~repro.scenarios.StudySpec`
(:func:`study`) executed by the shared scenario pipeline; :func:`run`
only post-processes the outcomes into the figure's row layout.

Shape expectations from the paper (asserted loosely by the benches):

* multilevel (dauwe/di/moody) beats Daly everywhere, by ~2x at the hard
  end — Daly's efficiency is "50% less than multilevel in the worst case";
* Daly's *predictions* are accurate even where its protocol loses;
* Benoit's predictions are optimistic, increasingly so with difficulty;
* dauwe/di/moody perform within ~1% of each other on every system.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import TEST_SYSTEM_ORDER, TEST_SYSTEMS
from .records import ExperimentResult
from .runner import DEFAULT_TECHNIQUES, variant_parameters

__all__ = ["run", "study"]


def study(
    trials: int = 200,
    seed: int = 0,
    techniques: tuple[str, ...] = DEFAULT_TECHNIQUES,
    systems: tuple[str, ...] = TEST_SYSTEM_ORDER,
    objective: str = "time",
    silent_errors=None,
) -> StudySpec:
    """The Figure 2 grid as a declarative study (system-major, legend order).

    ``objective``/``silent_errors`` re-run the grid under the availability
    objective or with a silent-error overlay (defaults reproduce the
    paper's figure byte for byte) — see :class:`~repro.scenarios.
    ScenarioSpec` for both knobs.
    """
    return StudySpec(
        study_id="figure2",
        title="Efficiency of checkpoint interval optimization techniques (Figure 2)",
        seed=seed,
        scenarios=tuple(
            ScenarioSpec(
                system=TEST_SYSTEMS[name], technique=tech, trials=trials,
                seed_policy="pair", objective=objective,
                silent_errors=silent_errors,
            )
            for name in systems
            for tech in techniques
        ),
    )


def run(
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = DEFAULT_TECHNIQUES,
    systems: tuple[str, ...] = TEST_SYSTEM_ORDER,
    sim_workers: int = 1,
    objective: str = "time",
    silent_errors=None,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, techniques=techniques, systems=systems,
                 objective=objective, silent_errors=silent_errors)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for out in srun.outcomes:
        rows.append(
            {
                "system": out.system,
                "technique": out.technique,
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "error": out.prediction_error,
                "plan": out.plan,
            }
        )
    return ExperimentResult(
        experiment_id="figure2",
        title=spec.title,
        caption=(
            "Simulated efficiency (mean +- std over trials) of each "
            "technique's chosen intervals on the Table I systems; "
            "'predicted' is the technique's own efficiency estimate "
            "(the figure's diamonds)."
        ),
        columns=[
            ("system", None),
            ("technique", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("error", "+.4f"),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed,
                    **variant_parameters(objective, silent_errors)},
        notes=[
            "Paper shape: multilevel >= Daly everywhere (up to ~2x on D7-D9); "
            "Benoit optimistic and degrading with difficulty; dauwe/di/moody "
            "within ~1% of one another.",
            "Observed deviations: Benoit degrades to the worst *multilevel* "
            "technique on D7-D9 but stays above Daly (the paper places it "
            "below Daly there), and its Figure-2 drop on the four-level "
            "system B does not emerge from a faithful first-order model — "
            "our Benoit picks near-Moody plans on B (DESIGN.md section 4).",
        ],
        manifest=srun.record.to_dict(),
    )
