"""Result records and table rendering for the experiment harness.

Every experiment module produces an :class:`ExperimentResult`: an ordered
list of row dicts plus enough metadata to render an ASCII table for the
terminal, a Markdown table for EXPERIMENTS.md, and a machine-readable dict
for tests and benchmarks.  Keeping results as plain rows makes the paper's
figures reproducible as *tables of the plotted values* without any
plotting dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table", "TechniqueOutcome"]


@dataclass(frozen=True)
class TechniqueOutcome:
    """One (system, technique) measurement: a single figure bar + diamond."""

    system: str
    technique: str
    plan: str
    predicted_efficiency: float
    simulated_efficiency: float
    simulated_std: float
    trials: int
    predicted_time: float
    mean_time: float
    completed_fraction: float
    breakdown_fractions: Mapping[str, float] = field(default_factory=dict)
    mean_failures: float = 0.0
    #: Numerics-guard event counts (``"site:kind" -> count``) recorded by
    #: the model during plan optimization — the per-outcome slice of the
    #: manifest's ``numerics`` block.  Empty when the sweep stayed fully
    #: inside the model's comfortable regime.
    numerics: Mapping[str, int] = field(default_factory=dict)
    #: Adaptive-replanning comparison block (static vs adaptive vs oracle
    #: means, replans, detection latency, regret) — the serialized
    #: :class:`~repro.simulator.AdaptiveComparison`.  Empty for ordinary
    #: single-policy scenarios, so every pre-existing journal entry and
    #: manifest stays byte-identical.
    adaptive: Mapping[str, Any] = field(default_factory=dict)

    @property
    def prediction_error(self) -> float:
        """Predicted minus simulated efficiency — Figure 6's quantity."""
        return self.predicted_efficiency - self.simulated_efficiency

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form; floats survive a dump/load round trip bitwise.

        This is the run journal's scenario payload: a resumed outcome
        must equal the freshly computed one exactly, which JSON's
        ``repr``-based float serialization guarantees.
        """
        return {
            "system": self.system,
            "technique": self.technique,
            "plan": self.plan,
            "predicted_efficiency": self.predicted_efficiency,
            "simulated_efficiency": self.simulated_efficiency,
            "simulated_std": self.simulated_std,
            "trials": self.trials,
            "predicted_time": self.predicted_time,
            "mean_time": self.mean_time,
            "completed_fraction": self.completed_fraction,
            "breakdown_fractions": dict(self.breakdown_fractions),
            "mean_failures": self.mean_failures,
            "numerics": dict(self.numerics),
            # only-when-set: pre-regime journals and manifests keep their
            # exact bytes, and resumed outcomes still round-trip bitwise.
            **({"adaptive": dict(self.adaptive)} if self.adaptive else {}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TechniqueOutcome":
        return cls(
            system=str(data["system"]),
            technique=str(data["technique"]),
            plan=str(data["plan"]),
            predicted_efficiency=float(data["predicted_efficiency"]),
            simulated_efficiency=float(data["simulated_efficiency"]),
            simulated_std=float(data["simulated_std"]),
            trials=int(data["trials"]),
            predicted_time=float(data["predicted_time"]),
            mean_time=float(data["mean_time"]),
            completed_fraction=float(data["completed_fraction"]),
            breakdown_fractions={
                str(k): float(v)
                for k, v in dict(data.get("breakdown_fractions", {})).items()
            },
            mean_failures=float(data.get("mean_failures", 0.0)),
            numerics={
                str(k): int(v) for k, v in dict(data.get("numerics", {})).items()
            },
            adaptive=dict(data.get("adaptive", {})),
        )


def _fmt(value: Any, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def format_table(
    columns: Sequence[tuple[str, str | None]],
    rows: Sequence[Mapping[str, Any]],
    markdown: bool = False,
) -> str:
    """Render rows as a fixed-width ASCII (or Markdown) table.

    ``columns`` is a sequence of ``(key, format_spec)``; the key doubles
    as the header label.
    """
    headers = [key for key, _ in columns]
    cells = [[_fmt(row.get(key), spec) for key, spec in columns] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    if markdown:
        out = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for r in cells:
            out.append("| " + " | ".join(c.ljust(w) for c, w in zip(r, widths)) + " |")
    else:
        out = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in cells:
            out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """Output of one table/figure regeneration.

    Attributes
    ----------
    experiment_id:
        ``"table1"`` .. ``"figure6"`` (plus ablation ids).
    title / caption:
        Human-readable description, echoing the paper's caption.
    columns:
        ``(key, format_spec)`` pairs defining the table layout.
    rows:
        Ordered row dicts (one per bar/line/cell of the original figure).
    parameters:
        The knobs this run used (trials, seed, ...), recorded so
        EXPERIMENTS.md states exactly what was measured.
    notes:
        Shape expectations and observed deviations.
    manifest:
        Optional :class:`~repro.scenarios.manifest.StudyRunRecord` dict
        describing the study execution that produced these rows (study
        hash, derived seeds, cache/stage stats).  ``None`` for results
        not produced by the scenario pipeline (table1).  Not rendered in
        the tables; the CLI aggregates it into the RunManifest JSON.
    """

    experiment_id: str
    title: str
    caption: str
    columns: list[tuple[str, str | None]]
    rows: list[dict[str, Any]]
    parameters: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    manifest: dict[str, Any] | None = None

    def render(self, markdown: bool = False) -> str:
        header = f"{self.experiment_id}: {self.title}"
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        parts = [header, self.caption]
        if params:
            parts.append(f"[{params}]")
        parts.append("")
        parts.append(format_table(self.columns, self.rows, markdown=markdown))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        out = [f"## {self.experiment_id}: {self.title}", "", self.caption]
        if params:
            out.append(f"*Parameters: {params}*")
        out += ["", format_table(self.columns, self.rows, markdown=True)]
        if self.notes:
            out.append("")
            out.extend(f"- {n}" for n in self.notes)
        return "\n".join(out)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "parameters": self.parameters,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=float,
        )
