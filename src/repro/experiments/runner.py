"""Shared orchestration: optimize a technique, then measure it by simulation.

This is the paper's experimental procedure (Section IV-C): for each
(test system, technique) pair the technique's *own model* selects the
checkpoint intervals, the simulator executes the chosen plan across many
independent failure-randomized trials, and we record both the simulated
efficiency (bar + std) and the model's predicted efficiency (diamond).

The procedure is split into two separately schedulable stages so the
:mod:`repro.exec` layer can cache and parallelize them independently:

* :func:`optimize_technique` — the analytic Section III-C sweep.  Pure
  function of (system physics, technique, options); consults the active
  :class:`~repro.exec.cache.OptimizationCache` so repeated figures never
  recompute a sweep.
* :func:`measure_technique` — the Monte-Carlo measurement of a chosen
  plan.  Depends additionally on ``(trials, seed)``, so it is *not*
  cached, but it is embarrassingly parallel across scenarios.

:func:`evaluate_technique` composes the two (the original single-call
API), and :func:`evaluate_scenarios` fans a list of independent
(system, technique) pairs across the scenario scheduler.
"""

from __future__ import annotations

import time
import zlib
from typing import Mapping, Sequence

from ..exec import (
    ScenarioTask,
    get_active_cache,
    record_stage,
    resolve_sim_workers,
    run_scenarios,
)
from ..exec.cache import OptimizationCache
from ..models import TECHNIQUES, make_model
from ..core.interfaces import OptimizationResult
from ..simulator import simulate_many
from ..systems.spec import SystemSpec
from .records import TechniqueOutcome

__all__ = [
    "evaluate_scenarios",
    "evaluate_technique",
    "measure_technique",
    "optimize_technique",
    "pair_seed",
    "variant_parameters",
    "DEFAULT_TECHNIQUES",
    "BREAKDOWN_TECHNIQUES",
]

#: Figure 2's five techniques, legend order.
DEFAULT_TECHNIQUES = ("dauwe", "di", "moody", "benoit", "daly")
#: The three best performers, used for Figures 3-6 (Section IV-D onward).
BREAKDOWN_TECHNIQUES = ("dauwe", "di", "moody")


def variant_parameters(objective: str = "time", silent_errors=None) -> dict:
    """Report-parameter entries for a non-default objective/failure mode.

    Empty for the paper's defaults, so baseline reports (and the tests
    that assert them byte-identical to the seed) are untouched; a
    variant run names what it optimized and what it injected.
    """
    out: dict = {}
    if objective != "time":
        out["objective"] = objective
    if silent_errors is not None:
        from ..core.silent import SilentErrorSpec

        out["silent_errors"] = SilentErrorSpec.resolve(silent_errors).to_dict()
    return out


def pair_seed(seed: int | None, system_name: str, technique: str) -> int | None:
    """Per-pair simulation seed, stable across processes and worker counts.

    Derived from ``seed`` and the pair's identity so that different
    techniques never share failure sequences (they would on a real
    machine, but independent draws match the paper's per-setup
    200/400-trial methodology and keep pairs independently reproducible).
    Uses CRC32, not built-in ``hash`` — the latter is salted per process.
    """
    if seed is None:
        return None
    return zlib.crc32(f"{seed}/{system_name}/{technique}".encode())


def optimize_technique(
    system: SystemSpec,
    technique: str,
    model_options: Mapping | None = None,
    sweep_options: Mapping | None = None,
    cache: OptimizationCache | None = None,
) -> OptimizationResult:
    """Stage 1: the technique's own model selects the checkpoint plan.

    Deterministic in its arguments, so the result is memoized in
    ``cache`` (default: the process-wide active cache installed by the
    CLI or the scenario scheduler's worker initializer; ``None`` active
    cache means compute every time).  Elapsed wall-clock is recorded
    under the ``"optimize"`` stage either way — a cache hit simply
    records a near-zero duration.
    """
    model_options = dict(model_options or {})
    sweep_options = dict(sweep_options or {})
    if cache is None:
        cache = get_active_cache()

    def compute() -> OptimizationResult:
        model = make_model(technique, system, **model_options)
        return model.optimize(**sweep_options)

    start = time.perf_counter()
    if cache is not None:
        opt = cache.get_or_compute(
            system, technique, compute,
            model_options=model_options, sweep_options=sweep_options,
        )
    else:
        opt = compute()
    record_stage("optimize", time.perf_counter() - start)
    return opt


def measure_technique(
    system: SystemSpec,
    technique: str,
    opt: OptimizationResult,
    trials: int,
    seed: int | None = 0,
    workers: int = 1,
    **simulate_options,
) -> TechniqueOutcome:
    """Stage 2: measure an optimized plan across failure-randomized trials.

    ``checkpoint_at_completion`` defaults to the technique's registered
    behavior — length-blind protocols (Moody, Benoit) checkpoint on
    schedule even at the very end of the run; length-aware ones omit the
    pointless write.  Pass it explicitly to override.
    """
    simulate_options.setdefault(
        "checkpoint_at_completion",
        TECHNIQUES[technique.lower()].takes_scheduled_end_checkpoint,
    )
    start = time.perf_counter()
    stats = simulate_many(
        system,
        opt.plan,
        trials=trials,
        seed=pair_seed(seed, system.name, technique),
        workers=workers,
        **simulate_options,
    )
    record_stage("simulate", time.perf_counter() - start)
    return TechniqueOutcome(
        system=system.name,
        technique=technique,
        plan=opt.plan.describe(),
        predicted_efficiency=opt.predicted_efficiency,
        simulated_efficiency=stats.mean_efficiency,
        simulated_std=stats.std_efficiency,
        trials=trials,
        predicted_time=opt.predicted_time,
        mean_time=stats.mean_total_time,
        completed_fraction=stats.completed_fraction,
        breakdown_fractions=stats.mean_breakdown.fractions(),
        mean_failures=stats.mean_failures,
        numerics=(
            dict(opt.certificate.events) if opt.certificate is not None else {}
        ),
    )


def evaluate_technique(
    system: SystemSpec,
    technique: str,
    trials: int,
    seed: int | None = 0,
    workers: int = 1,
    model_options: dict | None = None,
    sweep_options: dict | None = None,
    cache: OptimizationCache | None = None,
    **simulate_options,
) -> TechniqueOutcome:
    """Optimize ``technique`` on ``system`` and measure the chosen plan.

    Composition of :func:`optimize_technique` and
    :func:`measure_technique`; see those for staging, caching and
    seeding semantics.
    """
    opt = optimize_technique(
        system,
        technique,
        model_options=model_options,
        sweep_options=sweep_options,
        cache=cache,
    )
    return measure_technique(
        system, technique, opt, trials, seed=seed, workers=workers,
        **simulate_options,
    )


def evaluate_scenarios(
    pairs: Sequence[tuple],
    trials: int,
    seed: int | None = 0,
    workers: int = 1,
    sim_workers: int = 1,
    **common_options,
) -> list[TechniqueOutcome]:
    """Evaluate independent (system, technique) scenarios, rows in order.

    Each element of ``pairs`` is ``(system, technique)`` or
    ``(system, technique, options)`` where ``options`` is a dict of
    per-pair keyword arguments for :func:`evaluate_technique`
    (``model_options``, simulate options, ...) layered over
    ``common_options``.  ``workers`` is the *scenario* fan-out; when it
    is > 1 the per-scenario trial pool is forced to a single worker
    (``sim_workers`` is ignored) so pools never nest — see
    :mod:`repro.exec.scheduler`.

    The returned list is ordered like ``pairs`` regardless of worker
    count, and each row is identical to what a serial
    :func:`evaluate_technique` loop would produce with the same ``seed``.
    """
    tasks = []
    for pair in pairs:
        system, technique, *rest = pair
        kwargs = dict(common_options)
        if rest:
            kwargs.update(rest[0])
        kwargs["trials"] = trials
        kwargs["seed"] = seed
        kwargs["workers"] = resolve_sim_workers(workers, sim_workers)
        tasks.append(
            ScenarioTask(
                fn=evaluate_technique,
                args=(system, technique),
                kwargs=kwargs,
                label=f"{system.name}/{technique}",
            )
        )
    return run_scenarios(tasks, workers=workers)
