"""Shared orchestration: optimize a technique, then measure it by simulation.

This is the paper's experimental procedure (Section IV-C): for each
(test system, technique) pair the technique's *own model* selects the
checkpoint intervals, the simulator executes the chosen plan across many
independent failure-randomized trials, and we record both the simulated
efficiency (bar + std) and the model's predicted efficiency (diamond).
"""

from __future__ import annotations

import zlib

from ..models import make_model
from ..simulator import simulate_many
from ..systems.spec import SystemSpec
from .records import TechniqueOutcome

__all__ = ["evaluate_technique", "DEFAULT_TECHNIQUES", "BREAKDOWN_TECHNIQUES"]

#: Figure 2's five techniques, legend order.
DEFAULT_TECHNIQUES = ("dauwe", "di", "moody", "benoit", "daly")
#: The three best performers, used for Figures 3-6 (Section IV-D onward).
BREAKDOWN_TECHNIQUES = ("dauwe", "di", "moody")


def evaluate_technique(
    system: SystemSpec,
    technique: str,
    trials: int,
    seed: int | None = 0,
    workers: int = 1,
    model_options: dict | None = None,
    **simulate_options,
) -> TechniqueOutcome:
    """Optimize ``technique`` on ``system`` and measure the chosen plan.

    The per-pair simulation seed is derived from ``seed`` and the pair's
    identity so that different techniques never share failure sequences
    (they would on a real machine, but independent draws match the
    paper's per-setup 200/400-trial methodology and keep pairs
    independently reproducible).
    """
    model = make_model(technique, system, **(model_options or {}))
    opt = model.optimize()
    # Length-blind protocols (Moody, Benoit) checkpoint on schedule even at
    # the very end of the run; length-aware ones omit the pointless write.
    simulate_options.setdefault(
        "checkpoint_at_completion", model.takes_scheduled_end_checkpoint
    )
    pair_seed = None
    if seed is not None:
        # Stable across processes (unlike built-in str hashing).
        pair_seed = zlib.crc32(f"{seed}/{system.name}/{technique}".encode())
    stats = simulate_many(
        system,
        opt.plan,
        trials=trials,
        seed=pair_seed,
        workers=workers,
        **simulate_options,
    )
    return TechniqueOutcome(
        system=system.name,
        technique=technique,
        plan=opt.plan.describe(),
        predicted_efficiency=opt.predicted_efficiency,
        simulated_efficiency=stats.mean_efficiency,
        simulated_std=stats.std_efficiency,
        trials=trials,
        predicted_time=opt.predicted_time,
        mean_time=stats.mean_total_time,
        completed_fraction=stats.completed_fraction,
        breakdown_fractions=stats.mean_breakdown.fractions(),
        mean_failures=stats.mean_failures,
    )
