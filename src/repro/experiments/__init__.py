"""Experiment harness: one module per table/figure of the paper.

``EXPERIMENTS`` maps experiment ids to runner callables; each returns an
:class:`~repro.experiments.records.ExperimentResult` whose rows are the
plotted values of the original figure.  ``python -m repro`` is the CLI
front-end.
"""

from . import (
    ablations,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    interval_study,
    table1,
    weibull,
)
from .records import ExperimentResult, TechniqueOutcome, format_table
from .report import render_report, write_report
from .runner import BREAKDOWN_TECHNIQUES, DEFAULT_TECHNIQUES, evaluate_technique

#: Experiment id -> runner. All runners accept (trials, seed, workers)
#: except table1, which is parameter-free.
EXPERIMENTS = {
    "table1": table1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "ablations": ablations.run,
    "weibull": weibull.run,
    "interval_study": interval_study.run,
}

__all__ = [
    "BREAKDOWN_TECHNIQUES",
    "DEFAULT_TECHNIQUES",
    "EXPERIMENTS",
    "ExperimentResult",
    "ablations",
    "TechniqueOutcome",
    "evaluate_technique",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_table",
    "interval_study",
    "render_report",
    "table1",
    "weibull",
    "write_report",
]
