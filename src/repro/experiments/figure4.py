"""Figure 4: exascale scaling of system B (long application).

The four-level system B runs a 1440-minute application while the total
MTBF sweeps {26, 20, 15, 6, 3} minutes and the level-L (PFS)
checkpoint/restart time sweeps {10, 20, 30, 40} minutes — 20 scenarios,
each measured for dauwe/di/moody (Section IV-E).  :func:`study` tags
each scenario with its grid coordinates so the rows (and Figure 6's
error derivation) read them without reparsing system names.

Shape expectations from the paper:

* MTBF dominates: 26 -> 3 minutes collapses efficiency from >60% to <1%,
  while 10 -> 40 minute PFS costs lose at most ~40 points;
* a 3-minute MTBF yields <1% efficiency for costs >10 min; even a
  15-minute MTBF drops below 50% for costs >10 min (the paper's
  multilevel-viability limit);
* Di, restricted to two of the four levels, is visibly below dauwe/moody
  wherever efficiency is above ~1%.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import exascale_grid
from .records import ExperimentResult
from .runner import BREAKDOWN_TECHNIQUES, variant_parameters

__all__ = ["run", "study"]


def study(
    trials: int = 200,
    seed: int = 0,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    short_application: bool = False,
    study_id: str = "figure4",
    objective: str = "time",
    silent_errors=None,
) -> StudySpec:
    """The exascale grid as a declarative study (cost-major, then MTBF).

    ``short_application=True`` yields the Figure 5 variant: the grid
    restricted to level-L costs {10, 20} with a 30-minute application.
    ``objective``/``silent_errors`` re-run the grid under the
    availability objective or a silent-error overlay (defaults keep the
    paper's figure byte-identical).
    """
    scenarios = []
    for spec in exascale_grid(short_application=short_application):
        for tech in techniques:
            scenarios.append(
                ScenarioSpec(
                    system=spec,
                    technique=tech,
                    trials=trials,
                    seed_policy="pair",
                    objective=objective,
                    silent_errors=silent_errors,
                    tags={
                        "cL (min)": spec.checkpoint_times[-1],
                        "MTBF (min)": spec.mtbf,
                    },
                )
            )
    return StudySpec(
        study_id=study_id,
        title=(
            "30-minute application under exascale scenarios (Figure 5)"
            if short_application
            else "1440-minute application under exascale scenarios (Figure 4)"
        ),
        seed=seed,
        scenarios=tuple(scenarios),
    )


def run(
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    sim_workers: int = 1,
    objective: str = "time",
    silent_errors=None,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, techniques=techniques,
                 objective=objective, silent_errors=silent_errors)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for scenario, out in zip(spec.scenarios, srun.outcomes):
        rows.append(
            {
                "cL (min)": scenario.tags["cL (min)"],
                "MTBF (min)": scenario.tags["MTBF (min)"],
                "technique": out.technique,
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "error": out.prediction_error,
                "plan": out.plan,
                "completed": out.completed_fraction,
            }
        )
    return ExperimentResult(
        experiment_id="figure4",
        title=spec.title,
        caption=(
            "System B with scaled MTBF (columns within each panel) and "
            "level-L C/R time cL (panels a-d); simulated efficiency, std, "
            "and each technique's prediction. 'completed' < 1 marks "
            "horizon-capped scenarios measured by work/elapsed."
        ),
        columns=[
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            ("technique", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("error", "+.4f"),
            ("completed", ".2f"),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed,
                    **variant_parameters(objective, silent_errors)},
        notes=[
            "Paper shape: MTBF dominates cL; 3-min MTBF -> <1% efficiency for "
            "cL > 10; di (two of four levels) below dauwe/moody where "
            "efficiency > 1%.",
        ],
        manifest=srun.record.to_dict(),
    )
