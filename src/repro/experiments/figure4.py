"""Figure 4: exascale scaling of system B (long application).

The four-level system B runs a 1440-minute application while the total
MTBF sweeps {26, 20, 15, 6, 3} minutes and the level-L (PFS)
checkpoint/restart time sweeps {10, 20, 30, 40} minutes — 20 scenarios,
each measured for dauwe/di/moody (Section IV-E).

Shape expectations from the paper:

* MTBF dominates: 26 -> 3 minutes collapses efficiency from >60% to <1%,
  while 10 -> 40 minute PFS costs lose at most ~40 points;
* a 3-minute MTBF yields <1% efficiency for costs >10 min; even a
  15-minute MTBF drops below 50% for costs >10 min (the paper's
  multilevel-viability limit);
* Di, restricted to two of the four levels, is visibly below dauwe/moody
  wherever efficiency is above ~1%.
"""

from __future__ import annotations

from ..systems import exascale_grid
from .records import ExperimentResult
from .runner import BREAKDOWN_TECHNIQUES, evaluate_scenarios

__all__ = ["run"]


def run(
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    sim_workers: int = 1,
) -> ExperimentResult:
    pairs = [
        (spec, tech)
        for spec in exascale_grid(short_application=False)
        for tech in techniques
    ]
    outs = evaluate_scenarios(
        pairs, trials=trials, seed=seed, workers=workers, sim_workers=sim_workers
    )
    rows = []
    for (spec, tech), out in zip(pairs, outs):
        rows.append(
            {
                "cL (min)": spec.checkpoint_times[-1],
                "MTBF (min)": spec.mtbf,
                "technique": tech,
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "error": out.prediction_error,
                "plan": out.plan,
                "completed": out.completed_fraction,
            }
        )
    return ExperimentResult(
        experiment_id="figure4",
        title="1440-minute application under exascale scenarios (Figure 4)",
        caption=(
            "System B with scaled MTBF (columns within each panel) and "
            "level-L C/R time cL (panels a-d); simulated efficiency, std, "
            "and each technique's prediction. 'completed' < 1 marks "
            "horizon-capped scenarios measured by work/elapsed."
        ),
        columns=[
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            ("technique", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("error", "+.4f"),
            ("completed", ".2f"),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Paper shape: MTBF dominates cL; 3-min MTBF -> <1% efficiency for "
            "cL > 10; di (two of four levels) below dauwe/moody where "
            "efficiency > 1%.",
        ],
    )
