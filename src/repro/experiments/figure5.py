"""Figure 5: the 30-minute application — when to skip level-L checkpoints.

Same exascale grid as Figure 4 restricted to level-L costs {10, 20}, but
the application runs only 30 minutes — *shorter than the mean time
between level-L severity failures* — and each scenario is measured over
400 trials (Section IV-F).  Declaratively this is just
:func:`repro.experiments.figure4.study` with ``short_application=True``.

Shape expectations from the paper:

* dauwe and di account for application length, skip level-L checkpoints
  in every scenario here, and beat moody by up to ~20 efficiency points;
* moody (steady-state model) still takes level-L checkpoints, choices
  "appropriate only for longer running applications";
* the skipping techniques trade a little extra run-to-run variance for
  the mean win (their std exceeds moody's where skipping happened).
"""

from __future__ import annotations

from ..scenarios import StudySpec, execute_study
from .records import ExperimentResult
from .runner import BREAKDOWN_TECHNIQUES, variant_parameters
from . import figure4

__all__ = ["run", "study"]


def study(
    trials: int = 400,
    seed: int = 0,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    objective: str = "time",
    silent_errors=None,
) -> StudySpec:
    return figure4.study(
        trials=trials, seed=seed, techniques=techniques,
        short_application=True, study_id="figure5",
        objective=objective, silent_errors=silent_errors,
    )


def run(
    trials: int = 400,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    sim_workers: int = 1,
    objective: str = "time",
    silent_errors=None,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, techniques=techniques,
                 objective=objective, silent_errors=silent_errors)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for scenario, out in zip(spec.scenarios, srun.outcomes):
        skipped = f"L{scenario.system.num_levels}" not in out.plan
        rows.append(
            {
                "cL (min)": scenario.tags["cL (min)"],
                "MTBF (min)": scenario.tags["MTBF (min)"],
                "technique": out.technique,
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "skips level-L": "yes" if skipped else "no",
                "plan": out.plan,
            }
        )
    return ExperimentResult(
        experiment_id="figure5",
        title=spec.title,
        caption=(
            "System B scaled as in Figure 4 (cL in {10, 20}) running a "
            "30-minute application; techniques that model application "
            "length (dauwe, di) skip level-L checkpoints and accept the "
            "risk of a full restart."
        ),
        columns=[
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            ("technique", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("skips level-L", None),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed,
                    **variant_parameters(objective, silent_errors)},
        notes=[
            "Paper shape: dauwe/di skip level-L everywhere here and beat "
            "moody by up to ~20 points, at slightly higher std.",
            "Observed: the gap runs somewhat larger than the paper's (up to "
            "~35 points at cL=20) because our Moody pattern fits exactly "
            "one level-L checkpoint into the 30-minute run, paid at the "
            "scheduled end position (DESIGN.md; MoodyModel docstring).",
        ],
        manifest=srun.record.to_dict(),
    )
