"""Interval-based vs. pattern-based optimization (extension; Section II-C).

Di et al. [17] report that interval-based optimization — independent
per-level checkpoint periods — "can perform better than pattern-based
optimization"; the paper quotes the claim but excludes the mode for
practicality.  This study tests it in simulation: on each system, the
paper's pattern-based optimizer and the interval-based optimizer
(:mod:`repro.interval`) each choose their schedule, and both run under
identical failure semantics.

Expected shape: the two land close on most systems (the pattern
optimizer's integer constraint costs little), with interval-based edging
ahead where the per-level optimal periods are far from integer multiples
of each other.
"""

from __future__ import annotations

from ..core.dauwe import DauweModel
from ..interval import IntervalModel, simulate_schedule_many
from ..simulator import simulate_many
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run"]


def run(
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    systems: tuple[str, ...] = ("M", "B", "D1", "D4", "D7", "D9"),
) -> ExperimentResult:
    rows = []
    for name in systems:
        spec = TEST_SYSTEMS[name]

        pat = DauweModel(spec).optimize()
        pat_stats = simulate_many(
            spec, pat.plan, trials=trials, seed=seed, workers=workers
        )
        rows.append(
            {
                "system": name,
                "mode": "pattern (dauwe)",
                "sim efficiency": pat_stats.mean_efficiency,
                "std": pat_stats.std_efficiency,
                "predicted": pat.predicted_efficiency,
                "schedule": pat.plan.describe(),
            }
        )

        itv = IntervalModel(spec).optimize()
        itv_stats = simulate_schedule_many(
            spec, itv.schedule, trials=trials, seed=seed
        )
        rows.append(
            {
                "system": name,
                "mode": "interval (di-style)",
                "sim efficiency": itv_stats.mean_efficiency,
                "std": itv_stats.std_efficiency,
                "predicted": itv.predicted_efficiency,
                "schedule": itv.schedule.describe(),
            }
        )
    return ExperimentResult(
        experiment_id="interval_study",
        title="Interval-based vs. pattern-based optimization (extension)",
        caption=(
            "Each mode's own optimizer chooses the schedule; the simulator "
            "measures both under identical failure semantics (coinciding "
            "interval positions merge into the highest level)."
        ),
        columns=[
            ("system", None),
            ("mode", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("schedule", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Extension of the paper (Section II-C discussion; DESIGN.md "
            "section 6): tests Di et al.'s claim that interval-based "
            "optimization can beat pattern-based.",
        ],
    )
