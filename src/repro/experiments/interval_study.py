"""Interval-based vs. pattern-based optimization (extension; Section II-C).

Di et al. [17] report that interval-based optimization — independent
per-level checkpoint periods — "can perform better than pattern-based
optimization"; the paper quotes the claim but excludes the mode for
practicality.  This study tests it in simulation: on each system, the
paper's pattern-based optimizer and the interval-based optimizer
(:mod:`repro.interval`) each choose their schedule, and both run under
identical failure semantics.

Each mode is a :class:`~repro.scenarios.ScenarioSpec` — pattern rows use
the standard optimizer, interval rows set ``optimizer="interval"`` — so
the comparison is available to hand-written study JSON as well.

Expected shape: the two land close on most systems (the pattern
optimizer's integer constraint costs little), with interval-based edging
ahead where the per-level optimal periods are far from integer multiples
of each other.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run", "study"]


def study(
    trials: int = 100,
    seed: int = 0,
    systems: tuple[str, ...] = ("M", "B", "D1", "D4", "D7", "D9"),
) -> StudySpec:
    scenarios = []
    for name in systems:
        spec = TEST_SYSTEMS[name]
        scenarios.append(
            ScenarioSpec(
                system=spec, technique="dauwe", trials=trials,
                seed_policy="fixed",
                label=f"interval_study/{name}/pattern",
                tags={"mode": "pattern (dauwe)"},
            )
        )
        scenarios.append(
            ScenarioSpec(
                system=spec, optimizer="interval", trials=trials,
                seed_policy="fixed",
                label=f"interval_study/{name}/interval",
                tags={"mode": "interval (di-style)"},
            )
        )
    return StudySpec(
        study_id="interval_study",
        title="Interval-based vs. pattern-based optimization (extension)",
        seed=seed,
        scenarios=tuple(scenarios),
    )


def run(
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    systems: tuple[str, ...] = ("M", "B", "D1", "D4", "D7", "D9"),
    sim_workers: int = 1,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, systems=systems)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for scenario, out in zip(spec.scenarios, srun.outcomes):
        rows.append(
            {
                "system": out.system,
                "mode": scenario.tags["mode"],
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "schedule": out.plan,
            }
        )
    return ExperimentResult(
        experiment_id="interval_study",
        title=spec.title,
        caption=(
            "Each mode's own optimizer chooses the schedule; the simulator "
            "measures both under identical failure semantics (coinciding "
            "interval positions merge into the highest level)."
        ),
        columns=[
            ("system", None),
            ("mode", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("schedule", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Extension of the paper (Section II-C discussion; DESIGN.md "
            "section 6): tests Di et al.'s claim that interval-based "
            "optimization can beat pattern-based.",
        ],
        manifest=srun.record.to_dict(),
    )
