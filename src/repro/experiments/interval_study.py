"""Interval-based vs. pattern-based optimization (extension; Section II-C).

Di et al. [17] report that interval-based optimization — independent
per-level checkpoint periods — "can perform better than pattern-based
optimization"; the paper quotes the claim but excludes the mode for
practicality.  This study tests it in simulation: on each system, the
paper's pattern-based optimizer and the interval-based optimizer
(:mod:`repro.interval`) each choose their schedule, and both run under
identical failure semantics.

Expected shape: the two land close on most systems (the pattern
optimizer's integer constraint costs little), with interval-based edging
ahead where the per-level optimal periods are far from integer multiples
of each other.
"""

from __future__ import annotations

import time

from ..exec import ScenarioTask, record_stage, run_scenarios
from ..interval import IntervalModel, simulate_schedule_many
from ..simulator import simulate_many
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult
from .runner import optimize_technique

__all__ = ["run"]


def _pattern_row(spec, trials, seed, workers=1):
    """One pattern-mode scenario: cached Dauwe sweep, then simulation."""
    pat = optimize_technique(spec, "dauwe")
    start = time.perf_counter()
    pat_stats = simulate_many(
        spec, pat.plan, trials=trials, seed=seed, workers=workers
    )
    record_stage("simulate", time.perf_counter() - start)
    return {
        "system": spec.name,
        "mode": "pattern (dauwe)",
        "sim efficiency": pat_stats.mean_efficiency,
        "std": pat_stats.std_efficiency,
        "predicted": pat.predicted_efficiency,
        "schedule": pat.plan.describe(),
    }


def _interval_row(spec, trials, seed):
    """One interval-mode scenario; its schedule is not a pattern plan, so
    its optimization is timed but not cached."""
    start = time.perf_counter()
    itv = IntervalModel(spec).optimize()
    record_stage("optimize", time.perf_counter() - start)
    start = time.perf_counter()
    itv_stats = simulate_schedule_many(
        spec, itv.schedule, trials=trials, seed=seed
    )
    record_stage("simulate", time.perf_counter() - start)
    return {
        "system": spec.name,
        "mode": "interval (di-style)",
        "sim efficiency": itv_stats.mean_efficiency,
        "std": itv_stats.std_efficiency,
        "predicted": itv.predicted_efficiency,
        "schedule": itv.schedule.describe(),
    }


def run(
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    systems: tuple[str, ...] = ("M", "B", "D1", "D4", "D7", "D9"),
    sim_workers: int = 1,
) -> ExperimentResult:
    sim_w = 1 if workers > 1 else sim_workers
    tasks = []
    for name in systems:
        spec = TEST_SYSTEMS[name]
        tasks.append(
            ScenarioTask(
                _pattern_row, args=(spec, trials, seed, sim_w),
                label=f"interval_study/{name}/pattern",
            )
        )
        tasks.append(
            ScenarioTask(
                _interval_row, args=(spec, trials, seed),
                label=f"interval_study/{name}/interval",
            )
        )
    rows = run_scenarios(tasks, workers=workers)
    return ExperimentResult(
        experiment_id="interval_study",
        title="Interval-based vs. pattern-based optimization (extension)",
        caption=(
            "Each mode's own optimizer chooses the schedule; the simulator "
            "measures both under identical failure semantics (coinciding "
            "interval positions merge into the highest level)."
        ),
        columns=[
            ("system", None),
            ("mode", None),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted", ".4f"),
            ("schedule", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Extension of the paper (Section II-C discussion; DESIGN.md "
            "section 6): tests Di et al.'s claim that interval-based "
            "optimization can beat pattern-based.",
        ],
    )
