"""Weibull-failure study: how fragile is the exponential assumption?

Every model the paper compares assumes exponentially-distributed failures
(Section III-B), while HPC field studies repeatedly fit Weibull
inter-arrivals with shape < 1 (bursty, decreasing hazard).  This
extension study keeps each system's MTBF and severity mix fixed, plans
intervals with the paper's model (which only knows rates), and then
simulates under Weibull renewal failures of varying shape.

What to expect: burstiness *helps* a checkpointed application at a fixed
MTBF — failures cluster, so a burst mostly re-kills already-lost work
while long quiet stretches let whole patterns complete — and the
exponential-optimized intervals remain serviceable.  The prediction
error, however, grows with burstiness: the model keeps predicting the
exponential world.
"""

from __future__ import annotations

import time
from math import gamma as _gamma

from ..exec import ScenarioTask, record_stage, run_scenarios
from ..failures.sources import WeibullFailureSource
from ..simulator import simulate_many
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult
from .runner import optimize_technique

__all__ = ["run"]

#: Weibull shapes studied; 1.0 is the exponential baseline.
SHAPES = (1.0, 0.8, 0.6)


def _weibull_factory(system, shape):
    # Scale chosen so the mean inter-arrival equals the system MTBF.
    scale = system.mtbf / _gamma(1.0 + 1.0 / shape)

    def factory(rng):
        return WeibullFailureSource(
            shape, scale, system.severity_probabilities, rng
        )

    return factory


def _simulate_shape(spec, plan, shape, trials, seed, workers=1):
    """Top-level simulate stage: rebuilds the (unpicklable) Weibull
    source-factory closure from ``(spec, shape)`` inside the worker."""
    kwargs = {}
    if shape != 1.0:
        kwargs["source_factory"] = _weibull_factory(spec, shape)
    start = time.perf_counter()
    stats = simulate_many(
        spec, plan, trials=trials, seed=seed, workers=workers, **kwargs
    )
    record_stage("simulate", time.perf_counter() - start)
    return stats


def run(
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    systems: tuple[str, ...] = ("D2", "D5", "D8"),
    sim_workers: int = 1,
) -> ExperimentResult:
    # Stage 1: one (cached) exponential-model sweep per system; every
    # shape reuses the same plan — the point of the study.
    plans = {
        name: optimize_technique(TEST_SYSTEMS[name], "dauwe") for name in systems
    }
    sim_w = 1 if workers > 1 else sim_workers
    meta = []
    tasks = []
    for name in systems:
        res = plans[name]
        for shape in SHAPES:
            meta.append((name, shape, res))
            tasks.append(
                ScenarioTask(
                    _simulate_shape,
                    args=(TEST_SYSTEMS[name], res.plan, shape, trials, seed, sim_w),
                    label=f"weibull/{name}/shape={shape}",
                )
            )
    rows = []
    for (name, shape, res), stats in zip(meta, run_scenarios(tasks, workers=workers)):
        rows.append(
            {
                "system": name,
                "weibull shape": shape,
                "sim efficiency": stats.mean_efficiency,
                "std": stats.std_efficiency,
                "predicted (exp model)": res.predicted_efficiency,
                "error": res.predicted_efficiency - stats.mean_efficiency,
                "plan": res.plan.describe(),
            }
        )
    return ExperimentResult(
        experiment_id="weibull",
        title="Weibull failures vs. the exponential assumption (extension)",
        caption=(
            "The paper's model plans intervals assuming exponential "
            "failures; the simulator then injects Weibull renewal failures "
            "with the same MTBF and severity mix (shape 1.0 = exponential "
            "baseline; smaller = burstier)."
        ),
        columns=[
            ("system", None),
            ("weibull shape", ".1f"),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted (exp model)", ".4f"),
            ("error", "+.4f"),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Not part of the paper: an extension probing its shared "
            "modeling assumption (DESIGN.md section 6).",
            "Expected: efficiency rises as shape falls (bursts cluster "
            "damage; quiet stretches complete patterns), so the "
            "exponential model's predictions become pessimistic for "
            "bursty machines.",
        ],
    )
