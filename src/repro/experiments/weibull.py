"""Weibull-failure study: how fragile is the exponential assumption?

Every model the paper compares assumes exponentially-distributed failures
(Section III-B), while HPC field studies repeatedly fit Weibull
inter-arrivals with shape < 1 (bursty, decreasing hazard).  This
extension study keeps each system's MTBF and severity mix fixed, plans
intervals with the paper's model (which only knows rates), and then
simulates under Weibull renewal failures of varying shape.

Each (system, shape) cell is a :class:`~repro.scenarios.ScenarioSpec`
whose failure process is the *named* ``weibull`` kind from
:mod:`repro.failures.registry` (the 1.0 baseline keeps the default
exponential source), so the exact same sweep is available to
hand-written study JSON: ``{"failure": {"kind": "weibull", "shape":
0.6}}``.  The optimization cache shares one exponential-model sweep per
system across all shapes — the point of the study.

What to expect: burstiness *helps* a checkpointed application at a fixed
MTBF — failures cluster, so a burst mostly re-kills already-lost work
while long quiet stretches let whole patterns complete — and the
exponential-optimized intervals remain serviceable.  The prediction
error, however, grows with burstiness: the model keeps predicting the
exponential world.
"""

from __future__ import annotations

from ..failures.registry import FailureSpec
from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run", "study", "SHAPES"]

#: Weibull shapes studied; 1.0 is the exponential baseline.
SHAPES = (1.0, 0.8, 0.6)


def study(
    trials: int = 100,
    seed: int = 0,
    systems: tuple[str, ...] = ("D2", "D5", "D8"),
    shapes: tuple[float, ...] = SHAPES,
) -> StudySpec:
    scenarios = []
    for name in systems:
        for shape in shapes:
            failure = (
                FailureSpec()
                if shape == 1.0
                else FailureSpec("weibull", {"shape": shape})
            )
            scenarios.append(
                ScenarioSpec(
                    system=TEST_SYSTEMS[name],
                    technique="dauwe",
                    failure=failure,
                    trials=trials,
                    seed_policy="fixed",
                    label=f"weibull/{name}/shape={shape}",
                    tags={"weibull shape": shape},
                )
            )
    return StudySpec(
        study_id="weibull",
        title="Weibull failures vs. the exponential assumption (extension)",
        seed=seed,
        scenarios=tuple(scenarios),
    )


def run(
    trials: int = 100,
    seed: int = 0,
    workers: int = 1,
    systems: tuple[str, ...] = ("D2", "D5", "D8"),
    sim_workers: int = 1,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, systems=systems)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for scenario, out in zip(spec.scenarios, srun.outcomes):
        rows.append(
            {
                "system": out.system,
                "weibull shape": scenario.tags["weibull shape"],
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted (exp model)": out.predicted_efficiency,
                "error": out.prediction_error,
                "plan": out.plan,
            }
        )
    return ExperimentResult(
        experiment_id="weibull",
        title=spec.title,
        caption=(
            "The paper's model plans intervals assuming exponential "
            "failures; the simulator then injects Weibull renewal failures "
            "with the same MTBF and severity mix (shape 1.0 = exponential "
            "baseline; smaller = burstier)."
        ),
        columns=[
            ("system", None),
            ("weibull shape", ".1f"),
            ("sim efficiency", ".4f"),
            ("std", ".4f"),
            ("predicted (exp model)", ".4f"),
            ("error", "+.4f"),
            ("plan", None),
        ],
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "Not part of the paper: an extension probing its shared "
            "modeling assumption (DESIGN.md section 6).",
            "Expected: efficiency rises as shape falls (bursts cluster "
            "damage; quiet stretches complete patterns), so the "
            "exponential model's predictions become pessimistic for "
            "bursty machines.",
        ],
        manifest=srun.record.to_dict(),
    )
