"""EXPERIMENTS.md generation: paper-vs-measured, one section per figure.

``write_report`` runs (or accepts) experiment results and renders the
Markdown report the repository checks in, recording for every table and
figure what the paper shows and what this reproduction measured.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable

from .records import ExperimentResult

__all__ = ["write_report", "render_report"]

_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure of *"An Analysis of Multilevel
Checkpoint Performance Models"* (IPDPS 2018).  Absolute numbers come from
this package's simulator, not the authors' testbed; what must (and does)
hold is the *shape* of each result — who wins, by roughly what factor,
where the crossovers fall.  Shape expectations are restated in each
section's notes, with observed deviations called out.

Regenerate any section with ``python -m repro <experiment-id> [--trials N]
[--seed S]``; the parameters actually used are recorded per section.
"""


def render_report(results: Iterable[ExperimentResult]) -> str:
    parts = [_PREAMBLE, f"*Generated {time.strftime('%Y-%m-%d %H:%M:%S')}*", ""]
    for res in results:
        parts.append(res.to_markdown())
        parts.append("")
    return "\n".join(parts)


def write_report(results: Iterable[ExperimentResult], path: str | Path) -> Path:
    """Render and write the report atomically (temp file + rename).

    The CLI also calls this from its interrupt path to flush a *partial*
    report; atomic replacement guarantees the file on disk is always a
    complete render, never a torn write.
    """
    from ..exec.resilience import atomic_write_text

    return atomic_write_text(Path(path), render_report(results))
