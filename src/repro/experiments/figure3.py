"""Figure 3: where application time goes, per event category.

For the three best techniques (dauwe, di, moody) on every Table-I system,
the simulator's per-category time accounting is averaged over trials and
reported as percentage shares of total execution time — the paper's
stacked bars.  The headline claim this reproduces (Section IV-D): the
failed-checkpoint + failed-restart share grows *nonlinearly* with system
difficulty, exceeding 30% on the most extreme systems (D7-D9), because
the MTBF approaches the PFS checkpoint/restart duration — the reason
models must account for failures during these events.

Declaratively, this is the Figure 2 study restricted to the breakdown
techniques; only the row post-processing (percent shares) differs.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import TEST_SYSTEM_ORDER, TEST_SYSTEMS
from .records import ExperimentResult
from .runner import BREAKDOWN_TECHNIQUES, variant_parameters

__all__ = ["run", "study"]

_CATS = (
    "work",
    "checkpoint",
    "failed_checkpoint",
    "restart",
    "failed_restart",
    "rework_compute",
    "rework_checkpoint",
    "rework_restart",
)


def study(
    trials: int = 200,
    seed: int = 0,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    systems: tuple[str, ...] = TEST_SYSTEM_ORDER,
    objective: str = "time",
    silent_errors=None,
) -> StudySpec:
    return StudySpec(
        study_id="figure3",
        title="Percentage of execution time per event category (Figure 3)",
        seed=seed,
        scenarios=tuple(
            ScenarioSpec(
                system=TEST_SYSTEMS[name], technique=tech, trials=trials,
                seed_policy="pair", objective=objective,
                silent_errors=silent_errors,
            )
            for name in systems
            for tech in techniques
        ),
    )


def run(
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    systems: tuple[str, ...] = TEST_SYSTEM_ORDER,
    sim_workers: int = 1,
    objective: str = "time",
    silent_errors=None,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed, techniques=techniques, systems=systems,
                 objective=objective, silent_errors=silent_errors)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for out in srun.outcomes:
        fr = out.breakdown_fractions
        row = {"system": out.system, "technique": out.technique}
        for cat in _CATS:
            row[cat] = 100.0 * fr.get(cat, 0.0)
        row["failed C/R total"] = row["failed_checkpoint"] + row["failed_restart"]
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure3",
        title=spec.title,
        caption=(
            "Average share of application time spent in each resilience/"
            "failure event category (percent), for the three best "
            "techniques on the Table I systems."
        ),
        columns=[("system", None), ("technique", None)]
        + [(c, ".2f") for c in _CATS]
        + [("failed C/R total", ".2f")],
        rows=rows,
        parameters={"trials": trials, "seed": seed,
                    **variant_parameters(objective, silent_errors)},
        notes=[
            "Paper shape: failed-checkpoint+failed-restart share grows "
            "nonlinearly with difficulty, >=30% on the extreme systems "
            "(D7-D9); D8 and D9 nearly identical (they differ only in T_B).",
        ],
        manifest=srun.record.to_dict(),
    )
