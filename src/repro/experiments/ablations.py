"""Ablation studies for the design decisions DESIGN.md calls out.

Four mini-studies, reported as one table (column ``study``):

* ``model-terms`` — strip the failed-checkpoint/failed-restart terms from
  the paper's model (i.e. assume C/R events are failure-free, like [17]
  and [18]) and measure what the *resulting interval choices* cost in
  simulated efficiency, per test system.  This is the paper's central
  argument (Sections IV-C/IV-D) quantified directly.
* ``restart-semantics`` — simulate the same plan under retry vs.
  escalating restarts, measuring the real cost of the behaviour Moody's
  model assumes (Section IV-G).
* ``recheckpoint`` — the simulator's re-checkpointing policy (DESIGN.md
  decision 7a): the models' world (``free``) vs. physically re-paying
  destroyed checkpoints (``paid``) vs. not re-establishing them
  (``skip``).
* ``eqn4-top`` — the literal ``N_L + 1`` reading of Eqn. 4 vs. the
  corrected ``N_L`` reading (DESIGN.md decision; DauweModel docstring),
  compared on prediction error against simulation.

Each row is one :class:`~repro.scenarios.ScenarioSpec` with the
``fixed`` seed policy (variants of a study share failure streams) and a
``tags`` triple (study, variant, whether to show the model's own
prediction); the active optimization cache deduplicates the sweeps the
variants share — the default Dauwe sweep on D5/D8 backs three of the
four studies.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, StudySpec, execute_study
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run", "study"]

_COLUMNS = [
    ("study", None),
    ("system", None),
    ("variant", None),
    ("sim efficiency", ".4f"),
    ("predicted", ".4f"),
    ("error", "+.4f"),
    ("plan", None),
]

_NO_FAILED_CR = {
    "include_checkpoint_failures": False,
    "include_restart_failures": False,
}


def study(trials: int = 100, seed: int = 0) -> StudySpec:
    """All four mini-studies as one ordered declarative study."""

    def scenario(study_name, system, variant, show_predicted=True,
                 model_options=None, simulate=None):
        return ScenarioSpec(
            system=TEST_SYSTEMS[system],
            technique="dauwe",
            model_options=model_options or {},
            simulate=simulate or {},
            trials=trials,
            seed_policy="fixed",
            label=f"{study_name}/{system}/{variant}",
            tags={
                "study": study_name,
                "variant": variant,
                "show predicted": show_predicted,
            },
        )

    scenarios = []
    for name in ("D1", "D5", "D8"):
        scenarios.append(scenario("model-terms", name, "full model"))
        scenarios.append(
            scenario("model-terms", name, "no failed-C/R terms",
                     model_options=_NO_FAILED_CR)
        )
    for name in ("D5", "D8"):
        for semantics in ("retry", "escalate"):
            scenarios.append(
                scenario("restart-semantics", name, semantics,
                         show_predicted=False,
                         simulate={"restart_semantics": semantics})
            )
    for name in ("D5", "D8"):
        for policy in ("free", "paid", "skip"):
            scenarios.append(
                scenario("recheckpoint", name, policy,
                         simulate={"recheckpoint": policy})
            )
    for label, flag in (("N_L (corrected)", False), ("N_L + 1 (literal)", True)):
        scenarios.append(
            scenario("eqn4-top", "B", label,
                     model_options={"final_interval_plus_one": flag})
        )
    return StudySpec(
        study_id="ablations",
        title="Design-decision ablations (beyond the paper's figures)",
        seed=seed,
        scenarios=tuple(scenarios),
    )


def run(
    trials: int = 100, seed: int = 0, workers: int = 1, sim_workers: int = 1,
    **exec_options,
) -> ExperimentResult:
    spec = study(trials=trials, seed=seed)
    srun = execute_study(spec, workers=workers, sim_workers=sim_workers,
                         **exec_options)
    rows = []
    for scenario, out in zip(spec.scenarios, srun.outcomes):
        pred = out.predicted_efficiency if scenario.tags["show predicted"] else None
        sim = out.simulated_efficiency
        rows.append(
            {
                "study": scenario.tags["study"],
                "system": out.system,
                "variant": scenario.tags["variant"],
                "sim efficiency": sim,
                "predicted": pred,
                "error": None if pred is None else pred - sim,
                "plan": out.plan,
            }
        )
    return ExperimentResult(
        experiment_id="ablations",
        title=spec.title,
        caption=(
            "Each study isolates one modeling/simulation decision; see the "
            "module docstring and DESIGN.md section 4 for the rationale."
        ),
        columns=_COLUMNS,
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "model-terms: dropping the failed-C/R terms inflates the chosen "
            "intervals and the prediction error, increasingly with system "
            "difficulty — the paper's core claim.",
            "restart-semantics: escalation costs real efficiency only where "
            "MTBF approaches the restart durations.",
            "recheckpoint: 'paid' shows the uniform optimism every analytic "
            "model would exhibit against a physically re-checkpointing "
            "system; 'free' (default) matches the models' assumptions.",
            "eqn4-top: the literal '+1' reading biases the optimizer toward "
            "denser top-level patterns and pushes predictions low.",
        ],
        manifest=srun.record.to_dict(),
    )
