"""Ablation studies for the design decisions DESIGN.md calls out.

Four mini-studies, reported as one table (column ``study``):

* ``model-terms`` — strip the failed-checkpoint/failed-restart terms from
  the paper's model (i.e. assume C/R events are failure-free, like [17]
  and [18]) and measure what the *resulting interval choices* cost in
  simulated efficiency, per test system.  This is the paper's central
  argument (Sections IV-C/IV-D) quantified directly.
* ``restart-semantics`` — simulate the same plan under retry vs.
  escalating restarts, measuring the real cost of the behaviour Moody's
  model assumes (Section IV-G).
* ``recheckpoint`` — the simulator's re-checkpointing policy (DESIGN.md
  decision 7a): the models' world (``free``) vs. physically re-paying
  destroyed checkpoints (``paid``) vs. not re-establishing them
  (``skip``).
* ``eqn4-top`` — the literal ``N_L + 1`` reading of Eqn. 4 vs. the
  corrected ``N_L`` reading (DESIGN.md decision; DauweModel docstring),
  compared on prediction error against simulation.
"""

from __future__ import annotations

from ..core.dauwe import DauweModel
from ..simulator import simulate_many
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run"]

_COLUMNS = [
    ("study", None),
    ("system", None),
    ("variant", None),
    ("sim efficiency", ".4f"),
    ("predicted", ".4f"),
    ("error", "+.4f"),
    ("plan", None),
]


def _row(study, system, variant, sim, pred=None, plan=""):
    return {
        "study": study,
        "system": system,
        "variant": variant,
        "sim efficiency": sim,
        "predicted": pred,
        "error": None if pred is None else pred - sim,
        "plan": plan,
    }


def _model_terms(trials, seed, rows):
    for name in ("D1", "D5", "D8"):
        spec = TEST_SYSTEMS[name]
        variants = {
            "full model": DauweModel(spec),
            "no failed-C/R terms": DauweModel(
                spec,
                include_checkpoint_failures=False,
                include_restart_failures=False,
            ),
        }
        for label, model in variants.items():
            res = model.optimize()
            stats = simulate_many(spec, res.plan, trials=trials, seed=seed)
            rows.append(
                _row(
                    "model-terms",
                    name,
                    label,
                    stats.mean_efficiency,
                    res.predicted_efficiency,
                    res.plan.describe(),
                )
            )


def _restart_semantics(trials, seed, rows):
    for name in ("D5", "D8"):
        spec = TEST_SYSTEMS[name]
        plan = DauweModel(spec).optimize().plan
        for semantics in ("retry", "escalate"):
            stats = simulate_many(
                spec, plan, trials=trials, seed=seed, restart_semantics=semantics
            )
            rows.append(
                _row(
                    "restart-semantics",
                    name,
                    semantics,
                    stats.mean_efficiency,
                    plan=plan.describe(),
                )
            )


def _recheckpoint(trials, seed, rows):
    for name in ("D5", "D8"):
        spec = TEST_SYSTEMS[name]
        res = DauweModel(spec).optimize()
        for policy in ("free", "paid", "skip"):
            stats = simulate_many(
                spec, res.plan, trials=trials, seed=seed, recheckpoint=policy
            )
            rows.append(
                _row(
                    "recheckpoint",
                    name,
                    policy,
                    stats.mean_efficiency,
                    res.predicted_efficiency,
                    res.plan.describe(),
                )
            )


def _eqn4_top(trials, seed, rows):
    spec = TEST_SYSTEMS["B"]
    for label, flag in (("N_L (corrected)", False), ("N_L + 1 (literal)", True)):
        model = DauweModel(spec, final_interval_plus_one=flag)
        res = model.optimize()
        stats = simulate_many(spec, res.plan, trials=trials, seed=seed)
        rows.append(
            _row(
                "eqn4-top",
                "B",
                label,
                stats.mean_efficiency,
                res.predicted_efficiency,
                res.plan.describe(),
            )
        )


def run(trials: int = 100, seed: int = 0, workers: int = 1) -> ExperimentResult:
    rows: list[dict] = []
    _model_terms(trials, seed, rows)
    _restart_semantics(trials, seed, rows)
    _recheckpoint(trials, seed, rows)
    _eqn4_top(trials, seed, rows)
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-decision ablations (beyond the paper's figures)",
        caption=(
            "Each study isolates one modeling/simulation decision; see the "
            "module docstring and DESIGN.md section 4 for the rationale."
        ),
        columns=_COLUMNS,
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "model-terms: dropping the failed-C/R terms inflates the chosen "
            "intervals and the prediction error, increasingly with system "
            "difficulty — the paper's core claim.",
            "restart-semantics: escalation costs real efficiency only where "
            "MTBF approaches the restart durations.",
            "recheckpoint: 'paid' shows the uniform optimism every analytic "
            "model would exhibit against a physically re-checkpointing "
            "system; 'free' (default) matches the models' assumptions.",
            "eqn4-top: the literal '+1' reading biases the optimizer toward "
            "denser top-level patterns and pushes predictions low.",
        ],
    )
