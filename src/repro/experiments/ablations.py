"""Ablation studies for the design decisions DESIGN.md calls out.

Four mini-studies, reported as one table (column ``study``):

* ``model-terms`` — strip the failed-checkpoint/failed-restart terms from
  the paper's model (i.e. assume C/R events are failure-free, like [17]
  and [18]) and measure what the *resulting interval choices* cost in
  simulated efficiency, per test system.  This is the paper's central
  argument (Sections IV-C/IV-D) quantified directly.
* ``restart-semantics`` — simulate the same plan under retry vs.
  escalating restarts, measuring the real cost of the behaviour Moody's
  model assumes (Section IV-G).
* ``recheckpoint`` — the simulator's re-checkpointing policy (DESIGN.md
  decision 7a): the models' world (``free``) vs. physically re-paying
  destroyed checkpoints (``paid``) vs. not re-establishing them
  (``skip``).
* ``eqn4-top`` — the literal ``N_L + 1`` reading of Eqn. 4 vs. the
  corrected ``N_L`` reading (DESIGN.md decision; DauweModel docstring),
  compared on prediction error against simulation.
"""

from __future__ import annotations

import time

from ..exec import ScenarioTask, record_stage, run_scenarios
from ..simulator import simulate_many
from ..systems import TEST_SYSTEMS
from .records import ExperimentResult
from .runner import optimize_technique

__all__ = ["run"]

_COLUMNS = [
    ("study", None),
    ("system", None),
    ("variant", None),
    ("sim efficiency", ".4f"),
    ("predicted", ".4f"),
    ("error", "+.4f"),
    ("plan", None),
]


def _row(study, system, variant, sim, pred=None, plan=""):
    return {
        "study": study,
        "system": system,
        "variant": variant,
        "sim efficiency": sim,
        "predicted": pred,
        "error": None if pred is None or sim is None else pred - sim,
        "plan": plan,
    }


_NO_FAILED_CR = {
    "include_checkpoint_failures": False,
    "include_restart_failures": False,
}


def _measure(spec, plan, trials, seed, **simulate_options):
    """Top-level (picklable) simulate stage: mean efficiency of one plan."""
    start = time.perf_counter()
    stats = simulate_many(spec, plan, trials=trials, seed=seed, **simulate_options)
    record_stage("simulate", time.perf_counter() - start)
    return stats.mean_efficiency


def run(
    trials: int = 100, seed: int = 0, workers: int = 1, sim_workers: int = 1
) -> ExperimentResult:
    # Stage 1 — the distinct optimization problems, deduplicated: the
    # default Dauwe sweep on D5/D8 is shared by three of the four studies
    # (and with every figure, through the active cache).
    memo: dict = {}

    def optimized(name, **model_options):
        key = (name, tuple(sorted(model_options.items())))
        if key not in memo:
            memo[key] = optimize_technique(
                TEST_SYSTEMS[name], "dauwe", model_options=model_options
            )
        return memo[key]

    # Stage 2 — every row is one independent simulation of an optimized
    # plan; rows are declared in study order and filled from the
    # scheduler's order-stable results.
    rows: list[dict] = []
    tasks: list[ScenarioTask] = []
    sim_w = 1 if workers > 1 else sim_workers

    def add(study, name, variant, res, pred=None, **simulate_options):
        rows.append(_row(study, name, variant, None, pred, res.plan.describe()))
        tasks.append(
            ScenarioTask(
                _measure,
                args=(TEST_SYSTEMS[name], res.plan, trials, seed),
                kwargs=dict(simulate_options, workers=sim_w),
                label=f"{study}/{name}/{variant}",
            )
        )

    for name in ("D1", "D5", "D8"):
        res = optimized(name)
        add("model-terms", name, "full model", res, res.predicted_efficiency)
        res = optimized(name, **_NO_FAILED_CR)
        add(
            "model-terms", name, "no failed-C/R terms", res,
            res.predicted_efficiency,
        )

    for name in ("D5", "D8"):
        res = optimized(name)
        for semantics in ("retry", "escalate"):
            add(
                "restart-semantics", name, semantics, res,
                restart_semantics=semantics,
            )

    for name in ("D5", "D8"):
        res = optimized(name)
        for policy in ("free", "paid", "skip"):
            add(
                "recheckpoint", name, policy, res,
                res.predicted_efficiency, recheckpoint=policy,
            )

    for label, flag in (("N_L (corrected)", False), ("N_L + 1 (literal)", True)):
        res = optimized("B", final_interval_plus_one=flag)
        add("eqn4-top", "B", label, res, res.predicted_efficiency)

    for row, sim in zip(rows, run_scenarios(tasks, workers=workers)):
        row["sim efficiency"] = sim
        if row["predicted"] is not None:
            row["error"] = row["predicted"] - sim
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-decision ablations (beyond the paper's figures)",
        caption=(
            "Each study isolates one modeling/simulation decision; see the "
            "module docstring and DESIGN.md section 4 for the rationale."
        ),
        columns=_COLUMNS,
        rows=rows,
        parameters={"trials": trials, "seed": seed},
        notes=[
            "model-terms: dropping the failed-C/R terms inflates the chosen "
            "intervals and the prediction error, increasingly with system "
            "difficulty — the paper's core claim.",
            "restart-semantics: escalation costs real efficiency only where "
            "MTBF approaches the restart durations.",
            "recheckpoint: 'paid' shows the uniform optimism every analytic "
            "model would exhibit against a physically re-checkpointing "
            "system; 'free' (default) matches the models' assumptions.",
            "eqn4-top: the literal '+1' reading biases the optimizer toward "
            "denser top-level patterns and pushes predictions low.",
        ],
    )
