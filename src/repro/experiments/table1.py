"""Table I: the test systems used throughout the evaluation.

A pure catalog dump — regenerating it verifies that the transcription in
:mod:`repro.systems.catalog` carries exactly the paper's values (the test
suite pins every cell).
"""

from __future__ import annotations

from ..systems import TEST_SYSTEM_ORDER, TEST_SYSTEMS
from .records import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    rows = []
    for name in TEST_SYSTEM_ORDER:
        spec = TEST_SYSTEMS[name]
        rows.append(
            {
                "system": spec.name,
                "source": spec.description,
                "levels": spec.num_levels,
                "MTBF (min)": spec.mtbf,
                "failure distribution": "(" + ", ".join(
                    f"{p:g}" for p in spec.level_probabilities
                ) + ")",
                "C/R time (min)": "(" + ", ".join(
                    f"{c:g}" for c in spec.checkpoint_times
                ) + ")",
                "T_B (min)": spec.baseline_time,
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Test systems (Table I)",
        caption=(
            "Systems in order of monotonically increasing difficulty of "
            "providing fault resilience; all times in minutes, severities "
            "as probability distributions."
        ),
        columns=[
            ("system", None),
            ("source", None),
            ("levels", "d"),
            ("MTBF (min)", "g"),
            ("failure distribution", None),
            ("C/R time (min)", None),
            ("T_B (min)", "g"),
        ],
        rows=rows,
    )
