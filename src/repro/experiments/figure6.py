"""Figure 6: model prediction error across the 20 Figure-4 scenarios.

Prediction error = (model's predicted efficiency) - (simulated
efficiency), one value per technique per scenario, sorted by increasing
|error| of the Moody model (the paper's x-axis ordering).

Shape expectations from the paper (Section IV-G):

* Moody *underestimates* efficiency (error <= 0, down to about -7
  points): its escalating-restart assumption is pessimistic at scale;
* Di *overestimates* (error >= 0, up to about +14 points): it ignores
  failures during restarts entirely;
* the paper's model sits nearest zero in most scenarios.
"""

from __future__ import annotations

from .records import ExperimentResult
from .runner import BREAKDOWN_TECHNIQUES
from . import figure4

__all__ = ["run", "from_figure4"]


def from_figure4(fig4: ExperimentResult) -> ExperimentResult:
    """Derive the error chart from an existing Figure-4 result."""
    # scenario -> technique -> error
    scenarios: dict[tuple[float, float], dict[str, float]] = {}
    for row in fig4.rows:
        key = (row["cL (min)"], row["MTBF (min)"])
        scenarios.setdefault(key, {})[row["technique"]] = row["error"]

    techniques = []
    for techs in scenarios.values():
        for tech in techs:
            if tech not in techniques:
                techniques.append(tech)
    anchor = "moody" if "moody" in techniques else techniques[-1]
    ordered = sorted(
        scenarios.items(), key=lambda item: abs(item[1].get(anchor, 0.0))
    )
    rows = []
    for rank, (key, errs) in enumerate(ordered, start=1):
        row = {"test": rank, "cL (min)": key[0], "MTBF (min)": key[1]}
        for tech in techniques:
            row[f"{tech} error"] = errs.get(tech)
        rows.append(row)
    return ExperimentResult(
        experiment_id="figure6",
        title="Prediction error on the Figure-4 scenarios (Figure 6)",
        caption=(
            "Predicted minus simulated efficiency for each technique, "
            "ordered by increasing magnitude of the Moody model's error; "
            "the target (the figure's red line) is zero."
        ),
        columns=[
            ("test", "d"),
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            *((f"{tech} error", "+.4f") for tech in techniques),
        ],
        rows=rows,
        parameters=dict(fig4.parameters),
        notes=[
            "Paper shape: moody <= 0 (to ~-7 pts), di >= 0 (to ~+14 pts), "
            "dauwe nearest zero in most scenarios.",
            "Observed: ordering reproduced (di >= dauwe >= moody in nearly "
            "every scenario; di overestimates, moody underestimates most) "
            "at smaller magnitudes (~+/-5 pts vs the paper's -7/+14).",
            "A shared -2..-4 pt underestimate on the easiest scenarios "
            "(MTBF 26, large cL) traces to end-of-run checkpoint "
            "discretization: the continuous models price fractional "
            "level-L checkpoints the simulated run never takes "
            "(DESIGN.md decision 6).",
        ],
        manifest=fig4.manifest,
    )


def run(
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    techniques: tuple[str, ...] = BREAKDOWN_TECHNIQUES,
    sim_workers: int = 1,
    objective: str = "time",
    silent_errors=None,
) -> ExperimentResult:
    return from_figure4(
        figure4.run(
            trials=trials, seed=seed, workers=workers,
            techniques=techniques, sim_workers=sim_workers,
            objective=objective, silent_errors=silent_errors,
        )
    )
