"""repro — reproduction of "An Analysis of Multilevel Checkpoint Performance Models".

The package provides, as a downstream-usable library:

* the paper's hierarchical execution-time model
  (:class:`repro.core.DauweModel`) and the four prior-work techniques it
  compares against (:mod:`repro.models`);
* a bounded brute-force checkpoint-interval optimizer
  (:func:`repro.core.sweep_plans`);
* a failure-injecting checkpoint/restart simulator used as ground truth
  (:mod:`repro.simulator`), plus a general discrete-event engine
  (:mod:`repro.des`);
* failure-trace tooling (:mod:`repro.failures`) and a checkpoint storage
  substrate with real XOR / Reed-Solomon erasure coding
  (:mod:`repro.storage`);
* the paper's Table I systems (:mod:`repro.systems`) and the full
  experiment harness regenerating every table and figure
  (:mod:`repro.experiments`, ``python -m repro``).

Quickstart::

    from repro import DauweModel, get_system, simulate_many

    system = get_system("B")
    result = DauweModel(system).optimize()
    print(result.plan.describe(), result.predicted_efficiency)
    stats = simulate_many(system, result.plan, trials=100, seed=1)
    print(stats.mean_efficiency)
"""

from .core import (
    CheckpointModel,
    CheckpointPlan,
    DauweModel,
    OptimizationResult,
    sweep_plans,
)
from .systems import SystemSpec, TEST_SYSTEMS, exascale_grid, get_system

__version__ = "1.0.0"

__all__ = [
    "CheckpointModel",
    "CheckpointPlan",
    "DauweModel",
    "OptimizationResult",
    "SystemSpec",
    "TEST_SYSTEMS",
    "exascale_grid",
    "get_system",
    "simulate_many",
    "simulate_trial",
    "sweep_plans",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid a hard dependency
    # cycle while the simulator package is optional for model-only users.
    if name in ("simulate_many", "simulate_trial"):
        from . import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
