"""Declarative scenario and study specifications.

A :class:`ScenarioSpec` is one bar of a figure as *data*: which system,
which technique (or the interval-based optimizer), the model/sweep/
simulation options, the named failure process, the trial count and the
seed policy.  A :class:`StudySpec` is an ordered set of scenarios plus
presentation directives — the single currency between the optimizer, the
:mod:`repro.exec` scheduler/cache and reporting.

Every built-in experiment (``figure2`` .. ``interval_study``) is now a
function returning a :class:`StudySpec`; user-defined studies are JSON
files loaded with :meth:`StudySpec.from_dict`, which also supports a
cross-product shorthand (``"systems" x "techniques"``) so a sweep is a
few lines of JSON rather than a Python module.  Both forms run through
the same pipeline (:mod:`repro.scenarios.pipeline`).

Seed policies
-------------
``pair``
    The per-(system, technique) derived stream used by Figures 2-5:
    ``crc32(f"{seed}/{system}/{technique}")`` — different techniques
    never share failure sequences (see :func:`repro.experiments.runner.
    pair_seed`).
``fixed``
    The study's base seed is passed to the simulator unchanged — the
    convention of the ablation/Weibull/interval studies, where *sharing*
    the failure stream across variants is the point.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..failures.registry import FailureSpec
from ..models import TECHNIQUES
from ..systems.spec import SystemSpec

__all__ = ["ScenarioSpec", "StudySpec"]

_OPTIMIZERS = ("pattern", "interval")
_SEED_POLICIES = ("pair", "fixed")

#: Keys accepted in a scenario dict (used for typo rejection).
_SCENARIO_FIELDS = (
    "system",
    "technique",
    "optimizer",
    "objective",
    "model_options",
    "sweep_options",
    "simulate",
    "failure",
    "silent_errors",
    "regime",
    "adaptive",
    "trials",
    "seed_policy",
    "label",
    "tags",
)

_STUDY_FIELDS = (
    "study",
    "title",
    "caption",
    "seed",
    "trials",
    "notes",
    "scenarios",
    "systems",
    "techniques",
    # shared per-scenario defaults for the cross-product shorthand:
    "failure",
    "simulate",
    "model_options",
    "sweep_options",
    "seed_policy",
    "objective",
    "silent_errors",
    "regime",
    "adaptive",
)


def _resolve_system(value: Any) -> SystemSpec:
    """A system is a Table-I name, a spec dict, or an existing spec."""
    if isinstance(value, SystemSpec):
        return value
    if isinstance(value, str):
        from ..systems import get_system  # late import: catalog -> spec cycle

        return get_system(value)
    return SystemSpec.from_dict(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """One independently executable experiment unit, as data.

    Parameters
    ----------
    system:
        The :class:`~repro.systems.spec.SystemSpec` under test.
    technique:
        Registry name of the optimizing model (``repro.models.TECHNIQUES``).
        Ignored (forced to ``"interval"``) when ``optimizer`` is
        ``"interval"``.
    optimizer:
        ``"pattern"`` (the paper's pattern-based plans, default) or
        ``"interval"`` (the Di-style per-level-period extension).
    objective:
        What the optimizer minimizes: ``"time"`` (the paper's expected
        completion time, default) or ``"availability"`` (maximize the
        steady-state useful-work fraction).  Validated against the
        :data:`repro.core.interfaces.OBJECTIVES` registry.
    model_options / sweep_options:
        Keyword arguments for the model constructor / the Section III-C
        sweep, exactly as :func:`repro.experiments.runner.optimize_technique`
        takes them.
    simulate:
        Extra keyword arguments for the simulator (``restart_semantics``,
        ``recheckpoint``, ``checkpoint_at_completion``, ``max_time``,
        ``engine``).  ``checkpoint_at_completion`` defaults to the
        technique's registered end-checkpoint behavior when not given;
        ``engine`` (``"auto"``/``"scalar"``/``"batch"``) pins the trial
        engine for this scenario and is validated here so a typo fails at
        load time rather than mid-run.
    failure:
        A :class:`~repro.failures.registry.FailureSpec`; the default is
        the paper's exponential process.
    silent_errors:
        A :class:`~repro.core.silent.SilentErrorSpec` (or its mapping
        form, or ``None``): overlays a silent-error process on both the
        model (verification cost, detection-latency pricing) and the
        simulator (corrupted checkpoints detected late force deeper
        restarts).  ``None`` — the default — reproduces the paper's
        fail-stop-only setting byte for byte.
    regime:
        A :class:`~repro.systems.regime.RegimeSchedule` (or its mapping
        form, or ``None``): a piecewise-stationary elastic schedule for
        the system — per-segment MTBF scale, checkpoint/restart cost
        scales and node-count scale.  ``None`` — the default — keeps the
        stationary paper setting and every existing study hash
        byte-identical.  A schedule requires the default exponential
        failure process (the regime source *is* the failure process).
    adaptive:
        An :class:`~repro.simulator.AdaptiveSpec` (or its mapping form,
        or ``True`` for the defaults, or ``None``): turns the scenario
        into an adaptive-replanning comparison — static vs CUSUM-driven
        adaptive vs schedule-aware oracle over identical drifting
        streams.  Requires ``regime``; incompatible with the interval
        optimizer and silent errors.
    trials:
        Simulation trials for this scenario.
    seed_policy:
        ``"pair"`` or ``"fixed"`` — see the module docstring.
    label:
        Identifier used in progress/error reports and the run manifest;
        defaults to ``"<system>/<technique>"``.
    tags:
        Free-form key/value pairs carried verbatim into result rows —
        how figure modules attach presentation columns (study names,
        Weibull shapes, modes) without touching the pipeline.
    """

    system: SystemSpec
    technique: str = "dauwe"
    optimizer: str = "pattern"
    objective: str = "time"
    model_options: Mapping[str, Any] = field(default_factory=dict)
    sweep_options: Mapping[str, Any] = field(default_factory=dict)
    simulate: Mapping[str, Any] = field(default_factory=dict)
    failure: FailureSpec = field(default_factory=FailureSpec)
    silent_errors: Any = None
    regime: Any = None
    adaptive: Any = None
    trials: int = 100
    seed_policy: str = "pair"
    label: str = ""
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "model_options", dict(self.model_options))
        object.__setattr__(self, "sweep_options", dict(self.sweep_options))
        object.__setattr__(self, "simulate", dict(self.simulate))
        object.__setattr__(self, "tags", dict(self.tags))
        if not isinstance(self.system, SystemSpec):
            raise ValueError(
                f"system must be a SystemSpec, got {type(self.system).__name__}"
            )
        if self.optimizer not in _OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {_OPTIMIZERS}, got {self.optimizer!r}"
            )
        if self.optimizer == "interval":
            object.__setattr__(self, "technique", "interval")
        else:
            object.__setattr__(self, "technique", self.technique.lower())
            if self.technique not in TECHNIQUES:
                known = ", ".join(TECHNIQUES)
                raise ValueError(
                    f"unknown technique {self.technique!r}; known: {known}"
                )
        if self.seed_policy not in _SEED_POLICIES:
            raise ValueError(
                f"seed_policy must be one of {_SEED_POLICIES}, got {self.seed_policy!r}"
            )
        if not isinstance(self.trials, int) or self.trials < 1:
            raise ValueError(f"trials must be a positive int, got {self.trials!r}")
        if not isinstance(self.failure, FailureSpec):
            raise ValueError(
                f"failure must be a FailureSpec, got {type(self.failure).__name__}"
            )
        from ..core.interfaces import get_objective  # late: avoid cycle

        object.__setattr__(self, "objective", get_objective(self.objective).name)
        from ..core.silent import SilentErrorSpec

        object.__setattr__(
            self, "silent_errors", SilentErrorSpec.resolve(self.silent_errors)
        )
        from ..systems.regime import RegimeSchedule

        object.__setattr__(self, "regime", RegimeSchedule.resolve(self.regime))
        from ..simulator.adaptive import AdaptiveSpec

        object.__setattr__(self, "adaptive", AdaptiveSpec.resolve(self.adaptive))
        if self.regime is not None:
            if not self.failure.is_default:
                raise ValueError(
                    "a regime schedule requires the default exponential "
                    "failure process (the piecewise-exponential regime "
                    f"source is the failure process), got kind "
                    f"{self.failure.kind!r}"
                )
            if self.optimizer == "interval":
                raise ValueError(
                    "regime schedules are not supported by the interval "
                    "optimizer (pattern plans only)"
                )
        if self.adaptive is not None:
            if self.regime is None:
                raise ValueError(
                    "adaptive replanning requires a 'regime' schedule "
                    "(with nothing drifting there is nothing to adapt to)"
                )
            if self.silent_errors is not None:
                raise ValueError(
                    "adaptive replanning does not support silent errors yet"
                )
            if self.objective != "time":
                raise ValueError(
                    "adaptive replanning optimizes expected completion time "
                    f"only, got objective {self.objective!r}"
                )
            bad = set(self.simulate) - {"max_time"}
            if bad or self.sweep_options:
                raise ValueError(
                    "adaptive scenarios accept only simulate.max_time and no "
                    f"sweep_options (the three-policy walker owns the loop); "
                    f"got simulate keys {sorted(bad)} and "
                    f"sweep_options {sorted(self.sweep_options)}"
                )
        engine = self.simulate.get("engine")
        if engine is not None:
            from ..simulator.run import ENGINES  # late: avoid import cycle

            if engine not in ENGINES:
                raise ValueError(
                    f"simulate.engine must be one of {ENGINES}, got {engine!r}"
                )
        if not self.label:
            object.__setattr__(self, "label", f"{self.system.name}/{self.technique}")

    # ------------------------------------------------------------------
    def with_trials(self, trials: int) -> "ScenarioSpec":
        return replace(self, trials=int(trials))

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (full system spec inline, defaults included).

        ``objective``/``silent_errors`` appear only when non-default, so
        every pre-existing study keeps its ``study_hash`` (and its cached
        results) unchanged.
        """
        out: dict[str, Any] = {
            "system": self.system.to_dict(),
            "technique": self.technique,
            "optimizer": self.optimizer,
            "model_options": dict(self.model_options),
            "sweep_options": dict(self.sweep_options),
            "simulate": dict(self.simulate),
            "failure": self.failure.to_dict(),
            "trials": self.trials,
            "seed_policy": self.seed_policy,
            "label": self.label,
            "tags": dict(self.tags),
        }
        if self.objective != "time":
            out["objective"] = self.objective
        if self.silent_errors is not None:
            out["silent_errors"] = self.silent_errors.to_dict()
        if self.regime is not None:
            out["regime"] = self.regime.to_dict()
        if self.adaptive is not None:
            out["adaptive"] = self.adaptive.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"scenario must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(_SCENARIO_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"known fields: {list(_SCENARIO_FIELDS)}"
            )
        if "system" not in data:
            raise ValueError("scenario is missing required field 'system'")
        kwargs: dict[str, Any] = {"system": _resolve_system(data["system"])}
        for key in ("technique", "optimizer", "objective", "model_options",
                    "sweep_options", "simulate", "silent_errors",
                    "regime", "adaptive", "seed_policy", "label", "tags"):
            if key in data:
                kwargs[key] = data[key]
        if "trials" in data:
            kwargs["trials"] = int(data["trials"])
        if "failure" in data:
            kwargs["failure"] = FailureSpec.from_dict(data["failure"])
        return cls(**kwargs)


@dataclass(frozen=True)
class StudySpec:
    """An ordered set of scenarios plus aggregation/reporting directives."""

    study_id: str
    scenarios: tuple[ScenarioSpec, ...]
    title: str = ""
    caption: str = ""
    seed: int = 0
    notes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "notes", tuple(self.notes))
        if not self.study_id:
            raise ValueError("study_id must be non-empty")
        if not self.scenarios:
            raise ValueError(f"study {self.study_id!r} has no scenarios")
        if any(not isinstance(s, ScenarioSpec) for s in self.scenarios):
            raise ValueError("scenarios must all be ScenarioSpec instances")

    # ------------------------------------------------------------------
    @property
    def techniques(self) -> tuple[str, ...]:
        """Distinct techniques in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.scenarios:
            seen.setdefault(s.technique)
        return tuple(seen)

    def with_techniques(self, techniques: Sequence[str]) -> "StudySpec":
        """Restrict to scenarios whose technique is in ``techniques``.

        This is the CLI's ``--techniques`` override; asking for a
        technique the study never uses is an error rather than an empty
        (and silently wrong) run.
        """
        wanted = tuple(t.lower() for t in techniques)
        missing = set(wanted) - set(self.techniques)
        if missing:
            raise ValueError(
                f"study {self.study_id!r} has no scenarios for technique(s) "
                f"{sorted(missing)}; it uses: {list(self.techniques)}"
            )
        kept = tuple(s for s in self.scenarios if s.technique in wanted)
        return replace(self, scenarios=kept)

    def with_trials(self, trials: int) -> "StudySpec":
        """Every scenario re-pinned to ``trials`` (the CLI's --trials/--quick)."""
        return replace(
            self, scenarios=tuple(s.with_trials(trials) for s in self.scenarios)
        )

    def with_seed(self, seed: int) -> "StudySpec":
        return replace(self, seed=int(seed))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "study": self.study_id,
            "title": self.title,
            "caption": self.caption,
            "seed": self.seed,
            "notes": list(self.notes),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def study_hash(self) -> str:
        """Content hash of the canonical study JSON (reproducibility key).

        Stable across dump/load round-trips and across how the study was
        authored (name-referenced vs inline systems, shorthand vs
        explicit scenarios), because it hashes the fully resolved form.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        """Load a study from its dict/JSON form.

        Two authoring styles are accepted:

        * explicit — a ``"scenarios"`` list of scenario dicts;
        * cross-product shorthand — ``"systems"`` (names or inline spec
          dicts) times ``"techniques"``, sharing the study-level
          ``failure`` / ``simulate`` / ``model_options`` /
          ``sweep_options`` / ``seed_policy`` settings.

        A study-level ``"trials"`` fills in any scenario that does not
        set its own.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"study must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(_STUDY_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown study field(s) {sorted(unknown)}; "
                f"known fields: {list(_STUDY_FIELDS)}"
            )
        if "study" not in data:
            raise ValueError("study is missing required field 'study' (its id)")
        default_trials = data.get("trials")

        scenarios: list[ScenarioSpec] = []
        if "scenarios" in data:
            if "systems" in data or "techniques" in data:
                raise ValueError(
                    "give either an explicit 'scenarios' list or the "
                    "'systems' x 'techniques' shorthand, not both"
                )
            for i, sdata in enumerate(data["scenarios"]):
                sdata = dict(sdata)
                if "trials" not in sdata:
                    if default_trials is None:
                        raise ValueError(
                            f"scenario #{i} sets no 'trials' and the study "
                            "has no default"
                        )
                    sdata["trials"] = int(default_trials)
                scenarios.append(ScenarioSpec.from_dict(sdata))
        else:
            if "systems" not in data:
                raise ValueError("study needs 'scenarios' or 'systems'")
            if default_trials is None:
                raise ValueError("the 'systems' shorthand requires a study-level 'trials'")
            techniques = data.get("techniques", ["dauwe"])
            shared = {
                key: data[key]
                for key in ("failure", "simulate", "model_options",
                            "sweep_options", "seed_policy", "objective",
                            "silent_errors", "regime", "adaptive")
                if key in data
            }
            for sysval in data["systems"]:
                system = _resolve_system(sysval)
                for tech in techniques:
                    sdata = dict(
                        shared, system=system, technique=tech,
                        trials=int(default_trials),
                    )
                    scenarios.append(ScenarioSpec.from_dict(sdata))
        return cls(
            study_id=str(data["study"]),
            scenarios=tuple(scenarios),
            title=str(data.get("title", "")),
            caption=str(data.get("caption", "")),
            seed=int(data.get("seed", 0)),
            notes=tuple(data.get("notes", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "StudySpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as err:
            raise ValueError(f"cannot read study file {path}: {err}") from err
        try:
            return cls.from_json(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"study file {path} is not valid JSON: {err}") from err
