"""Run manifests: every study execution leaves a machine-readable record.

A :class:`StudyRunRecord` captures what one study execution actually did
— the study's content hash, the per-scenario derived seeds and trial
counts, the optimization-cache hit/miss deltas and the per-stage
wall-clock from :mod:`repro.exec.metrics`.  A :class:`RunManifest`
aggregates the records of one CLI invocation together with the runtime
knobs and package versions, and is written as JSON next to the Markdown
report (or wherever ``--manifest`` points), so a results table is always
accompanied by the exact recipe that produced it.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["RunManifest", "StudyRunRecord", "package_versions"]

#: Manifest format version; bump on incompatible schema changes.
MANIFEST_VERSION = 1


def package_versions() -> dict[str, str]:
    """Versions of everything that can change a number in the tables."""
    import numpy

    from .. import __version__ as repro_version

    return {
        "repro": repro_version,
        "numpy": numpy.__version__,
        "python": platform.python_version(),
    }


@dataclass
class StudyRunRecord:
    """What one study execution did; the per-study manifest fragment.

    ``scenarios`` holds one entry per scenario, in execution order:
    ``{"label", "system", "technique", "trials", "seed"}`` where ``seed``
    is the *derived* simulation seed actually passed to the simulator
    (after the scenario's seed policy was applied to the study's base
    seed).  ``stages`` maps stage name to ``{"seconds", "count"}`` and
    ``cache`` carries the optimization-cache counter deltas for exactly
    this execution.  ``resilience`` records the fault-tolerance story of
    the execution: how many scenarios were resumed from a journal versus
    executed fresh, the journal path, and every retry / pool-rebuild /
    serial-fallback event the scheduler logged.  ``numerics`` aggregates
    the numerics-guard event counts (``"site:kind" -> count``) the
    models recorded while optimizing this study's scenarios — an empty
    block means every sweep stayed inside the models' comfortable
    regime.  ``adaptive`` aggregates the study's adaptive-replanning
    scenarios (replans, detection latency, regret, wins) — emitted only
    when the study had any, so pre-regime manifests keep their exact
    bytes.
    """

    study: str
    study_hash: str
    seed: int
    scenarios: list[dict[str, Any]] = field(default_factory=list)
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    cache: dict[str, int] = field(default_factory=dict)
    resilience: dict[str, Any] = field(default_factory=dict)
    numerics: dict[str, int] = field(default_factory=dict)
    adaptive: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out = {
            "study": self.study,
            "study_hash": self.study_hash,
            "seed": self.seed,
            "scenarios": list(self.scenarios),
            "stages": dict(self.stages),
            "cache": dict(self.cache),
            "resilience": dict(self.resilience),
            "numerics": dict(self.numerics),
        }
        if self.adaptive:
            out["adaptive"] = dict(self.adaptive)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StudyRunRecord":
        return cls(
            study=data["study"],
            study_hash=data["study_hash"],
            seed=int(data["seed"]),
            scenarios=list(data.get("scenarios", [])),
            stages=dict(data.get("stages", {})),
            cache=dict(data.get("cache", {})),
            resilience=dict(data.get("resilience", {})),
            numerics={
                str(k): int(v) for k, v in dict(data.get("numerics", {})).items()
            },
            adaptive=dict(data.get("adaptive", {})),
        )


@dataclass
class RunManifest:
    """One CLI invocation's reproducibility record (JSON-serializable).

    ``status`` is ``"complete"`` for a run that finished every requested
    experiment and ``"aborted"`` otherwise (Ctrl-C, exhausted retries);
    an aborted manifest still carries the records of everything that
    *did* complete plus an ``error`` summary, so failed runs are
    diagnosable from their artifacts alone.
    """

    studies: list[StudyRunRecord] = field(default_factory=list)
    workers: int = 1
    sim_workers: int = 1
    created: str = ""
    status: str = "complete"
    error: str = ""
    versions: dict[str, str] = field(default_factory=package_versions)

    def __post_init__(self) -> None:
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S")

    def add(self, record: StudyRunRecord | dict[str, Any] | None) -> None:
        """Append a study record (dict form is accepted; ``None`` ignored)."""
        if record is None:
            return
        if isinstance(record, dict):
            record = StudyRunRecord.from_dict(record)
        self.studies.append(record)

    def to_dict(self) -> dict[str, Any]:
        out = {
            "manifest_version": MANIFEST_VERSION,
            "created": self.created,
            "status": self.status,
            "workers": self.workers,
            "sim_workers": self.sim_workers,
            "versions": dict(self.versions),
            "studies": [s.to_dict() for s in self.studies],
        }
        if self.error:
            out["error"] = self.error
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Write the manifest atomically (temp file + rename).

        An interrupt arriving mid-write must never leave a torn manifest
        next to the report — same contract as the cache and the journal.
        """
        from ..exec.resilience import atomic_write_text

        return atomic_write_text(Path(path), self.to_json() + "\n")
