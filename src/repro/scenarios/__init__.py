"""Declarative scenario layer: studies as data, one execution pipeline.

The package turns the repository's combinatorial experimental surface —
(system x technique x failure model x T_B x trials) — into serializable
specifications executed by a single shared pipeline:

* :class:`ScenarioSpec` — one figure bar as data (system, technique or
  interval optimizer, model/sweep/simulate options, named failure
  process, trials, seed policy, presentation tags);
* :class:`StudySpec` — an ordered set of scenarios plus reporting
  directives, with lossless JSON (de)serialization, a cross-product
  authoring shorthand, and a content hash;
* :func:`execute_study` — fans a study's scenarios across the
  :mod:`repro.exec` scheduler/cache and returns outcomes in scenario
  order plus a :class:`StudyRunRecord`;
* :class:`RunManifest` — the per-invocation reproducibility artifact
  (study hashes, derived seeds, cache stats, stage wall-clock, package
  versions) the CLI writes next to the Markdown report.

Every built-in experiment module is now a thin spec builder + row
post-processor on top of this package, and ``python -m repro custom
--study my_study.json`` runs user-authored studies through the same
machinery.  See README.md "Define your own scenario".
"""

from .manifest import RunManifest, StudyRunRecord, package_versions
from .pipeline import StudyRun, execute_study, generic_result, scenario_seed
from .spec import ScenarioSpec, StudySpec

__all__ = [
    "RunManifest",
    "ScenarioSpec",
    "StudyRun",
    "StudyRunRecord",
    "StudySpec",
    "execute_study",
    "generic_result",
    "package_versions",
    "scenario_seed",
]
