"""The one shared execution pipeline for declarative studies.

Every study — built-in figure or user-authored JSON — runs through
:func:`execute_study`: scenarios are fanned across the
:mod:`repro.exec` scheduler (order-stable, cache-aware), each scenario
executes its two stages (the technique's own optimization, then the
Monte-Carlo measurement), and the call returns the per-scenario
:class:`~repro.experiments.records.TechniqueOutcome` list *plus* a
:class:`~repro.scenarios.manifest.StudyRunRecord` describing exactly
what ran (derived seeds, trial counts, cache and stage deltas).

The pipeline reproduces the pre-refactor modules bit for bit: the
``pair`` seed policy goes through the exact
:func:`~repro.experiments.runner.measure_technique` path Figures 2-5
always used, the ``fixed`` policy mirrors the ablation/Weibull/interval
studies' direct ``simulate_many`` calls, and failure sources are rebuilt
inside worker processes from their :class:`~repro.failures.registry.
FailureSpec` just as the Weibull study rebuilt its closures.
Equality is asserted by ``tests/test_scenarios_regression.py``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from ..exec import (
    OptimizationCache,
    RetryPolicy,
    RunJournal,
    ScenarioTask,
    StudyExecutionError,
    StudyInterrupted,
    get_active_cache,
    record_stage,
    resolve_sim_workers,
    run_scenarios,
    set_active_cache,
    stage_delta,
    stage_snapshot,
)
from ..exec.cache import CacheStats
from ..exec.resilience import JournalMismatchError
from ..models import TECHNIQUES
from .manifest import StudyRunRecord
from .spec import ScenarioSpec, StudySpec

if TYPE_CHECKING:  # runtime import would cycle: experiments imports scenarios
    from ..experiments.records import ExperimentResult, TechniqueOutcome

__all__ = [
    "StudyRun",
    "aggregate_adaptive",
    "execute_study",
    "generic_result",
    "scenario_seed",
]

#: Accepted ``resume`` arguments of :func:`execute_study` (bools are
#: aliases: ``True`` -> ``"auto"``, ``False`` -> ``"never"``).
_RESUME_MODES = ("auto", "require", "never")


def scenario_seed(scenario: ScenarioSpec, base_seed: int | None) -> int | None:
    """The simulation seed a scenario derives from the study's base seed."""
    from ..experiments.runner import pair_seed

    if scenario.seed_policy == "pair":
        return pair_seed(base_seed, scenario.system.name, scenario.technique)
    return base_seed


def _source_factory(scenario: ScenarioSpec):
    """The scenario's per-trial failure-source builder (``None`` = default).

    A regime schedule *replaces* the failure process outright — spec
    validation already pinned ``failure`` to the default exponential
    kind, whose piecewise generalization the regime source is.
    """
    if scenario.regime is not None:
        from ..failures.registry import RegimeSourceFactory

        return RegimeSourceFactory.for_system(scenario.system, scenario.regime)
    return scenario.failure.source_factory(scenario.system)


def _execute_scenario(
    scenario: ScenarioSpec, base_seed: int | None, sim_workers: int
) -> TechniqueOutcome:
    """Run one scenario's optimize + measure stages (module-level: picklable)."""
    if scenario.optimizer == "interval":
        return _execute_interval(scenario, base_seed)
    if scenario.adaptive is not None:
        return _execute_adaptive(scenario, base_seed)

    from ..experiments.records import TechniqueOutcome
    from ..experiments.runner import measure_technique, optimize_technique
    from ..simulator import simulate_many

    # objective/silent_errors thread through as plain option entries so
    # the optimization cache key (JSON of the options) changes exactly
    # when they are non-default and default runs keep their cached plans.
    model_options = dict(scenario.model_options)
    sweep_options = dict(scenario.sweep_options)
    if scenario.silent_errors is not None:
        model_options["silent_errors"] = scenario.silent_errors.to_dict()
    if scenario.objective != "time":
        sweep_options["objective"] = scenario.objective
    opt = optimize_technique(
        scenario.system,
        scenario.technique,
        model_options=model_options,
        sweep_options=sweep_options,
    )
    simulate = dict(scenario.simulate)
    factory = _source_factory(scenario)
    if factory is not None:
        simulate["source_factory"] = factory
    if scenario.silent_errors is not None:
        simulate["silent_errors"] = scenario.silent_errors
    if scenario.seed_policy == "pair":
        # The exact Figures 2-5 path, per-pair derived failure streams.
        return measure_technique(
            scenario.system, scenario.technique, opt, scenario.trials,
            seed=base_seed, workers=sim_workers, **simulate,
        )
    # Fixed policy: the base seed reaches the simulator unchanged, so
    # variants of one study share failure streams (ablations, Weibull).
    simulate.setdefault(
        "checkpoint_at_completion",
        TECHNIQUES[scenario.technique].takes_scheduled_end_checkpoint,
    )
    start = time.perf_counter()
    stats = simulate_many(
        scenario.system, opt.plan, trials=scenario.trials, seed=base_seed,
        workers=sim_workers, **simulate,
    )
    record_stage("simulate", time.perf_counter() - start)
    return TechniqueOutcome(
        system=scenario.system.name,
        technique=scenario.technique,
        plan=opt.plan.describe(),
        predicted_efficiency=opt.predicted_efficiency,
        simulated_efficiency=stats.mean_efficiency,
        simulated_std=stats.std_efficiency,
        trials=scenario.trials,
        predicted_time=opt.predicted_time,
        mean_time=stats.mean_total_time,
        completed_fraction=stats.completed_fraction,
        breakdown_fractions=stats.mean_breakdown.fractions(),
        mean_failures=stats.mean_failures,
    )


def _execute_interval(
    scenario: ScenarioSpec, base_seed: int | None
) -> TechniqueOutcome:
    """Interval-optimizer scenarios: Di-style per-level periods (extension).

    The interval schedule is not a pattern plan, so its optimization is
    timed but not cached — exactly the pre-refactor interval study.
    """
    from ..experiments.records import TechniqueOutcome
    from ..interval import IntervalModel, simulate_schedule_many

    if not scenario.failure.is_default:
        raise ValueError(
            "interval-optimizer scenarios support only the exponential "
            f"failure process, got kind {scenario.failure.kind!r}"
        )
    if scenario.objective != "time" or scenario.silent_errors is not None:
        raise ValueError(
            "interval-optimizer scenarios support only objective='time' "
            "without silent errors (the per-level-period schedule has no "
            "availability/silent-error formulation yet)"
        )
    start = time.perf_counter()
    itv = IntervalModel(scenario.system, **scenario.model_options).optimize(
        **scenario.sweep_options
    )
    record_stage("optimize", time.perf_counter() - start)
    start = time.perf_counter()
    stats = simulate_schedule_many(
        scenario.system, itv.schedule, trials=scenario.trials,
        seed=scenario_seed(scenario, base_seed), **scenario.simulate,
    )
    record_stage("simulate", time.perf_counter() - start)
    return TechniqueOutcome(
        system=scenario.system.name,
        technique="interval",
        plan=itv.schedule.describe(),
        predicted_efficiency=itv.predicted_efficiency,
        simulated_efficiency=stats.mean_efficiency,
        simulated_std=stats.std_efficiency,
        trials=scenario.trials,
        predicted_time=itv.predicted_time,
        mean_time=stats.mean_total_time,
        completed_fraction=stats.completed_fraction,
        breakdown_fractions=stats.mean_breakdown.fractions(),
        mean_failures=stats.mean_failures,
    )


def _execute_adaptive(
    scenario: ScenarioSpec, base_seed: int | None
) -> TechniqueOutcome:
    """Adaptive-replanning scenarios: static vs adaptive vs oracle.

    The measurement is the three-policy comparison of
    :func:`repro.simulator.compare_adaptive` — per trial, all three
    walkers face bitwise-identical drifting failure streams, so the
    outcome's ``adaptive`` block isolates planning policy.  The outcome
    rows keep the single-policy vocabulary (the *adaptive* walker's
    makespan/efficiency), with the regime-aware carryover-priced
    ``plan_regimes`` makespan as the prediction.
    """
    from ..experiments.records import TechniqueOutcome
    from ..simulator.adaptive import compare_adaptive

    start = time.perf_counter()
    comparison = compare_adaptive(
        scenario.system,
        scenario.regime,
        spec=scenario.adaptive,
        trials=scenario.trials,
        seed=scenario_seed(scenario, base_seed),
        model_factory=TECHNIQUES[scenario.technique],
        model_options=scenario.model_options,
        max_time=scenario.simulate.get("max_time"),
    )
    record_stage("simulate", time.perf_counter() - start)
    T_B = scenario.system.baseline_time
    effs = [T_B / t for t in comparison.per_trial_adaptive]
    mean_eff = sum(effs) / len(effs)
    std_eff = (sum((e - mean_eff) ** 2 for e in effs) / len(effs)) ** 0.5
    pred = comparison.predicted_makespan
    return TechniqueOutcome(
        system=scenario.system.name,
        technique=scenario.technique,
        plan=comparison.static_plan,
        predicted_efficiency=T_B / pred if pred > 0 else 0.0,
        simulated_efficiency=mean_eff,
        simulated_std=std_eff,
        trials=scenario.trials,
        predicted_time=pred,
        mean_time=comparison.adaptive_mean,
        completed_fraction=comparison.completed_fraction,
        breakdown_fractions=dict(comparison.breakdown_fractions),
        mean_failures=comparison.mean_failures,
        adaptive=comparison.to_dict(),
    )


#: ``simulate`` option keys the packed fast path understands.  Anything
#: else (an explicit ``workers`` request, exotic options) defers that
#: scenario to the normal per-scenario path.
_PACK_SIM_KEYS = frozenset(
    (
        "restart_semantics",
        "recheckpoint",
        "checkpoint_at_completion",
        "max_time",
        "engine",
    )
)


def _packable(scenario: ScenarioSpec) -> bool:
    """Whether a scenario can join the packed lockstep universe."""
    if scenario.optimizer != "pattern":
        return False
    if scenario.adaptive is not None:
        # The three-policy replanning walker is scalar control flow —
        # there is no packed formulation to join.
        return False
    if any(key not in _PACK_SIM_KEYS for key in scenario.simulate):
        return False
    if scenario.simulate.get("engine") == "scalar":
        return False
    factory = _source_factory(scenario)
    return (
        factory is None
        or getattr(factory, "batch_stream", None) is not None
    )


def _simulate_scenarios_packed(
    study: StudySpec, indices: list[int]
) -> list[tuple[int, TechniqueOutcome]]:
    """Optimize each scenario, then measure all of them in **one** packed
    struct-of-arrays universe (:func:`repro.simulator.simulate_packed`).

    Small scenarios no longer pay one full lockstep loop each: trials
    from every scenario advance through the same tensorized iteration.
    Outcomes are bitwise identical to the per-scenario path — the packed
    engine's per-trial gathers reproduce each scenario's exact float ops
    and the optimize stage goes through the same cached
    :func:`~repro.experiments.runner.optimize_technique` — asserted by
    ``tests/test_batch_engine.py`` and ``tests/test_scenarios.py``.
    """
    from ..experiments.records import TechniqueOutcome
    from ..experiments.runner import optimize_technique
    from ..simulator import SimulationStats, trial_seeds
    from ..simulator.batch import BatchRequest, simulate_packed

    requests: list[BatchRequest] = []
    meta = []
    for i in indices:
        s = study.scenarios[i]
        model_options = dict(s.model_options)
        sweep_options = dict(s.sweep_options)
        if s.silent_errors is not None:
            model_options["silent_errors"] = s.silent_errors.to_dict()
        if s.objective != "time":
            sweep_options["objective"] = s.objective
        opt = optimize_technique(
            s.system,
            s.technique,
            model_options=model_options,
            sweep_options=sweep_options,
        )
        simulate = dict(s.simulate)
        simulate.pop("engine", None)
        factory = _source_factory(s)
        requests.append(
            BatchRequest(
                system=s.system,
                plan=opt.plan,
                seed_seqs=trial_seeds(scenario_seed(s, study.seed), s.trials),
                max_time=simulate.pop("max_time", None),
                restart_semantics=simulate.pop("restart_semantics", "retry"),
                checkpoint_at_completion=simulate.pop(
                    "checkpoint_at_completion",
                    TECHNIQUES[s.technique].takes_scheduled_end_checkpoint,
                ),
                recheckpoint=simulate.pop("recheckpoint", "free"),
                silent_errors=s.silent_errors,
                stream=None if factory is None else factory.batch_stream,
            )
        )
        meta.append((i, s, opt))

    start = time.perf_counter()
    packed = simulate_packed(requests)
    record_stage("simulate", time.perf_counter() - start)

    out: list[tuple[int, TechniqueOutcome]] = []
    for (i, s, opt), results in zip(meta, packed):
        stats = SimulationStats.from_trials(results)
        extra = {}
        if s.seed_policy == "pair":
            # measure_technique records the optimizer's numerics
            # certificate; the fixed-policy path never did.
            extra["numerics"] = (
                dict(opt.certificate.events)
                if opt.certificate is not None
                else {}
            )
        out.append(
            (
                i,
                TechniqueOutcome(
                    system=s.system.name,
                    technique=s.technique,
                    plan=opt.plan.describe(),
                    predicted_efficiency=opt.predicted_efficiency,
                    simulated_efficiency=stats.mean_efficiency,
                    simulated_std=stats.std_efficiency,
                    trials=s.trials,
                    predicted_time=opt.predicted_time,
                    mean_time=stats.mean_total_time,
                    completed_fraction=stats.completed_fraction,
                    breakdown_fractions=stats.mean_breakdown.fractions(),
                    mean_failures=stats.mean_failures,
                    **extra,
                ),
            )
        )
    return out


@dataclass
class StudyRun:
    """A study execution: outcomes in scenario order + its manifest record."""

    study: StudySpec
    outcomes: list[TechniqueOutcome]
    record: StudyRunRecord


def _build_record(
    study: StudySpec,
    stages: dict,
    cache_d: CacheStats,
    resilience: dict[str, Any],
    numerics: dict[str, int] | None = None,
    adaptive: dict[str, Any] | None = None,
) -> StudyRunRecord:
    """Assemble the per-study manifest record (complete or partial run)."""
    return StudyRunRecord(
        study=study.study_id,
        study_hash=study.study_hash(),
        seed=study.seed,
        scenarios=[
            {
                "label": s.label,
                "system": s.system.name,
                "technique": s.technique,
                "trials": s.trials,
                "seed": scenario_seed(s, study.seed),
                # non-default objective/failure-mode/regime blocks are
                # recorded so a manifest says what was optimized; absent =
                # the paper's stationary time objective without silent
                # errors (keeps old manifests byte-identical).
                **({"objective": s.objective} if s.objective != "time" else {}),
                **(
                    {"silent_errors": s.silent_errors.to_dict()}
                    if s.silent_errors is not None
                    else {}
                ),
                **({"regime": s.regime.to_dict()} if s.regime is not None else {}),
                **(
                    {"adaptive": s.adaptive.to_dict()}
                    if s.adaptive is not None
                    else {}
                ),
            }
            for s in study.scenarios
        ],
        stages={
            name: {"seconds": round(total, 6), "count": count}
            for name, (total, count) in sorted(stages.items())
        },
        cache={
            "hits": cache_d.hits,
            "misses": cache_d.misses,
            "disk_hits": cache_d.disk_hits,
            "stores": cache_d.stores,
        },
        resilience=resilience,
        numerics=dict(numerics or {}),
        adaptive=dict(adaptive or {}),
    )


def aggregate_numerics(outcomes: Iterable[TechniqueOutcome]) -> dict[str, int]:
    """Sum per-outcome numerics-guard event counts into one sorted block."""
    totals: dict[str, int] = {}
    for outcome in outcomes:
        for key, count in outcome.numerics.items():
            totals[key] = totals.get(key, 0) + int(count)
    return dict(sorted(totals.items()))


def aggregate_adaptive(outcomes: Iterable[TechniqueOutcome]) -> dict[str, Any]:
    """Fold per-outcome adaptive-comparison blocks into one summary.

    Empty (so the manifest omits the block entirely) when the study had
    no adaptive scenarios.  ``wins`` counts scenarios where the adaptive
    walker's mean makespan beat-or-matched the static plan's — the
    stress-validation invariant, surfaced here and in ``GET /health`` so
    a drifting deployment can see its replanner working.
    """
    blocks = [dict(o.adaptive) for o in outcomes if o.adaptive]
    if not blocks:
        return {}
    latencies = [
        b["mean_detection_latency"]
        for b in blocks
        if b.get("mean_detection_latency") is not None
    ]
    n = len(blocks)
    return {
        "scenarios": n,
        "wins": sum(bool(b.get("adaptive_wins")) for b in blocks),
        "mean_replans": sum(b.get("mean_replans", 0.0) for b in blocks) / n,
        "mean_improvement": sum(b.get("improvement", 0.0) for b in blocks) / n,
        "mean_regret": sum(b.get("mean_regret", 0.0) for b in blocks) / n,
        "mean_detection_latency": (
            sum(latencies) / len(latencies) if latencies else None
        ),
    }


def execute_study(
    study: StudySpec,
    workers: int = 1,
    sim_workers: int = 1,
    journal: str | Path | RunJournal | None = None,
    resume: bool | str = "auto",
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
) -> StudyRun:
    """Execute every scenario of ``study`` through the shared scheduler.

    ``workers`` fans scenarios over the process pool; ``sim_workers``
    parallelizes trials within each scenario and only applies when
    ``workers <= 1`` (a dropped request warns once, see
    :func:`repro.exec.resolve_sim_workers`).  When no optimization cache
    is active, a temporary in-memory cache is installed for the duration
    so duplicate sweeps inside one study are computed once — results are
    unchanged either way (the sweep is a pure function).

    Fault tolerance:

    * ``journal`` — a path (or open :class:`~repro.exec.RunJournal`):
      every completed scenario is appended, checksummed, flushed and
      fsynced, so an interrupted run can be resumed.
    * ``resume`` — ``"auto"`` (default; resume from matching journal
      entries, start fresh with a stderr note when the journal was
      written by a different spec), ``"require"`` (a mismatching journal
      is a :class:`~repro.exec.JournalMismatchError`), or ``"never"``
      (ignore existing entries).  ``True``/``False`` alias
      ``"auto"``/``"never"``.  Resumed scenarios are **not** re-executed;
      their outcomes are reconstructed from the journal bitwise.
    * ``retry`` — the scheduler's :class:`~repro.exec.RetryPolicy`
      (retries, pool rebuilds, serial degradation).
    * ``task_timeout`` — per-scenario watchdog deadline in seconds: a
      hung scenario (wedged worker, stuck I/O) is cancelled into the
      retry ladder instead of stalling the whole study (see
      :func:`repro.exec.run_scenarios`).  Setting it also disables the
      packed fast path — one fused ``simulate_packed`` call cannot be
      cancelled per scenario, so each scenario runs as its own
      watchdogged task.

    Returns outcomes **in scenario order** regardless of worker count,
    plus a :class:`StudyRunRecord` of the derived seeds, trial counts,
    cache hit/miss deltas, per-stage wall-clock and the resilience
    summary (resumed vs executed counts, retry/degradation events) for
    exactly this call.  On unrecoverable failure the raised
    :class:`~repro.exec.StudyExecutionError` (or, for Ctrl-C,
    :class:`~repro.exec.StudyInterrupted`) carries the partial record.
    """
    mode = {True: "auto", False: "never"}.get(resume, resume)
    if mode not in _RESUME_MODES:
        raise ValueError(f"resume must be one of {_RESUME_MODES}, got {resume!r}")
    sim_w = resolve_sim_workers(workers, sim_workers)

    owns_journal = journal is not None and not isinstance(journal, RunJournal)
    jr: RunJournal | None = None
    restored: dict[int, TechniqueOutcome] = {}
    if journal is not None:
        jr = journal if isinstance(journal, RunJournal) else RunJournal(journal)
        if mode != "never":
            try:
                restored = jr.resume_state(study)
            except JournalMismatchError:
                if mode == "require":
                    if owns_journal:
                        jr.close()
                    raise
                print(
                    f"warning: journal {jr.path} was written by a different "
                    f"configuration of study {study.study_id!r}; starting "
                    "this study fresh (pass --resume to make this an error)",
                    file=sys.stderr,
                )
        jr.begin_study(study)
    study_hash = study.study_hash()

    temp_cache_installed = get_active_cache() is None
    if temp_cache_installed:
        previous = set_active_cache(OptimizationCache())
    cache = get_active_cache()
    stage_before = stage_snapshot()
    cache_before = cache.stats.snapshot() if cache is not None else CacheStats()
    events: list[dict[str, Any]] = []
    pending = [i for i in range(len(study.scenarios)) if i not in restored]
    outcomes_map: dict[int, TechniqueOutcome] = dict(restored)

    def resilience(interrupted: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "resumed": len(restored),
            "executed": len(outcomes_map) - len(restored),
            "pending": len(study.scenarios) - len(outcomes_map),
            "events": list(events),
        }
        if jr is not None:
            out["journal"] = str(jr.path)
        if interrupted:
            out["interrupted"] = True
        return out

    def finish_record(interrupted: bool = False) -> StudyRunRecord:
        stages = stage_delta(stage_before)
        cache_d = (
            cache.stats.delta(cache_before) if cache is not None else CacheStats()
        )
        return _build_record(
            study, stages, cache_d, resilience(interrupted),
            numerics=aggregate_numerics(outcomes_map.values()),
            adaptive=aggregate_adaptive(outcomes_map.values()),
        )

    def record_outcome(index: int, outcome: TechniqueOutcome) -> None:
        outcomes_map[index] = outcome
        if jr is not None:
            scenario = study.scenarios[index]
            jr.record_scenario(
                study_hash,
                index,
                scenario.label,
                scenario_seed(scenario, study.seed),
                outcome,
            )

    def on_result(task_index: int, outcome: TechniqueOutcome) -> None:
        record_outcome(pending[task_index], outcome)

    def try_packed() -> None:
        """Serial fast path: measure every packable scenario in one
        packed lockstep universe instead of one ``simulate_many`` call
        each.  Results are bitwise identical, so any surprise (an
        unresolvable source, an engine invariant) falls back to the
        normal per-scenario path with an event breadcrumb rather than
        failing the study."""
        from ..exec.chaos import chaos_config
        from ..simulator import get_default_engine

        if (
            workers > 1
            or sim_w > 1
            or len(pending) < 2
            or task_timeout is not None
            or chaos_config() is not None
            or get_default_engine() == "scalar"
        ):
            return
        try:
            packable = [i for i in pending if _packable(study.scenarios[i])]
            if len(packable) < 2:
                return
            for index, outcome in _simulate_scenarios_packed(study, packable):
                record_outcome(index, outcome)
            events.append(
                {"type": "packed_simulate", "scenarios": len(packable)}
            )
        except Exception as err:
            events.append({"type": "packed_fallback", "error": str(err)})

    try:
        try:
            try_packed()
            pending = [i for i in pending if i not in outcomes_map]
            tasks = [
                ScenarioTask(
                    _execute_scenario,
                    args=(study.scenarios[i], study.seed, sim_w),
                    label=study.scenarios[i].label,
                )
                for i in pending
            ]
            run_scenarios(
                tasks,
                workers=workers,
                retry=retry,
                on_result=on_result,
                events=events,
                task_timeout=task_timeout,
            )
        except StudyExecutionError as err:
            err.record = finish_record(interrupted=True)
            raise
        except KeyboardInterrupt:
            exc = StudyInterrupted(
                f"study {study.study_id!r} interrupted after "
                f"{len(outcomes_map)}/{len(study.scenarios)} scenario(s)",
                completed=len(outcomes_map),
            )
            exc.record = finish_record(interrupted=True)
            raise exc from None
        outcomes = [outcomes_map[i] for i in range(len(study.scenarios))]
    finally:
        if temp_cache_installed:
            set_active_cache(previous)
        if owns_journal and jr is not None:
            jr.close()
    record = finish_record()
    return StudyRun(study=study, outcomes=outcomes, record=record)


#: Measurement columns of the generic (custom-study) result table.
_GENERIC_COLUMNS = [
    ("system", None),
    ("technique", None),
    ("sim efficiency", ".4f"),
    ("std", ".4f"),
    ("predicted", ".4f"),
    ("error", "+.4f"),
    ("trials", "d"),
    ("plan", None),
]


def generic_result(run: StudyRun) -> ExperimentResult:
    """Render a study execution as a generic table (the ``custom`` path).

    Scenario ``tags`` become leading columns (first-appearance order), so
    a study can label its rows without any figure-specific module.
    """
    from ..experiments.records import ExperimentResult

    tag_keys: dict[str, None] = {}
    for scenario in run.study.scenarios:
        for key in scenario.tags:
            tag_keys.setdefault(key)
    rows = []
    for scenario, out in zip(run.study.scenarios, run.outcomes):
        row = {key: scenario.tags.get(key) for key in tag_keys}
        row.update(
            {
                "system": out.system,
                "technique": out.technique,
                "sim efficiency": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "error": out.prediction_error,
                "trials": out.trials,
                "plan": out.plan,
            }
        )
        rows.append(row)
    result = ExperimentResult(
        experiment_id=run.study.study_id,
        title=run.study.title or f"Study {run.study.study_id}",
        caption=run.study.caption
        or "User-defined study executed by the shared scenario pipeline.",
        columns=[(key, None) for key in tag_keys] + _GENERIC_COLUMNS,
        rows=rows,
        parameters={"seed": run.study.seed, "study_hash": run.record.study_hash},
        notes=list(run.study.notes),
        manifest=run.record.to_dict(),
    )
    return result
