"""Offline interval-based optimization in the spirit of Di et al. [17].

The defining simplification of interval-based optimization is that each
level's period is chosen *independently*.  We compose per-level costs the
way single-level analyses do: each used level ``k``, with effective
failure rate ``lam_k`` (severities folded as usual), checkpoint cost
``delta_k``, restart cost ``R_k`` and period ``p_k``, inflates execution
by Daly's exact single-level factor

    f_k(p_k) = M_k e^{R_k / M_k} (e^{(p_k + delta_k) / M_k} - 1) / p_k

and the predicted time is ``T_B * prod_k f_k`` — each level's overhead
multiplies the wall-clock exposure of the others.  The factors decouple,
so the optimum is simply the per-level Daly optimum: no pattern coupling,
no integer constraints — exactly the freedom interval-based scheduling
buys, and the reason [17] found it can outperform pattern-based plans.

Like the pattern models, short applications may drop the top level
(subsets are searched), with the unprotected tail priced by the renewal
formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.optimizer import golden_section
from ..core.severity import LevelMapping
from ..core.truncated import unprotected_completion_time
from ..models.daly import daly_optimum_interval
from ..systems.spec import SystemSpec
from .schedule import IntervalSchedule

__all__ = ["IntervalModel", "IntervalOptimizationResult"]

_EXP_OVERFLOW = 700.0


@dataclass(frozen=True)
class IntervalOptimizationResult:
    """Chosen interval schedule plus its predictions."""

    schedule: IntervalSchedule
    predicted_time: float
    predicted_efficiency: float


class IntervalModel:
    """Expected-time model and optimizer for interval-based schedules."""

    name = "interval"

    def __init__(self, system: SystemSpec, allow_level_skipping: bool = True):
        self.system = system
        self.allow_level_skipping = allow_level_skipping

    # ------------------------------------------------------------------
    def predict_time(self, schedule: IntervalSchedule) -> float:
        """``T_B * prod_k f_k(p_k)`` plus the unprotected-tail renewal."""
        mp = LevelMapping.build(self.system, schedule.levels)
        total = self.system.baseline_time
        for k in range(mp.num_used):
            factor = self._level_factor(
                schedule.periods[k],
                mp.rates[k],
                mp.checkpoint_times[k],
                mp.restart_times[k],
            )
            if math.isinf(factor):
                return math.inf
            total *= factor
        if mp.unprotected_rate > 0:
            total = unprotected_completion_time(
                total, mp.unprotected_rate, mp.unprotected_restart
            )
        return total

    def predict_efficiency(self, schedule: IntervalSchedule) -> float:
        t = self.predict_time(schedule)
        return 0.0 if math.isinf(t) else self.system.baseline_time / t

    @staticmethod
    def _level_factor(period: float, rate: float, delta: float, restart: float) -> float:
        M = 1.0 / rate
        exponent = (period + delta) / M
        if exponent > _EXP_OVERFLOW:
            return math.inf
        return M * math.exp(restart / M) * math.expm1(exponent) / period

    # ------------------------------------------------------------------
    def optimize(self) -> IntervalOptimizationResult:
        """Per-level Daly optima (factors decouple), best level subset.

        Each period is seeded at Daly's closed form for its level and
        polished by golden-section search on the exact factor; periods are
        then monotonized (a higher level may not checkpoint more often
        than a lower one — the schedule's own validity rule).
        """
        T_B = self.system.baseline_time
        L = self.system.num_levels
        subsets = (
            [tuple(range(1, l + 1)) for l in range(L, 0, -1)]
            if self.allow_level_skipping
            else [tuple(range(1, L + 1))]
        )
        best: IntervalOptimizationResult | None = None
        for levels in subsets:
            mp = LevelMapping.build(self.system, levels)
            periods: list[float] = []
            feasible = True
            for k in range(mp.num_used):
                rate = mp.rates[k]
                delta = mp.checkpoint_times[k]
                restart = mp.restart_times[k]
                seed = min(daly_optimum_interval(max(delta, 1e-9), 1.0 / rate), T_B)
                fn = lambda p: self._level_factor(p, rate, delta, restart)
                lo = max(T_B * 1e-6, seed / 16.0)
                hi = min(T_B, seed * 16.0)
                if hi <= lo:
                    feasible = False
                    break
                p_opt, _ = golden_section(fn, lo, hi, iterations=70)
                periods.append(min(p_opt, T_B))
            if not feasible:
                continue
            for k in range(1, len(periods)):  # enforce monotone periods
                periods[k] = max(periods[k], periods[k - 1])
            schedule = IntervalSchedule(levels=levels, periods=tuple(periods))
            t = self.predict_time(schedule)
            if math.isfinite(t) and (best is None or t < best.predicted_time):
                best = IntervalOptimizationResult(
                    schedule=schedule,
                    predicted_time=t,
                    predicted_efficiency=T_B / t,
                )
        if best is None:
            raise RuntimeError(
                f"no feasible interval schedule found for {self.system.name}"
            )
        return best
