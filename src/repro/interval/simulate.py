"""Trial simulation for interval-based schedules.

Same failure/recovery semantics as :mod:`repro.simulator.engine` — retry
restarts, hierarchical checkpoint validity, severity-based invalidation,
the ``recheckpoint`` policy — but driven by an explicit list of
(work, level) checkpoint positions instead of a uniform pattern, because
interval-based levels are not nested.  Recovery positions are therefore
work *values* rather than pattern indexes.

The implementation is cross-validated against the pattern engine: a
schedule built with nested periods (``IntervalSchedule.from_plan``)
produces the identical timeline on the same failure trace.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..failures.sources import ExponentialFailureSource, FailureSource
from ..simulator.accounting import SimulationStats, TimeBreakdown, TrialResult
from ..simulator.engine import default_max_time
from ..simulator.run import trial_seeds
from ..systems.spec import SystemSpec
from .schedule import IntervalSchedule

__all__ = ["simulate_schedule_trial", "simulate_schedule_many"]

_EPS = 1e-9


def simulate_schedule_trial(
    system: SystemSpec,
    schedule: IntervalSchedule,
    rng: np.random.Generator | int | None = None,
    source: FailureSource | None = None,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
) -> TrialResult:
    """Simulate one execution under an interval-based ``schedule``."""
    if schedule.top_level > system.num_levels:
        raise ValueError(
            f"schedule uses level {schedule.top_level} but {system.name} "
            f"has {system.num_levels} levels"
        )
    if restart_semantics not in ("retry", "escalate"):
        raise ValueError(f"unknown restart_semantics {restart_semantics!r}")
    if recheckpoint not in ("free", "paid", "skip"):
        raise ValueError(f"unknown recheckpoint policy {recheckpoint!r}")
    escalate = restart_semantics == "escalate"
    if source is None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        source = ExponentialFailureSource.for_system(system, rng)
    cap = default_max_time(system) if max_time is None else float(max_time)

    T_B = system.baseline_time
    levels = schedule.levels
    num_used = len(levels)
    num_sev = system.num_levels
    ckpt_cost = [system.checkpoint_time(lv) for lv in levels]
    rest_cost = [system.restart_time(lv) for lv in levels]
    sev_rest_cost = [system.restart_time(s) for s in range(1, num_sev + 1)]
    positions = schedule.positions(T_B, include_horizon=checkpoint_at_completion)
    pos_work = [w for w, _ in positions]
    pos_level = [k for _, k in positions]
    n_pos = len(positions)
    recover_idx = []
    for s in range(1, num_sev + 1):
        lv = schedule.recovery_level(s)
        recover_idx.append(levels.index(lv) if lv is not None else -1)

    # --- state -------------------------------------------------------
    t = 0.0
    work = 0.0
    i_next = 0  # index into positions of the next checkpoint
    valid = [-1.0] * num_used  # newest checkpointed *work* per used level
    recovering = False
    pending_sev = 0
    rollback_ref = 0.0
    compute_time = 0.0
    acct = TimeBreakdown()
    n_by_sev = [0] * num_sev
    ckpt_ok = ckpt_fail = rst_ok = rst_fail = scratch = restored = 0
    max_completed_i = -1
    fail_t, fail_s = source.next_after(0.0)
    completed = False

    def candidate(sev: int) -> float:
        lo = recover_idx[sev - 1]
        if lo < 0:
            return 0.0
        best = 0.0
        for k in range(lo, num_used):
            if valid[k] > best:
                best = valid[k]
        return best

    def on_failure(category: str) -> None:
        nonlocal recovering, pending_sev, rollback_ref, fail_t, fail_s
        s = fail_s
        n_by_sev[s - 1] += 1
        if recovering:
            if escalate and s == pending_sev and s < num_sev:
                s += 1
            if s > pending_sev:
                pending_sev = s
        else:
            recovering = True
            pending_sev = s
            rollback_ref = work
        for k in range(num_used):
            if levels[k] < s and valid[k] >= 0:
                valid[k] = -1.0
        pos = candidate(pending_sev)
        lost = rollback_ref - pos
        if lost > 0:
            setattr(acct, f"rework_{category}", getattr(acct, f"rework_{category}") + lost)
            rollback_ref = pos
        fail_t, fail_s = source.next_after(fail_t)

    while True:
        if (
            work >= T_B - _EPS
            and not recovering
            and (not checkpoint_at_completion or i_next >= n_pos)
        ):
            completed = True
            break
        if t >= cap:
            break

        if recovering:
            pos = candidate(pending_sev)
            k_lo = recover_idx[pending_sev - 1]
            if pos > 0:
                k_use = next(
                    k for k in range(k_lo, num_used) if valid[k] == pos
                )
                dur = rest_cost[k_use]
            else:
                dur = rest_cost[k_lo] if k_lo >= 0 else sev_rest_cost[pending_sev - 1]
            if fail_t - t >= dur:
                t += dur
                acct.restart += dur
                rst_ok += 1
                if pos <= 0:
                    scratch += 1
                work = pos
                i_next = bisect_right(pos_work, pos + _EPS)
                recovering = False
                pending_sev = 0
            else:
                acct.failed_restart += fail_t - t
                rst_fail += 1
                t = fail_t
                on_failure("restart")
            continue

        boundary = pos_work[i_next] if i_next < n_pos else T_B
        if work < boundary - _EPS:
            target = min(boundary, T_B)
            dur = target - work
            if fail_t - t >= dur:
                t += dur
                compute_time += dur
                work = target
            else:
                elapsed = fail_t - t
                compute_time += elapsed
                work += elapsed
                t = fail_t
                on_failure("compute")
            continue
        if i_next >= n_pos:
            # No checkpoint here: work has reached T_B (loop top handles it).
            continue

        k = pos_level[i_next]
        if i_next <= max_completed_i and recheckpoint != "paid":
            if recheckpoint == "free":
                for j in range(k + 1):
                    valid[j] = pos_work[i_next]
                restored += 1
            i_next += 1
            continue
        dur = ckpt_cost[k]
        if fail_t - t >= dur:
            t += dur
            acct.checkpoint += dur
            ckpt_ok += 1
            for j in range(k + 1):  # hierarchical validity, as in the engine
                valid[j] = pos_work[i_next]
            if i_next > max_completed_i:
                max_completed_i = i_next
            i_next += 1
        else:
            acct.failed_checkpoint += fail_t - t
            ckpt_fail += 1
            t = fail_t
            on_failure("checkpoint")

    if recovering:
        work = rollback_ref
    acct.work = work
    return TrialResult(
        total_time=t,
        work_done=work,
        completed=completed,
        times=acct,
        failures_by_severity=tuple(n_by_sev),
        checkpoints_completed=ckpt_ok,
        checkpoints_failed=ckpt_fail,
        checkpoints_restored=restored,
        restarts_completed=rst_ok,
        restarts_failed=rst_fail,
        scratch_restarts=scratch,
    )


def simulate_schedule_many(
    system: SystemSpec,
    schedule: IntervalSchedule,
    trials: int,
    seed: int | None = None,
    **options,
) -> SimulationStats:
    """Repeated schedule trials with the same seeding discipline as
    :func:`repro.simulator.simulate_many`."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    results = [
        simulate_schedule_trial(
            system, schedule, rng=np.random.default_rng(ss), **options
        )
        for ss in trial_seeds(seed, trials)
    ]
    return SimulationStats.from_trials(results)
