"""Interval-based checkpoint schedules: independent per-level periods.

Pattern-based protocols (everything in :mod:`repro.core`) force each
level's interval to be an integer multiple of the level below.  Di et
al.'s *interval-based* optimization [17] drops that restriction: each
level ``k`` checkpoints every ``p_k`` work units, independently.  The
paper discusses this mode in Section II-C and excludes it from its
comparison because production protocols are pattern-based and because of
the practical question of *simultaneous* checkpoints; this subpackage
implements it as the extension DESIGN.md section 6 lists, including an
explicit answer to the simultaneity question: coinciding positions merge
into a single checkpoint of the highest level involved (which, being
hierarchical, subsumes the lower ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["IntervalSchedule"]

#: Positions closer than this (in work units) merge into one checkpoint.
_MERGE_EPS = 1e-9


@dataclass(frozen=True)
class IntervalSchedule:
    """Per-level checkpoint periods over a subset of system levels.

    ``levels`` are ascending 1-based system levels; ``periods[k]`` is the
    work between successive level-``levels[k]`` checkpoints.  Periods
    need not be multiples of one another — that is the point.
    """

    levels: tuple[int, ...]
    periods: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(int(v) for v in self.levels))
        object.__setattr__(self, "periods", tuple(float(p) for p in self.periods))
        if not self.levels:
            raise ValueError("a schedule must use at least one level")
        if any(lv < 1 for lv in self.levels):
            raise ValueError(f"levels are 1-based, got {self.levels}")
        if any(b <= a for a, b in zip(self.levels, self.levels[1:])):
            raise ValueError(f"levels must be strictly ascending, got {self.levels}")
        if len(self.periods) != len(self.levels):
            raise ValueError(
                f"{len(self.levels)} levels need {len(self.levels)} periods, "
                f"got {len(self.periods)}"
            )
        if any(not (p > 0 and math.isfinite(p)) for p in self.periods):
            raise ValueError(f"periods must be positive and finite, got {self.periods}")
        if any(
            b < a - 1e-12 for a, b in zip(self.periods, self.periods[1:])
        ):
            raise ValueError(
                "higher levels must not checkpoint more often than lower "
                f"ones, got periods {self.periods}"
            )

    @property
    def num_used(self) -> int:
        return len(self.levels)

    @property
    def top_level(self) -> int:
        return self.levels[-1]

    def recovery_level(self, severity: int) -> int | None:
        """Lowest used level able to recover ``severity`` (None = scratch)."""
        for lv in self.levels:
            if lv >= severity:
                return lv
        return None

    def positions(self, horizon: float, include_horizon: bool = False) -> list[tuple[float, int]]:
        """Merged checkpoint positions up to ``horizon`` work units.

        Returns ascending ``(work, used_level_index)`` pairs.  Positions
        of several levels that coincide (within 1e-9 work units) merge
        into one checkpoint of the *highest* level — the subsumption rule
        answering the simultaneity concern of [18] quoted by the paper.
        Positions at the horizon itself are excluded unless
        ``include_horizon`` (the end-of-run checkpoint question).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        raw: list[tuple[float, int]] = []
        for k, period in enumerate(self.periods):
            n = int(math.floor(horizon / period + 1e-9))
            for j in range(1, n + 1):
                w = j * period
                if w > horizon + 1e-9:
                    break
                if not include_horizon and w >= horizon - 1e-9:
                    continue
                raw.append((w, k))
        raw.sort()
        merged: list[tuple[float, int]] = []
        for w, k in raw:
            if merged and abs(w - merged[-1][0]) <= _MERGE_EPS:
                prev_w, prev_k = merged[-1]
                merged[-1] = (prev_w, max(prev_k, k))
            else:
                merged.append((w, k))
        return merged

    @classmethod
    def from_plan(cls, plan) -> "IntervalSchedule":
        """The interval view of a pattern-based plan (nested periods).

        Nested periods reproduce the plan's positions exactly, which the
        test suite uses to cross-validate the two simulators.
        """
        periods = [plan.work_between(k) for k in range(plan.num_used_levels)]
        return cls(levels=plan.levels, periods=tuple(periods))

    def describe(self) -> str:
        parts = [
            f"L{lv} every {p:.4g}min" for lv, p in zip(self.levels, self.periods)
        ]
        return "interval schedule: " + ", ".join(parts)
