"""Interval-based multilevel checkpointing (extension; Section II-C).

Di et al. [17] propose letting each checkpoint level run on its own
period instead of nesting patterns; the paper discusses why it excludes
that mode (no production protocol supports it; simultaneous checkpoints
need a policy) and this subpackage supplies the missing pieces so the
claim "interval-based can perform better than pattern-based" is testable
in simulation:

* :class:`IntervalSchedule` — independent per-level periods, with
  coinciding positions merged into the highest level;
* :func:`simulate_schedule_trial` / :func:`simulate_schedule_many` —
  schedule-driven twins of the pattern simulator (cross-validated
  against it on nested schedules);
* :class:`IntervalModel` — per-level decoupled expected-time model and
  optimizer (per-level Daly optima).

See ``repro.experiments.interval_study`` for the comparison harness.
"""

from .model import IntervalModel, IntervalOptimizationResult
from .schedule import IntervalSchedule
from .simulate import simulate_schedule_many, simulate_schedule_trial

__all__ = [
    "IntervalModel",
    "IntervalOptimizationResult",
    "IntervalSchedule",
    "simulate_schedule_many",
    "simulate_schedule_trial",
]
