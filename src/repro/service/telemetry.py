"""Three-tier service telemetry: sampled, event-based, aggregated.

The metric taxonomy follows the AsyncFlow FastSim shape (SNIPPETS.md
section 3), built on the event-tier primitives of
:mod:`repro.exec.metrics`:

* **sampled** — fixed-interval snapshots of continuous state (admission
  queue depth, in-flight handlers); the time-series view that shows
  saturation building, not just its aftermath;
* **event-based** — one record per completed request (path class,
  status, latency) kept in a bounded sliding window; the distribution
  view where a mean would hide the tail;
* **aggregated** — computed on demand from the event window: request
  counts by status, p50/p95/p99/mean/max latency (overall and per path
  class), shed/coalesced counters.

Everything is bounded: the sampled series and event window are deques
with ``maxlen``, so a week of uptime costs the same memory as a minute.
Thread-safety note: the service is single-event-loop, but study worker
threads also record events, so counters go through a lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

from ..exec.metrics import LatencyWindow, percentile

__all__ = ["ServiceTelemetry"]

#: How often the background sampler snapshots continuous state.
DEFAULT_SAMPLE_INTERVAL = 1.0


class ServiceTelemetry:
    """Collects the three metric tiers for one service process."""

    def __init__(
        self,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        sample_limit: int = 600,
        event_limit: int = 2048,
    ):
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be positive, got {sample_interval}")
        self.sample_interval = sample_interval
        self.started = time.time()
        self._lock = threading.Lock()
        #: sampled tier: (unix time, queue depth, in-flight handlers)
        self._samples: deque[tuple[float, int, int]] = deque(maxlen=sample_limit)
        #: event tier: (path class, status, seconds), most recent last
        self._events: deque[tuple[str, int, float]] = deque(maxlen=event_limit)
        self._latency = LatencyWindow(limit=event_limit)
        self._by_status: Counter[int] = Counter()
        self._by_path: Counter[str] = Counter()
        self._shed = 0
        self._coalesced = 0
        self._deadline_hits = 0

    # -- recording -----------------------------------------------------
    def sample(self, queue_depth: int, in_flight: int) -> None:
        """Sampled tier: one fixed-interval snapshot of continuous state."""
        with self._lock:
            self._samples.append((time.time(), queue_depth, in_flight))

    def record_request(self, path: str, status: int, seconds: float) -> None:
        """Event tier: one completed request (any status, any path)."""
        with self._lock:
            self._events.append((path, status, seconds))
            self._by_status[status] += 1
            self._by_path[path] += 1
        self._latency.record(seconds)

    def record_shed(self) -> None:
        """A request refused with 429 by the admission queue."""
        with self._lock:
            self._shed += 1

    def record_coalesced(self) -> None:
        """A request served by riding an identical in-flight computation."""
        with self._lock:
            self._coalesced += 1

    def record_deadline(self) -> None:
        """A request cancelled at its deadline (504)."""
        with self._lock:
            self._deadline_hits += 1

    # -- reporting -----------------------------------------------------
    def _latency_block(self, seconds: list[float]) -> dict:
        if not seconds:
            return {"count": 0}
        ordered = sorted(seconds)
        return {
            "count": len(ordered),
            "p50_ms": percentile(ordered, 50) * 1000.0,
            "p95_ms": percentile(ordered, 95) * 1000.0,
            "p99_ms": percentile(ordered, 99) * 1000.0,
            "mean_ms": sum(ordered) / len(ordered) * 1000.0,
            "max_ms": ordered[-1] * 1000.0,
        }

    def snapshot(self) -> dict:
        """The full three-tier block ``/health`` embeds."""
        with self._lock:
            samples = list(self._samples)
            events = list(self._events)
            by_status = dict(self._by_status)
            by_path = dict(self._by_path)
            shed, coalesced, deadlines = (
                self._shed, self._coalesced, self._deadline_hits,
            )
        per_path: dict[str, dict] = {}
        for path in sorted(by_path):
            per_path[path] = self._latency_block(
                [s for p, _, s in events if p == path]
            )
        return {
            "sampled": {
                "interval_seconds": self.sample_interval,
                "series": [
                    {"t": t, "queue_depth": depth, "in_flight": in_flight}
                    for t, depth, in_flight in samples[-60:]
                ],
            },
            "events": {
                "window": len(events),
                "recent": [
                    {"path": p, "status": s, "ms": sec * 1000.0}
                    for p, s, sec in events[-10:]
                ],
            },
            "aggregated": {
                "requests_total": sum(by_status.values()),
                "by_status": {str(k): v for k, v in sorted(by_status.items())},
                "shed_total": shed,
                "coalesced_total": coalesced,
                "deadline_total": deadlines,
                "latency_ms": self._latency.summary(),
                "latency_by_path": per_path,
                "uptime_seconds": time.time() - self.started,
            },
        }
