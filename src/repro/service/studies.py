"""Journaled study execution behind the service: submit, poll, resume.

``POST /study`` hands a :class:`~repro.scenarios.StudySpec` to this
manager; the study runs through the same
:func:`~repro.scenarios.execute_study` pipeline as the CLI, on a worker
thread (the pipeline is synchronous and CPU-heavy — a thread keeps the
event loop serving ``/health`` while scenarios execute), with a run
journal at ``<service-dir>/<study_hash>.journal.jsonl``.

Identity is content-addressed: a study *is* its ``study_hash``, so
re-POSTing a spec whose run is already in flight coalesces onto that run
(single-flight for studies), re-POSTing after completion returns the
finished result, and re-POSTing after a crash **resumes from the
journal** — the byte-identical-resume guarantee the chaos suite asserts
is inherited directly from PR 4's journal machinery.

Progress is observable mid-run: the journal passed to the pipeline is a
counting subclass, so ``GET /study/{hash}`` reports completed/total
scenarios without touching the journal file.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exec.resilience import RunJournal, StudyExecutionError
from ..scenarios import StudySpec, execute_study
from .http import HttpError

__all__ = ["StudyJob", "StudyManager"]


class _CountingJournal(RunJournal):
    """A run journal that reports scenario completions to its job."""

    def __init__(self, path, job: "StudyJob"):
        self._job = job
        super().__init__(path)

    def record_scenario(self, *args, **kwargs) -> None:
        super().record_scenario(*args, **kwargs)
        self._job.executed += 1


@dataclass
class StudyJob:
    """One submitted study and everything ``GET /study/{hash}`` reports."""

    spec: StudySpec
    study_hash: str
    journal_path: Path
    status: str = "running"  # running | done | failed
    resumed: int = 0
    executed: int = 0
    error: str | None = None
    outcomes: list | None = None
    record: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    thread: threading.Thread | None = None

    @property
    def completed(self) -> int:
        return self.resumed + self.executed

    @property
    def total(self) -> int:
        return len(self.spec.scenarios)

    def describe(self, include_outcomes: bool = True) -> dict:
        out = {
            "study": self.spec.study_id,
            "study_hash": self.study_hash,
            "status": self.status,
            "completed": self.completed,
            "total": self.total,
            "resumed": self.resumed,
            "journal": str(self.journal_path),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.status == "done" and include_outcomes:
            out["outcomes"] = self.outcomes
            out["manifest"] = self.record
        return out


class StudyManager:
    """Owns study jobs, their worker threads and their journals."""

    def __init__(
        self,
        root: str | Path,
        max_concurrent: int = 1,
        task_timeout: float | None = None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.root = Path(root)
        self.max_concurrent = max_concurrent
        self.task_timeout = task_timeout
        self.draining = False
        self._lock = threading.Lock()
        #: study_hash -> job (finished jobs stay around for polling)
        self._jobs: dict[str, StudyJob] = {}

    # -- submission ----------------------------------------------------
    def running(self) -> list[StudyJob]:
        with self._lock:
            return [j for j in self._jobs.values() if j.status == "running"]

    def submit(self, data: dict) -> tuple[StudyJob, bool]:
        """Admit a study; returns ``(job, created)``.

        ``created`` is ``False`` when an identical spec (same
        ``study_hash``) is already known — running, done, or failed —
        in which case that job is returned instead of duplicating work.
        A failed job is retried (fresh thread, resumed from its journal).
        """
        try:
            spec = StudySpec.from_dict(data)
        except (ValueError, TypeError, KeyError) as err:
            raise HttpError(422, f"invalid StudySpec: {err}") from err
        study_hash = spec.study_hash()
        with self._lock:
            existing = self._jobs.get(study_hash)
            if existing is not None and existing.status != "failed":
                return existing, False
            if self.draining:
                raise HttpError(
                    503, "service is draining; not admitting new studies"
                )
            active = sum(
                1 for j in self._jobs.values() if j.status == "running"
            )
            if active >= self.max_concurrent:
                raise HttpError(
                    429,
                    f"{active} study run(s) already in flight "
                    f"(limit {self.max_concurrent}); retry later",
                    headers={"retry-after": "5"},
                )
            self.root.mkdir(parents=True, exist_ok=True)
            job = StudyJob(
                spec=spec,
                study_hash=study_hash,
                journal_path=self.root / f"{study_hash[:32]}.journal.jsonl",
            )
            self._jobs[study_hash] = job
            job.thread = threading.Thread(
                target=self._run, args=(job,), daemon=True,
                name=f"study-{study_hash[:8]}",
            )
            job.thread.start()
        return job, True

    def get(self, study_hash: str) -> StudyJob:
        with self._lock:
            job = self._jobs.get(study_hash)
        if job is None:
            hint = ""
            candidate = self.root / f"{study_hash[:32]}.journal.jsonl"
            if candidate.exists():
                hint = (
                    "; a journal for it exists — re-POST the spec to "
                    "/study to resume"
                )
            raise HttpError(404, f"unknown study {study_hash!r}{hint}")
        return job

    # -- execution (worker thread) -------------------------------------
    def _run(self, job: StudyJob) -> None:
        journal = _CountingJournal(job.journal_path, job)
        try:
            run = execute_study(
                job.spec,
                journal=journal,
                resume="auto",
                task_timeout=self.task_timeout,
            )
            job.resumed = int(run.record.resilience.get("resumed", 0))
            # record_scenario already counted executions live; trust the
            # pipeline's final tally in case of resumed entries.
            job.executed = int(run.record.resilience.get("executed", 0))
            job.outcomes = [outcome.to_dict() for outcome in run.outcomes]
            job.record = run.record.to_dict()
            job.status = "done"
        except StudyExecutionError as err:
            job.error = str(err)
            job.record = (
                err.record.to_dict() if err.record is not None else None
            )
            job.status = "failed"
        except BaseException as err:  # never lose a thread silently
            job.error = f"{type(err).__name__}: {err}"
            job.status = "failed"
        finally:
            job.finished_at = time.time()
            journal.close()
        if job.status == "failed":
            print(
                f"service: study {job.spec.study_id!r} failed: {job.error} "
                f"(journal {job.journal_path} holds "
                f"{job.completed}/{job.total} scenarios)",
                file=sys.stderr,
            )

    # -- drain ---------------------------------------------------------
    def drain(self, timeout: float) -> bool:
        """Stop admitting and wait for running studies.

        Returns ``True`` when everything finished inside ``timeout``.
        Abandoned studies are safe by construction: every completed
        scenario is already fsynced in the journal, so a re-POST of the
        same spec resumes with zero lost work.
        """
        with self._lock:
            self.draining = True
        deadline = time.monotonic() + timeout
        for job in self.running():
            if job.thread is not None:
                job.thread.join(max(0.0, deadline - time.monotonic()))
        leftovers = self.running()
        for job in leftovers:
            print(
                f"service: drain timeout — study {job.spec.study_id!r} "
                f"abandoned at {job.completed}/{job.total} scenarios "
                f"(journaled at {job.journal_path}; resume by re-POSTing)",
                file=sys.stderr,
            )
        return not leftovers

    def describe(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
        out = {
            "running": sum(1 for j in jobs if j.status == "running"),
            "done": sum(1 for j in jobs if j.status == "done"),
            "failed": sum(1 for j in jobs if j.status == "failed"),
        }
        # Adaptive-replanning telemetry: fold every finished study's
        # manifest "adaptive" block (scenario-count-weighted) so a
        # drifting deployment can see its replanner working — and losing
        # to the static plan shows up as wins < scenarios — straight
        # from GET /health.  Absent when nothing adaptive ran.
        blocks = [
            job.record["adaptive"]
            for job in jobs
            if job.record and job.record.get("adaptive")
        ]
        if blocks:
            total = sum(int(b.get("scenarios", 0)) for b in blocks)
            latencies = [
                b["mean_detection_latency"]
                for b in blocks
                if b.get("mean_detection_latency") is not None
            ]
            out["adaptive"] = {
                "studies": len(blocks),
                "scenarios": total,
                "wins": sum(int(b.get("wins", 0)) for b in blocks),
                "mean_replans": sum(
                    float(b.get("mean_replans", 0.0)) * int(b.get("scenarios", 0))
                    for b in blocks
                ) / total if total else 0.0,
                "mean_improvement": sum(
                    float(b.get("mean_improvement", 0.0))
                    * int(b.get("scenarios", 0))
                    for b in blocks
                ) / total if total else 0.0,
                "mean_detection_latency": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
            }
        return out
