"""Supervised plan-computation pool: rebuilds, serial fallback, breaker.

The service must answer "what is the optimal plan for this system" from
worker *processes* — the optimizer is CPU-bound Python, and a crash
(injected or real) must cost a worker, never the server.  This module
reuses the scheduler's degradation-ladder discipline
(:mod:`repro.exec.scheduler`) in asyncio form:

1. computations run on a :class:`~concurrent.futures.ProcessPoolExecutor`
   initialized exactly like scheduler workers (shared cache dir, inline
   simulator mode, chaos hooks);
2. a dead worker (``BrokenProcessPool``) triggers a pool rebuild, up to
   ``max_rebuilds`` times over the supervisor's lifetime;
3. past that the supervisor stops trusting multiprocessing and runs
   computations on a thread (serial fallback — slower, crash-unsafe, but
   the event loop stays responsive and the service stays up).

A hung computation (``timeout``) is answered like the scheduler's task
watchdog: the pool is torn down (worker processes terminated) and
rebuilt, and the caller gets :class:`PlanTimeout` — the request's 504.

The :class:`CircuitBreaker` sits in front: repeated model crashes trip
it open, callers are refused fast (503 with ``Retry-After``) instead of
feeding more work to a crashing model, and after a backoff the breaker
half-opens to let one probe through.  Success closes it; another crash
re-trips with doubled backoff.
"""

from __future__ import annotations

import asyncio
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..exec.cache import get_active_cache
from ..exec.scheduler import _terminate_pool, _worker_init

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "PlanSupervisor",
    "PlanTimeout",
    "WorkerCrashed",
]


class PlanTimeout(Exception):
    """The computation outlived its deadline; its worker was put down."""


class WorkerCrashed(Exception):
    """The computation's worker died twice for one request.

    One in-place retry on a fresh pool is transparent (a worker can die
    for reasons unrelated to the request); a second death for the same
    request is evidence the *request* kills workers, so the failure goes
    to the caller — and thence the circuit breaker — instead of burning
    the whole rebuild budget on one poisoned input.
    """


class BreakerOpen(Exception):
    """The circuit breaker is open; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"circuit breaker open; retry in {retry_after:.1f}s"
        )
        self.retry_after = retry_after


class CircuitBreaker:
    """Classic three-state breaker over consecutive computation failures.

    ``closed`` (normal) -> ``open`` after ``failure_threshold``
    consecutive failures -> ``half_open`` after the backoff elapses (one
    probe allowed) -> ``closed`` on probe success, or back to ``open``
    with doubled backoff on probe failure.  Backoff doubles per trip from
    ``base_backoff`` up to ``max_backoff``.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        base_backoff: float = 1.0,
        max_backoff: float = 60.0,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if base_backoff <= 0 or max_backoff < base_backoff:
            raise ValueError("need 0 < base_backoff <= max_backoff")
        self.failure_threshold = failure_threshold
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._backoff = base_backoff

    def _retry_at(self) -> float:
        return self._opened_at + self._backoff

    def check(self) -> None:
        """Gate a computation: raise :class:`BreakerOpen` while open.

        An open breaker whose backoff has elapsed transitions to
        ``half_open`` and lets exactly this caller through as the probe.
        """
        if self.state == "closed":
            return
        now = time.monotonic()
        if self.state == "open":
            if now < self._retry_at():
                raise BreakerOpen(max(0.0, self._retry_at() - now))
            self.state = "half_open"
            return
        # half_open: one probe is already in flight; refuse the rest
        raise BreakerOpen(max(0.0, self._retry_at() - now))

    def record_success(self) -> None:
        if self.state != "closed":
            print("service: circuit breaker closed (probe succeeded)",
                  file=sys.stderr)
        self.state = "closed"
        self.consecutive_failures = 0
        self._backoff = self.base_backoff

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            if self.state == "half_open":
                self._backoff = min(self._backoff * 2.0, self.max_backoff)
            self.state = "open"
            self.trips += 1
            self._opened_at = time.monotonic()
            print(
                f"service: circuit breaker OPEN after "
                f"{self.consecutive_failures} consecutive failure(s); "
                f"refusing plan work for {self._backoff:.1f}s",
                file=sys.stderr,
            )

    def describe(self) -> dict:
        out = {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "failure_threshold": self.failure_threshold,
        }
        if self.state == "open":
            out["retry_in_seconds"] = max(
                0.0, self._retry_at() - time.monotonic()
            )
        return out


class PlanSupervisor:
    """Owns the plan-computation pool and its degradation ladder."""

    def __init__(self, workers: int = 1, max_rebuilds: int = 2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_rebuilds = max_rebuilds
        self.rebuilds = 0
        self.timeouts = 0
        self.serial_fallback = False
        self._pool: ProcessPoolExecutor | None = None
        self._serial: ThreadPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------
    def _initargs(self) -> tuple:
        from ..simulator import run as simulator_run

        active = get_active_cache()
        cache_dir = (
            None if active is None or active.cache_dir is None
            else str(active.cache_dir)
        )
        return (
            cache_dir,
            active is not None,
            simulator_run.get_default_engine(),
            simulator_run.get_auto_min_trials(),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=self._initargs(),
            )
        return self._pool

    def _ensure_serial(self) -> ThreadPoolExecutor:
        if self._serial is None:
            self._serial = ThreadPoolExecutor(
                max_workers=max(1, self.workers),
                thread_name_prefix="plan-serial",
            )
        return self._serial

    def _drop_pool(self, terminate: bool = False) -> None:
        if self._pool is not None:
            if terminate:
                _terminate_pool(self._pool)
            else:
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def describe(self) -> dict:
        return {
            "workers": self.workers,
            "rebuilds": self.rebuilds,
            "timeouts": self.timeouts,
            "serial_fallback": self.serial_fallback,
        }

    # -- execution -----------------------------------------------------
    async def run(self, fn, *args, timeout: float | None = None):
        """Run ``fn(*args)`` on the supervised pool.

        Raises :class:`PlanTimeout` past ``timeout`` (the hung worker's
        pool is terminated and will be rebuilt lazily), re-raises the
        computation's own exception unchanged, retries once in place on
        ``BrokenProcessPool`` (a fresh pool) and raises
        :class:`WorkerCrashed` on the second death for the same request.
        Once the lifetime rebuild budget is spent, all further work runs
        serially on threads (crashes can no longer kill it, at the cost
        of living with the computation in-process).
        """
        loop = asyncio.get_running_loop()
        crashes = 0
        while True:
            if self.serial_fallback:
                future = loop.run_in_executor(self._ensure_serial(), fn, *args)
                # Serial threads cannot be killed; the deadline still
                # unblocks the caller (the thread finishes in the dark).
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(future), timeout
                    )
                except asyncio.TimeoutError:
                    self.timeouts += 1
                    raise PlanTimeout(
                        f"serial computation exceeded {timeout:.1f}s"
                    ) from None
            pool = self._ensure_pool()
            cf_future = pool.submit(fn, *args)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(asyncio.wrap_future(cf_future)), timeout
                )
            except asyncio.TimeoutError:
                self.timeouts += 1
                self._drop_pool(terminate=True)
                raise PlanTimeout(
                    f"plan computation exceeded {timeout:.1f}s; "
                    "its worker pool was terminated"
                ) from None
            except BrokenProcessPool:
                self._drop_pool()
                self.rebuilds += 1
                crashes += 1
                if self.rebuilds > self.max_rebuilds:
                    self.serial_fallback = True
                    print(
                        f"service: plan pool died {self.rebuilds} time(s); "
                        "giving up on multiprocessing — computations now "
                        "run serially in-process",
                        file=sys.stderr,
                    )
                    continue
                if crashes >= 2:
                    raise WorkerCrashed(
                        f"plan worker died {crashes} times for one request "
                        "(fresh pool each time); refusing to retry it again"
                    ) from None
                print(
                    "service: a plan worker died; rebuilding the pool "
                    f"(rebuild {self.rebuilds}/{self.max_rebuilds}) and "
                    "retrying the request once",
                    file=sys.stderr,
                )
                continue

    def shutdown(self) -> None:
        self._drop_pool()
        if self._serial is not None:
            self._serial.shutdown(wait=False, cancel_futures=True)
            self._serial = None
