"""The planning service: routes, admission, deadlines, drain.

``repro serve`` binds this asyncio server.  Its contract is small and
its failure behavior is the point:

* ``POST /plan`` — a :class:`~repro.systems.SystemSpec` (catalog name or
  inline JSON) plus a technique; answers with the optimal plan and its
  :class:`~repro.core.interfaces.OptimizationResult` certificate.
  Computation happens on the supervised worker pool
  (:mod:`repro.service.supervisor`); results land in the active
  optimization cache, and identical concurrent requests are coalesced
  onto one in-flight computation (single-flight, keyed by the cache's
  content hash).
* ``POST /study`` — a :class:`~repro.scenarios.StudySpec`; journaled
  background run, ``202`` with a ``study_hash`` to poll.
* ``GET /study/{hash}`` — progress / result of a submitted study.
* ``GET /health`` — queue depth, breaker state, cache hit ratio, the
  three-tier metrics block (:mod:`repro.service.telemetry`), and — once
  any adaptive-replanning study has finished — an ``studies.adaptive``
  summary (scenarios, wins, mean replans/improvement/detection latency)
  so drift-regime deployments surface their replanner's health.

Robustness rules, enforced here:

* **deadlines** — every request gets one (``X-Deadline-Ms`` header or
  ``deadline_ms`` query parameter, else the configured default).  The
  whole handler runs under ``asyncio.wait_for``; expiry cancels the
  handler cooperatively and answers ``504``.  No client ever hangs on a
  wedged handler — including chaos-injected stalls.
* **backpressure** — admission is a bounded queue in front of a slot
  semaphore.  When the queue is full the request is shed immediately
  with ``429`` and ``Retry-After``; overload never manifests as a
  stalled socket.
* **drain** — SIGTERM/SIGINT stop the listener, let in-flight handlers
  finish, and give running studies a drain budget; studies that outlive
  it are abandoned *journaled* (resume by re-POSTing) and the process
  exits :data:`EXIT_DRAIN_ABANDONED` instead of 0 so operators can tell
  the difference.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import sys
import time
from dataclasses import dataclass, field

from ..core.interfaces import OptimizationResult
from ..exec import chaos
from ..exec.cache import cache_key, get_active_cache
from ..models import TECHNIQUES
from ..systems import get_system
from ..systems.spec import SystemSpec
from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    read_request,
    render_response,
)
from .studies import StudyManager
from .supervisor import (
    BreakerOpen,
    CircuitBreaker,
    PlanSupervisor,
    PlanTimeout,
    WorkerCrashed,
)
from .telemetry import ServiceTelemetry

__all__ = [
    "EXIT_DRAIN_ABANDONED",
    "PlanningService",
    "ServiceConfig",
    "serve",
]

#: Exit code when drain timed out with journaled work abandoned
#: (EX_TEMPFAIL: safe to retry — re-POST the study to resume).
EXIT_DRAIN_ABANDONED = 75


class _UpstreamFailed(Exception):
    """The coalesced-onto computation failed; followers should retry."""


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` lets the operator tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced on stdout
    workers: int = 1  # plan-computation worker processes
    queue_limit: int = 8  # admission queue depth before shedding 429s
    default_deadline: float = 30.0  # seconds; per-request override allowed
    max_deadline: float = 300.0
    task_timeout: float | None = None  # per-scenario watchdog for studies
    service_dir: str = ".repro-service"  # study journals live here
    max_studies: int = 1  # concurrent background study runs
    drain_timeout: float = 10.0  # SIGTERM grace for handlers + studies
    breaker_threshold: int = 3
    breaker_backoff: float = 1.0
    sample_interval: float = 1.0


def _compute_plan(index, system_data, technique, model_options, sweep_options):
    """Worker-side plan computation (module-level: must pickle).

    Runs in a pool worker initialized like scheduler workers, so the
    shared disk cache and chaos directives apply; returns a plain dict
    because :class:`OptimizationResult` round-trips losslessly and a
    dict survives any pickling regime.
    """
    from ..experiments.runner import optimize_technique

    chaos.on_plan_task(index)
    system = SystemSpec.from_dict(system_data)
    result = optimize_technique(
        system, technique,
        model_options=model_options, sweep_options=sweep_options,
    )
    return result.to_dict()


def _parse_plan_request(data) -> tuple[SystemSpec, str, dict, dict]:
    """Validate a ``POST /plan`` body; :class:`HttpError` 422 on nonsense."""
    if not isinstance(data, dict):
        raise HttpError(422, "plan request must be a JSON object")
    system_field = data.get("system")
    if isinstance(system_field, str):
        try:
            system = get_system(system_field)
        except (KeyError, ValueError) as err:
            raise HttpError(422, f"unknown system {system_field!r}") from err
    elif isinstance(system_field, dict):
        try:
            system = SystemSpec.from_dict(system_field)
        except (ValueError, TypeError, KeyError) as err:
            raise HttpError(422, f"invalid system spec: {err}") from err
    else:
        raise HttpError(
            422, "plan request needs 'system': a catalog name or a spec object"
        )
    technique = data.get("technique")
    if not isinstance(technique, str) or technique.lower() not in TECHNIQUES:
        raise HttpError(
            422,
            f"'technique' must be one of {sorted(TECHNIQUES)}, "
            f"got {technique!r}",
        )
    model_options = data.get("model_options") or {}
    sweep_options = data.get("sweep_options") or {}
    if not isinstance(model_options, dict) or not isinstance(sweep_options, dict):
        raise HttpError(422, "model_options/sweep_options must be objects")
    return system, technique.lower(), model_options, sweep_options


class PlanningService:
    """One server process: listener, admission queue, supervised workers."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        if cfg.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {cfg.queue_limit}")
        self.telemetry = ServiceTelemetry(sample_interval=cfg.sample_interval)
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_threshold,
            base_backoff=cfg.breaker_backoff,
        )
        self.supervisor = PlanSupervisor(workers=cfg.workers)
        self.studies = StudyManager(
            cfg.service_dir,
            max_concurrent=cfg.max_studies,
            task_timeout=cfg.task_timeout,
        )
        self._server: asyncio.AbstractServer | None = None
        self._sampler: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self._slots = asyncio.Semaphore(max(1, cfg.workers))
        self._waiting = 0  # admission queue depth
        self._active = 0  # handlers currently inside a slot
        self._open_requests = 0  # handlers at any stage (for drain)
        self._inflight: dict[str, asyncio.Future] = {}  # single-flight
        self._request_ids = itertools.count()

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._sampler = asyncio.create_task(self._sample_loop())
        url = f"http://{self.config.host}:{self.port}"
        # Machine-readable announcement first (tests and scripts parse
        # it to discover an ephemeral port), human line on stderr.
        print(f"SERVE {url}", flush=True)
        print(f"service: listening on {url}", file=sys.stderr)

    async def _sample_loop(self) -> None:
        while True:
            self.telemetry.sample(self._waiting, self._active)
            await asyncio.sleep(self.config.sample_interval)

    def request_shutdown(self, sig: int = signal.SIGTERM) -> None:
        if not self._shutdown.is_set():
            print(
                f"service: received {signal.Signals(sig).name}; draining "
                "(listener closed, in-flight work finishing)",
                file=sys.stderr,
            )
            self._shutdown.set()

    async def run_until_shutdown(self) -> int:
        """Serve until :meth:`request_shutdown`; returns the exit code."""
        await self._shutdown.wait()
        return await self._drain()

    async def _drain(self) -> int:
        cfg = self.config
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + cfg.drain_timeout
        while self._open_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        study_budget = max(0.1, deadline - time.monotonic())
        studies_done = await asyncio.to_thread(self.studies.drain, study_budget)
        if self._sampler is not None:
            self._sampler.cancel()
        self.supervisor.shutdown()
        if self._open_requests or not studies_done:
            print(
                "service: drain incomplete "
                f"({self._open_requests} request(s) abandoned, journaled "
                "studies resumable); exiting "
                f"{EXIT_DRAIN_ABANDONED}",
                file=sys.stderr,
            )
            return EXIT_DRAIN_ABANDONED
        print("service: drained clean; bye", file=sys.stderr)
        return 0

    # -- connection handling -------------------------------------------
    def _deadline_for(self, request: Request) -> float:
        raw = request.headers.get(
            "x-deadline-ms", request.query.get("deadline_ms", "")
        )
        if raw:
            try:
                deadline = float(raw) / 1000.0
            except ValueError as err:
                raise HttpError(
                    400, f"bad deadline {raw!r} (milliseconds expected)"
                ) from err
            if deadline <= 0:
                raise HttpError(400, "deadline must be positive")
            return min(deadline, self.config.max_deadline)
        return self.config.default_deadline

    @staticmethod
    def _path_class(path: str) -> str:
        if path.startswith("/study/"):
            return "/study/*"
        return path

    async def _handle_connection(self, reader, writer) -> None:
        self._open_requests += 1
        try:
            await self._serve_one(reader, writer)
        finally:
            self._open_requests -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader, writer) -> None:
        started = time.perf_counter()
        request: Request | None = None
        try:
            request = await asyncio.wait_for(read_request(reader), timeout=10.0)
        except asyncio.TimeoutError:
            writer.write(render_response(error_response(
                HttpError(408, "timed out reading the request")
            )))
            return
        except HttpError as err:
            writer.write(render_response(error_response(err)))
            return
        if request is None:
            return

        index = next(self._request_ids)
        if chaos.claim_drop_connection(index):
            # Chaos: slam the connection shut mid-request; the client
            # must see a clean connection error, never a hang.
            writer.transport.abort()
            return

        try:
            deadline = self._deadline_for(request)
            response = await asyncio.wait_for(
                self._dispatch(request, index, started, deadline), deadline
            )
        except asyncio.TimeoutError:
            self.telemetry.record_deadline()
            response = error_response(HttpError(
                504,
                f"request exceeded its {deadline * 1000:.0f}ms deadline",
            ))
        except HttpError as err:
            response = error_response(err)
        except BreakerOpen as err:
            response = error_response(HttpError(
                503, str(err),
                headers={"retry-after": f"{max(1, round(err.retry_after))}"},
            ))
        except asyncio.CancelledError:
            raise
        except Exception as err:  # noqa: BLE001 — the server must not die
            print(
                f"service: handler error on {request.method} "
                f"{request.path}: {type(err).__name__}: {err}",
                file=sys.stderr,
            )
            response = error_response(HttpError(
                500, f"{type(err).__name__}: {err}"
            ))
        try:
            writer.write(render_response(response))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        self.telemetry.record_request(
            self._path_class(request.path),
            response.status,
            time.perf_counter() - started,
        )

    # -- routing -------------------------------------------------------
    async def _dispatch(
        self, request: Request, index: int, started: float, deadline: float
    ) -> Response:
        slow = chaos.service_slow_seconds()
        if slow > 0:
            await asyncio.sleep(slow)
        method, path = request.method, request.path
        if path == "/health":
            if method != "GET":
                raise HttpError(405, "health is GET-only")
            return Response(200, self._health_body())
        if path == "/plan":
            if method != "POST":
                raise HttpError(405, "plan is POST-only")
            async with self._admitted():
                return await self._plan(request, index, started, deadline)
        if path == "/study":
            if method != "POST":
                raise HttpError(405, "study submission is POST-only")
            async with self._admitted():
                return self._submit_study(request)
        if path.startswith("/study/"):
            if method != "GET":
                raise HttpError(405, "study polling is GET-only")
            job = self.studies.get(path[len("/study/"):])
            return Response(200, job.describe())
        raise HttpError(404, f"no route for {method} {path}")

    def _admitted(self):
        return _Admission(self)

    # -- /plan ----------------------------------------------------------
    def _plan_body(self, system, technique, result, cache_state) -> dict:
        return {
            "system": system.name,
            "technique": technique,
            "cache": cache_state,
            "plan": result.plan.to_dict(),
            "predicted_time": result.predicted_time,
            "predicted_efficiency": result.predicted_efficiency,
            "result": result.to_dict(),
        }

    async def _plan(
        self, request: Request, index: int, started: float, deadline: float
    ) -> Response:
        system, technique, model_options, sweep_options = _parse_plan_request(
            request.json()
        )
        key = cache_key(system, technique, model_options, sweep_options)
        cache = get_active_cache()
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return Response(
                    200, self._plan_body(system, technique, cached, "hit")
                )

        existing = self._inflight.get(key)
        if existing is not None:
            self.telemetry.record_coalesced()
            try:
                result = await asyncio.shield(existing)
            except _UpstreamFailed as err:
                raise HttpError(
                    503,
                    f"the coalesced-onto computation failed ({err}); retry",
                    headers={"retry-after": "1"},
                ) from err
            return Response(
                200, self._plan_body(system, technique, result, "coalesced")
            )

        self.breaker.check()
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        try:
            budget = max(0.1, deadline - (time.perf_counter() - started))
            if self.config.task_timeout is not None:
                budget = min(budget, self.config.task_timeout)
            raw = await self.supervisor.run(
                _compute_plan,
                index, system.to_dict(), technique,
                model_options, sweep_options,
                timeout=budget,
            )
            result = OptimizationResult.from_dict(raw)
        except PlanTimeout as err:
            self.breaker.record_failure()
            self.telemetry.record_deadline()
            self._fail_inflight(key, fut, err)
            raise HttpError(504, str(err)) from err
        except WorkerCrashed as err:
            self.breaker.record_failure()
            self._fail_inflight(key, fut, err)
            raise HttpError(
                500, f"plan computation crashed its workers: {err}"
            ) from err
        except BaseException as err:
            # Model's own exception (bad options), cancellation, etc. —
            # not evidence the pool is broken; the breaker stays put.
            self._fail_inflight(key, fut, err)
            raise
        self.breaker.record_success()
        if cache is not None:
            cache.put(key, result)
        self._inflight.pop(key, None)
        fut.set_result(result)
        return Response(200, self._plan_body(system, technique, result, "miss"))

    def _fail_inflight(self, key: str, fut: asyncio.Future, err) -> None:
        self._inflight.pop(key, None)
        if not fut.done():
            fut.set_exception(_UpstreamFailed(f"{type(err).__name__}: {err}"))
            fut.exception()  # mark retrieved: no-waiter case must not warn

    # -- /study ---------------------------------------------------------
    def _submit_study(self, request: Request) -> Response:
        data = request.json()
        if not isinstance(data, dict):
            raise HttpError(422, "study request must be a StudySpec object")
        job, created = self.studies.submit(data)
        if not created:
            self.telemetry.record_coalesced()
        status = 202 if job.status == "running" else 200
        return Response(status, job.describe(include_outcomes=True))

    # -- /health --------------------------------------------------------
    def _health_body(self) -> dict:
        cache = get_active_cache()
        if cache is None:
            cache_block: dict = {"active": False}
        else:
            stats = cache.stats
            seen = stats.hits + stats.misses
            cache_block = {
                "active": True,
                "hits": stats.hits,
                "misses": stats.misses,
                "disk_hits": stats.disk_hits,
                "hit_ratio": (stats.hits / seen) if seen else None,
            }
        return {
            "status": "draining" if self._shutdown.is_set() else "ok",
            "queue": {
                "depth": self._waiting,
                "limit": self.config.queue_limit,
                "in_flight": self._active,
                "slots": max(1, self.config.workers),
            },
            "breaker": self.breaker.describe(),
            "supervisor": self.supervisor.describe(),
            "cache": cache_block,
            "studies": self.studies.describe(),
            "metrics": self.telemetry.snapshot(),
        }


class _Admission:
    """Bounded admission: queue up to ``queue_limit``, then shed 429s."""

    def __init__(self, service: PlanningService):
        self.service = service

    async def __aenter__(self):
        svc = self.service
        if svc._shutdown.is_set():
            raise HttpError(503, "service is draining")
        if svc._waiting >= svc.config.queue_limit:
            svc.telemetry.record_shed()
            raise HttpError(
                429,
                f"admission queue full ({svc._waiting} waiting, "
                f"limit {svc.config.queue_limit})",
                headers={"retry-after": "1"},
            )
        svc._waiting += 1
        try:
            # The handler's wait_for deadline covers this wait too: a
            # request that queues past its deadline 504s, never hangs.
            await svc._slots.acquire()
        finally:
            svc._waiting -= 1
        svc._active += 1
        return self

    async def __aexit__(self, exc_type, exc, tb):
        self.service._active -= 1
        self.service._slots.release()
        return False


async def _amain(config: ServiceConfig) -> int:
    service = PlanningService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            sig, service.request_shutdown, sig
        )
    return await service.run_until_shutdown()


def serve(config: ServiceConfig | None = None) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    return asyncio.run(_amain(config or ServiceConfig()))
