"""Planning-as-a-service: the asyncio HTTP layer over the repro stack.

``repro serve`` starts :class:`PlanningService` — ``POST /plan`` answers
optimal checkpoint plans from a supervised worker pool, ``POST /study``
runs journaled studies in the background, and ``GET /health`` exposes
queue depth, circuit-breaker state and three-tier latency metrics.
Stdlib only; robustness (deadlines, backpressure, graceful drain) is the
design center — see DESIGN.md §12.
"""

from .app import (
    EXIT_DRAIN_ABANDONED,
    PlanningService,
    ServiceConfig,
    serve,
)
from .http import HttpError, Request, Response
from .studies import StudyJob, StudyManager
from .supervisor import (
    BreakerOpen,
    CircuitBreaker,
    PlanSupervisor,
    PlanTimeout,
    WorkerCrashed,
)
from .telemetry import ServiceTelemetry

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "EXIT_DRAIN_ABANDONED",
    "HttpError",
    "PlanSupervisor",
    "PlanTimeout",
    "PlanningService",
    "Request",
    "Response",
    "ServiceConfig",
    "ServiceTelemetry",
    "StudyJob",
    "StudyManager",
    "WorkerCrashed",
    "serve",
]
