"""Minimal asyncio HTTP/1.1 plumbing for the planning service.

Stdlib only, by project rule — no aiohttp, no frameworks.  This module
knows just enough HTTP for the service's contract: parse one request
(request line, headers, ``Content-Length`` body) from an
``asyncio.StreamReader``, render one response, close the connection
(``Connection: close`` on every response — the service optimizes for
robustness and testability, not keep-alive throughput; clients that care
about connection reuse sit behind a proxy).

Request bodies are capped (:data:`MAX_BODY_BYTES`) so a hostile or
confused client cannot balloon the server's memory, and header parsing is
budgeted the same way — overload must degrade to clean ``4xx``/``5xx``
responses, never to an OOM kill.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "error_response",
    "read_request",
    "render_response",
]

#: Largest accepted request body; a StudySpec JSON is a few kilobytes.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Largest accepted request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be served; rendered as a JSON error response."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body parsed as JSON (:class:`HttpError` 400 on garbage)."""
        if not self.body:
            raise HttpError(400, "request body is empty (expected JSON)")
        try:
            return json.loads(self.body)
        except ValueError as err:
            raise HttpError(400, f"request body is not valid JSON: {err}") from err


@dataclass
class Response:
    """One response about to be rendered; body may be any JSON-able value."""

    status: int = 200
    body: object = None
    headers: dict[str, str] = field(default_factory=dict)


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` when the client closed the connection.

    Malformed input raises :class:`HttpError` (the connection handler
    renders it and closes) — a bad client costs one error response, not a
    stack trace in the server log.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request head") from err
    except asyncio.LimitOverrunError as err:
        raise HttpError(413, "request head too large") from err
    if len(head) > _MAX_HEAD_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as err:
            raise HttpError(400, "malformed Content-Length") from err
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as err:
            raise HttpError(400, "truncated request body") from err

    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def render_response(response: Response) -> bytes:
    """Serialize ``response``; non-``bytes`` bodies are JSON-encoded."""
    body = response.body
    content_type = "application/octet-stream"
    if body is None:
        payload = b""
    elif isinstance(body, bytes):
        payload = body
    elif isinstance(body, str):
        payload = body.encode()
        content_type = "text/plain; charset=utf-8"
    else:
        payload = (json.dumps(body, indent=2, sort_keys=True) + "\n").encode()
        content_type = "application/json"
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "content-type": content_type,
        "content-length": str(len(payload)),
        "connection": "close",
        **{k.lower(): str(v) for k, v in response.headers.items()},
    }
    for name, value in headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


def error_response(err: HttpError) -> Response:
    """The JSON rendering of an :class:`HttpError`."""
    return Response(
        status=err.status,
        body={"error": err.message, "status": err.status},
        headers=err.headers,
    )
