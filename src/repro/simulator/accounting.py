"""Per-event-category time accounting for simulated trials.

Figure 3 of the paper breaks application time into the event taxonomy of
Section III-B: baseline work, successful/failed checkpoints,
successful/failed restarts, and recomputation of progress lost to failures
during computation or during checkpoints.  :class:`TimeBreakdown` carries
those buckets (plus ``rework_restart``, the extra progress lost when a
*restart* is interrupted by a higher-severity failure — the simulator can
observe it even though the analytic models fold it elsewhere) and
:class:`TrialResult` wraps one simulated execution.

Invariants (enforced by the engine and asserted in the test suite):

* the category times sum to the trial's total time;
* ``work`` equals the application progress retained at the end;
* total compute time equals ``work`` plus the three rework buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["TimeBreakdown", "TrialResult", "SimulationStats"]

#: Ordering used by tables and the Figure 3 harness.
CATEGORY_ORDER = (
    "work",
    "checkpoint",
    "failed_checkpoint",
    "restart",
    "failed_restart",
    "rework_compute",
    "rework_checkpoint",
    "rework_restart",
)


@dataclass
class TimeBreakdown:
    """Minutes spent per event category during one (or many) executions."""

    work: float = 0.0
    checkpoint: float = 0.0
    failed_checkpoint: float = 0.0
    restart: float = 0.0
    failed_restart: float = 0.0
    rework_compute: float = 0.0
    rework_checkpoint: float = 0.0
    rework_restart: float = 0.0

    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in CATEGORY_ORDER}

    def fractions(self) -> dict[str, float]:
        """Shares of total time per category (the Figure 3 quantity)."""
        tot = self.total()
        if tot <= 0:
            return {name: 0.0 for name in CATEGORY_ORDER}
        return {name: getattr(self, name) / tot for name in CATEGORY_ORDER}

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


@dataclass
class TrialResult:
    """Outcome of simulating one application execution.

    ``completed`` is False when the simulation horizon cap fired first; in
    that case ``efficiency`` is the utilization estimator
    ``work_done / total_time``, which converges to the same steady-state
    value (DESIGN.md, decision 5).
    """

    total_time: float
    work_done: float
    completed: bool
    times: TimeBreakdown
    failures_by_severity: tuple[int, ...]
    checkpoints_completed: int = 0
    checkpoints_failed: int = 0
    #: Previously-completed positions re-established at zero cost under
    #: the default ``recheckpoint="free"`` policy.
    checkpoints_restored: int = 0
    restarts_completed: int = 0
    restarts_failed: int = 0
    scratch_restarts: int = 0
    #: Silent-error detections that fired during the trial (each one
    #: invalidates post-strike checkpoints and forces a rollback); zero
    #: unless the run was simulated with ``silent_errors``.
    silent_detections: int = 0
    #: Silent strikes still armed when the application completed — the
    #: run finished on possibly-corrupted state.
    silent_undetected: int = 0
    #: Plan swaps performed by the adaptive replanner (zero outside
    #: :mod:`repro.simulator.adaptive` runs, keeping the engines'
    #: bitwise-equality contract untouched).
    replans: int = 0
    #: Wall-clock minutes from the first regime change to the first
    #: drift detection (``None`` when nothing drifted or nothing was
    #: detected — not 0.0, and not NaN, which would poison the dataclass
    #: equality the engine-parity assertions rely on).
    detection_latency: "float | None" = None
    #: Makespan excess over the schedule-aware oracle walker for the same
    #: failure stream (``None`` when no oracle attribution was run).
    regret: "float | None" = None
    #: Ordered event timeline; populated when ``record_events=True``.
    events: "list | None" = None

    @property
    def efficiency(self) -> float:
        """The paper's metric: useful work per unit wall-clock time."""
        if self.total_time <= 0:
            return 1.0 if self.work_done > 0 else 0.0
        return self.work_done / self.total_time

    @property
    def total_failures(self) -> int:
        return int(sum(self.failures_by_severity))


@dataclass
class SimulationStats:
    """Aggregate over repeated trials (the bars of Figures 2, 4 and 5)."""

    trials: int
    efficiencies: np.ndarray
    mean_breakdown: TimeBreakdown
    completed_fraction: float
    mean_total_time: float
    mean_failures: float

    @property
    def mean_efficiency(self) -> float:
        return float(np.mean(self.efficiencies))

    @property
    def std_efficiency(self) -> float:
        """Population std across trials, the error bars in the figures."""
        return float(np.std(self.efficiencies))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean efficiency."""
        if self.trials <= 1:
            return (self.mean_efficiency, self.mean_efficiency)
        half = z * float(np.std(self.efficiencies, ddof=1)) / math.sqrt(self.trials)
        return (self.mean_efficiency - half, self.mean_efficiency + half)

    @classmethod
    def from_trials(cls, results: list[TrialResult]) -> "SimulationStats":
        if not results:
            raise ValueError("cannot aggregate zero trials")
        effs = np.array([r.efficiency for r in results], dtype=float)
        breakdown = TimeBreakdown()
        for r in results:
            breakdown = breakdown + r.times
        return cls(
            trials=len(results),
            efficiencies=effs,
            mean_breakdown=breakdown.scaled(1.0 / len(results)),
            completed_fraction=sum(r.completed for r in results) / len(results),
            mean_total_time=float(np.mean([r.total_time for r in results])),
            mean_failures=float(np.mean([r.total_failures for r in results])),
        )
