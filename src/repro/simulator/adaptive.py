"""Online drift detection and mid-run replanning under regime schedules.

The paper's plans are computed once, against one stationary spec.  Under
a :class:`~repro.systems.regime.RegimeSchedule` that spec goes stale
mid-run, and the interesting question becomes *operational*: can a run
that only observes its own failures notice the drift and re-optimize in
time to beat the static plan?  This module answers it with three walker
policies sharing one simulation loop (so the comparison isolates the
planning policy, never the mechanics):

* ``static`` — the paper's world: the initial plan, never revisited;
* ``adaptive`` — a sequential two-sided CUSUM detector watches the
  observed inter-failure gaps against the spec's rate; past the
  threshold it re-optimizes against the windowed live rate estimate and
  swaps plans at the next checkpoint commit (never mid-interval — the
  committed checkpoint is the only state both plans agree on);
* ``oracle`` — knows the schedule: swaps to
  :func:`~repro.core.regime.plan_regimes`'s per-segment plan at the
  first commit inside each new segment.  The unbeatable-by-construction
  reference that turns the adaptive walker's excess into *regret*.

Detector math: for a drift ratio ``rho`` the log-likelihood ratio of
rate ``rho * lam0`` against ``lam0`` accrues ``-(rho - 1) * lam0 * dt``
per failure-free minute and jumps by ``log(rho)`` at each failure; the
CUSUM statistic ``S <- max(0, S + llr)`` crosses the threshold ``h``
after a handful of incriminating gaps while staying near zero on-spec
(Page 1954, in its continuous-time Poisson form).  The mirrored
statistic with ratio ``1 / rho`` catches the machine *calming down* —
the storm regime's second boundary — and because the time term accrues
between failures too (polled at checkpoint commits), calming is
detected even when failures stop entirely.  After each replan the
reference rate becomes the estimate just acted on, so further drift
keeps being detectable.

Simplifications, stated loudly: re-optimization itself is free in
simulated time (planning runs beside the application); cost drift is
folded into replans from *measured* checkpoint/restart durations (a run
knows how long its own writes take — only the failure rate needs a
detector); and replanned plans are cached on a 5% log-rate grid so
repeated detections of the same regime do not re-run the sweep.

The walker is scalar-only by design — replanning is control flow the SoA
batch engine cannot vectorize — and it never touches
:func:`~repro.simulator.engine.simulate_trial`, so the engines'
bitwise-equality contract is untouched.  With ``policy="static"`` and no
cost drift the walker is behaviorally identical to the engine (asserted
in the test suite), which anchors its mechanics to the ground truth.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from ..core.dauwe import DauweModel
from ..core.plan import CheckpointPlan
from ..core.regime import RegimePlanResult, plan_regimes
from ..failures.registry import RegimeSourceFactory
from ..failures.sources import FailureSource
from ..systems.regime import RegimeSchedule
from ..systems.spec import SystemSpec
from .accounting import TimeBreakdown, TrialResult
from .engine import default_max_time

__all__ = [
    "AdaptiveSpec",
    "AdaptiveComparison",
    "compare_adaptive",
    "simulate_adaptive_trial",
]

_EPS = 1e-9

#: Replan-cache sentinel distinguishing "never tried" from "infeasible".
_MISSING = object()

#: Keys accepted by :meth:`AdaptiveSpec.from_dict`.
_ADAPTIVE_FIELDS = ("threshold", "ratio", "window")


@dataclass(frozen=True)
class AdaptiveSpec:
    """Tuning knobs of the drift detector (strict-JSON, frozen).

    ``threshold`` is the CUSUM alarm level ``h`` (higher: fewer false
    positives, longer detection delay); ``ratio`` the drift magnitude
    the test is tuned for (the alarm still fires on other magnitudes,
    just not minimax-optimally); ``window`` the number of most recent
    gaps the post-alarm rate estimate averages over.
    """

    threshold: float = 8.0
    ratio: float = 3.0
    window: int = 8

    def __post_init__(self) -> None:
        threshold = float(self.threshold)
        if not math.isfinite(threshold) or threshold <= 0:
            raise ValueError(f"threshold must be positive and finite, got {threshold}")
        ratio = float(self.ratio)
        if not math.isfinite(ratio) or ratio <= 1.0:
            raise ValueError(f"ratio must be a finite number > 1, got {ratio}")
        window = int(self.window)
        if window < 2:
            raise ValueError(f"window must be at least 2 gaps, got {window}")
        object.__setattr__(self, "threshold", threshold)
        object.__setattr__(self, "ratio", ratio)
        object.__setattr__(self, "window", window)

    def to_dict(self) -> dict[str, Any]:
        """JSON form; defaults are omitted (lossless round-trip)."""
        out: dict[str, Any] = {}
        if self.threshold != 8.0:
            out["threshold"] = self.threshold
        if self.ratio != 3.0:
            out["ratio"] = self.ratio
        if self.window != 8:
            out["window"] = self.window
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptiveSpec":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"adaptive spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(_ADAPTIVE_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown adaptive spec field(s) {sorted(unknown)}; "
                f"known fields: {list(_ADAPTIVE_FIELDS)}"
            )
        return cls(
            threshold=float(data.get("threshold", 8.0)),
            ratio=float(data.get("ratio", 3.0)),
            window=int(data.get("window", 8)),
        )

    @classmethod
    def resolve(cls, value: "AdaptiveSpec | Mapping | bool | None") -> "AdaptiveSpec | None":
        """Accept a spec, its dict form, ``True`` (defaults), or ``None``."""
        if value is None or isinstance(value, AdaptiveSpec):
            return value
        if value is True:
            return cls()
        if value is False:
            return None
        return cls.from_dict(value)


class _Cusum:
    """Two-sided CUSUM for a Poisson failure process, in continuous time.

    The log-likelihood ratio of rate ``rho * lam0`` against ``lam0``
    over an interval accrues ``-(rho - 1) * lam0 * dt`` per failure-free
    unit of time and jumps by ``log(rho)`` at each failure (and the
    mirror image with ratio ``1 / rho`` for the calming side); each side
    keeps the running maximum-vs-minimum via the usual ``max(0, .)``
    clamp.  Keeping the *time* term separate from the *event* term —
    rather than folding both into per-gap increments — lets the walker
    poll the detector at checkpoint commits, so a machine that stops
    failing altogether still produces calming evidence (the censored
    open gap).  Without that, relaxing after a transient storm on a
    near-idle machine would require failures that never come.

    The calming side alarms at twice the threshold: relaxing is never
    urgent (the current plan is safe, merely paying overhead), while a
    spurious calming replan on a still-hostile machine loses real work
    before the up side wins it back — the asymmetry buys stability for
    a bounded extra stretch of conservative checkpointing.
    """

    __slots__ = ("spec", "lam0", "s_up", "s_dn", "gaps", "last_t", "last_event_t")

    #: Calming alarms fire at ``_CALM_FACTOR * threshold``.
    _CALM_FACTOR = 2.0

    def __init__(self, spec: AdaptiveSpec, lam0: float) -> None:
        self.spec = spec
        self.lam0 = lam0
        self.s_up = 0.0
        self.s_dn = 0.0
        self.gaps: deque[float] = deque(maxlen=spec.window)
        self.last_t = 0.0
        self.last_event_t = 0.0

    def advance(self, t: float) -> bool:
        """Accrue failure-free time up to ``t``; True on a (calming) alarm."""
        dt = t - self.last_t
        if dt > 0:
            rho = self.spec.ratio
            x = self.lam0 * dt
            self.s_up = max(0.0, self.s_up - (rho - 1.0) * x)
            self.s_dn = max(0.0, self.s_dn + (1.0 - 1.0 / rho) * x)
            self.last_t = t
        h = self.spec.threshold
        return self.s_up >= h or self.s_dn >= self._CALM_FACTOR * h

    def observe(self, t: float) -> bool:
        """Feed a failure at wall-clock ``t``; True when a side alarms."""
        alarmed = self.advance(t)
        rho = self.spec.ratio
        self.s_up = max(0.0, self.s_up + math.log(rho))
        self.s_dn = max(0.0, self.s_dn - math.log(rho))
        self.gaps.append(t - self.last_event_t)
        self.last_event_t = t
        h = self.spec.threshold
        return alarmed or self.s_up >= h or self.s_dn >= self._CALM_FACTOR * h

    def estimate(self, t: float) -> float:
        """Live rate from the recent gaps plus the censored open gap."""
        open_gap = max(0.0, t - self.last_event_t)
        total = sum(self.gaps) + open_gap
        if total <= 0:
            return self.lam0
        count = len(self.gaps)
        # No window yet (a pure calming alarm before any failure): a
        # half-event continuity correction keeps the estimate positive.
        return (count if count else 0.5) / total

    def rebase(self, lam0: float, t: float) -> None:
        """Reset around a new reference rate after a replan."""
        self.lam0 = lam0
        self.s_up = 0.0
        self.s_dn = 0.0
        self.gaps.clear()
        self.last_t = t


def _quantized_rate(rate: float) -> float:
    """Snap a rate estimate to a 5% logarithmic grid (replan cache key)."""
    return 10.0 ** (round(math.log10(rate) * 20.0) / 20.0)


def simulate_adaptive_trial(
    system: SystemSpec,
    plan: CheckpointPlan,
    source: FailureSource,
    schedule: RegimeSchedule | None = None,
    *,
    policy: str = "adaptive",
    spec: AdaptiveSpec | Mapping | None = None,
    oracle_plans: RegimePlanResult | None = None,
    max_time: float | None = None,
    model_factory=DauweModel,
    model_options: Mapping[str, Any] | None = None,
    replan_cache: dict | None = None,
) -> TrialResult:
    """Walk one execution under a (possibly drifting) failure stream.

    ``source`` supplies the failures (typically spawned from a
    :class:`~repro.failures.registry.RegimeSourceFactory` so the stream
    actually drifts per ``schedule``); ``schedule`` supplies the *cost*
    drift every policy pays (checkpoint/restart scales — environmental,
    not knowledge) and the onset the reported detection latency is
    measured from.  The adaptive planner itself never reads it.

    ``policy`` is ``"static"``, ``"adaptive"`` or ``"oracle"`` (the
    latter requires ``oracle_plans`` from
    :func:`~repro.core.regime.plan_regimes`).  Fail-stop only, ``retry``
    restart semantics, free re-checkpointing — the engine's defaults.
    """
    if policy not in ("static", "adaptive", "oracle"):
        raise ValueError(f"unknown adaptive policy {policy!r}")
    if policy == "oracle" and oracle_plans is None:
        raise ValueError("policy='oracle' requires oracle_plans (plan_regimes result)")
    if plan.top_level > system.num_levels:
        raise ValueError(
            f"plan uses level {plan.top_level} but {system.name} has "
            f"{system.num_levels} levels"
        )
    spec = AdaptiveSpec.resolve(spec) or AdaptiveSpec()
    cap = default_max_time(system) if max_time is None else float(max_time)
    model_options = dict(model_options or {})
    if replan_cache is None:
        replan_cache = {}

    T_B = system.baseline_time
    num_sev = system.num_levels
    trivial_costs = schedule is None or all(
        seg.checkpoint_scale == 1.0 and seg.restart_scale == 1.0
        for seg in schedule.segments
    )

    def seg_scales(t: float) -> tuple[float, float]:
        """(checkpoint, restart) cost factors in force at wall-clock ``t``."""
        if trivial_costs:
            return 1.0, 1.0
        seg = schedule.segments[schedule.segment_at(t)]
        return seg.checkpoint_scale, seg.restart_scale

    # --- plan compilation (re-done at every swap) ---------------------
    def compile_plan(p: CheckpointPlan):
        period = math.prod(n + 1 for n in p.counts) if p.counts else 1
        pattern = [p.level_at_position(m) for m in range(1, period + 1)]
        recover = [p.recovery_level(s) for s in range(1, num_sev + 1)]
        return p.tau0, period, pattern, recover, p.levels

    tau0, period, pattern, recover, used_levels = compile_plan(plan)

    # --- state --------------------------------------------------------
    t = 0.0
    work = 0.0
    # Checkpoint positions sit at ``origin + m * tau0``.  The origin
    # moves only at plan swaps (and at recoveries to a pre-swap, off-grid
    # checkpoint); keeping positions as ``m * tau0`` products rather than
    # accumulated sums makes the static-policy walk bitwise-identical to
    # :func:`~repro.simulator.engine.simulate_trial`.
    origin = 0.0
    next_m = 1  # next checkpoint position index relative to the origin
    # Newest valid checkpoint per *system* level, as an absolute work
    # position (plans come and go; saved state outlives them).
    valid = [-1.0] * num_sev
    recovering = False
    pending_sev = 0
    rollback_ref = 0.0
    # Highest position (absolute work) ever checkpointed *on the current
    # epoch's grid* — the free-recheckpoint horizon.  Reset at swaps: a
    # new grid's positions were never saved, so nothing is free there.
    max_completed = 0.0

    compute_time = 0.0
    acct = TimeBreakdown()
    n_by_sev = [0] * num_sev
    ckpt_ok = ckpt_fail = rst_ok = rst_fail = scratch = restored = 0
    replans = 0
    first_detect_t: float | None = None
    pending_plan: CheckpointPlan | None = None
    cur_seg = 0  # oracle's notion of which segment's plan is active

    detector = _Cusum(spec, system.failure_rate) if policy == "adaptive" else None
    cur_plan = plan
    # Cost factors as last measured from a paid checkpoint/restart.
    obs_scales = (1.0, 1.0)

    fail_t, fail_s = source.next_after(0.0)
    completed = False

    def best_recovery(sev: int) -> tuple[float, int]:
        """(position, system level) of the newest checkpoint covering ``sev``.

        Position 0 with the covering-level fallback means scratch; level
        -1 means not even the current plan covers the severity (restart
        at the severity's own level, as the engine does).
        """
        best = 0.0
        best_lv = -1
        for lv in range(sev, num_sev + 1):
            if valid[lv - 1] > best:
                best = valid[lv - 1]
                best_lv = lv
        if best > 0:
            return best, best_lv
        cover = recover[sev - 1]
        return 0.0, (cover if cover is not None else -1)

    def replan_system(lam_hat: float) -> SystemSpec:
        """The system the replanner optimizes: live rate, observed costs.

        The cost factors are *measured*, not read from the schedule — a
        run knows exactly how long its own checkpoints and restarts have
        been taking, so pricing them into the replan is observational,
        unlike the failure rate which needs the detector.
        """
        obs_c, obs_r = obs_scales
        if obs_c == 1.0 and obs_r == 1.0:
            return system.with_mtbf(1.0 / lam_hat)
        ckpt = tuple(c * obs_c for c in system.checkpoint_times)
        rest = system.restart_times
        if rest is None and obs_r != obs_c:
            rest = system.checkpoint_times
        if rest is not None:
            rest = tuple(r * obs_r for r in rest)
        return replace(
            system, mtbf=1.0 / lam_hat, checkpoint_times=ckpt, restart_times=rest
        )

    def on_alarm(now: float) -> None:
        """Re-optimize against the live estimate; swap at the next commit.

        An estimate so hostile that no plan is feasible keeps the
        current plan flying (there is nothing better to swap to); the
        detector still rebases to the estimate so a later calming is
        detected against it.  A replan that lands on the already-active
        plan is a no-op (no swap, no replan counted).
        """
        nonlocal pending_plan, first_detect_t
        if first_detect_t is None:
            first_detect_t = now
        lam_hat = _quantized_rate(detector.estimate(now))
        key = (lam_hat, obs_scales)
        new_plan = replan_cache.get(key, _MISSING)
        if new_plan is _MISSING:
            try:
                new_plan = (
                    model_factory(replan_system(lam_hat), **model_options)
                    .optimize()
                    .plan
                )
            except RuntimeError:
                new_plan = None
            replan_cache[key] = new_plan
        if new_plan is not None and new_plan != cur_plan:
            pending_plan = new_plan
        detector.rebase(lam_hat, now)

    def on_failure(category: str) -> None:
        nonlocal recovering, pending_sev, rollback_ref, fail_t, fail_s
        s = fail_s
        n_by_sev[s - 1] += 1
        if detector is not None:
            # Keep observing even while a swap is pending — the alarm is
            # simply not re-acted on.  Starving the detector here would
            # corrupt the next estimate (a censored gap spanning every
            # ignored failure reads as a calm machine).
            alarmed = detector.observe(fail_t)
            if alarmed and pending_plan is None:
                on_alarm(fail_t)
        if recovering:
            if s > pending_sev:
                pending_sev = s
        else:
            recovering = True
            pending_sev = s
            rollback_ref = work
        for lv in range(1, s):
            valid[lv - 1] = -1.0
        pos, _ = best_recovery(pending_sev)
        lost = rollback_ref - pos
        if lost > 0:
            if category == "compute":
                acct.rework_compute += lost
            elif category == "checkpoint":
                acct.rework_checkpoint += lost
            else:
                acct.rework_restart += lost
            rollback_ref = pos
        fail_t, fail_s = source.next_after(fail_t)

    def swap_to(new_plan: CheckpointPlan, anchor: float) -> None:
        """Install ``new_plan`` with its grid anchored at ``anchor``."""
        nonlocal tau0, period, pattern, recover, used_levels
        nonlocal origin, next_m, max_completed, replans, cur_plan
        tau0, period, pattern, recover, used_levels = compile_plan(new_plan)
        cur_plan = new_plan
        origin = anchor
        next_m = 1
        max_completed = anchor  # nothing on the new grid was ever saved
        replans += 1

    def maybe_swap(anchor: float) -> None:
        """Plan-swap hook, called at every checkpoint commit.

        For the adaptive policy the commit is also where the detector
        accrues failure-free (calming) evidence — the poll that lets a
        machine that stopped failing relax its plan without waiting for
        failures that never come.
        """
        nonlocal pending_plan, cur_seg
        if policy == "adaptive":
            if pending_plan is not None:
                swap_to(pending_plan, anchor)
                pending_plan = None
            elif detector.advance(t):
                on_alarm(t)
        elif policy == "oracle":
            j = schedule.segment_at(t)
            if j != cur_seg:
                cur_seg = j
                swap_to(oracle_plans.plan_for_segment(j), anchor)

    while True:
        if work >= T_B - _EPS and not recovering:
            completed = True
            break
        if t >= cap:
            break

        if recovering:
            pos, lv = best_recovery(pending_sev)
            _, r_scale = seg_scales(t)
            dur = (
                system.restart_time(lv) if lv > 0 else system.restart_time(pending_sev)
            ) * r_scale
            if fail_t - t < dur:
                acct.failed_restart += fail_t - t
                rst_fail += 1
                t = fail_t
                on_failure("restart")
                continue
            t += dur
            acct.restart += dur
            rst_ok += 1
            obs_scales = (obs_scales[0], r_scale)
            if pos <= 0:
                scratch += 1
            work = pos
            recovering = False
            pending_sev = 0
            # Recoveries to a position on the current grid keep the
            # origin (and the free-recheckpoint horizon); a pre-swap
            # checkpoint is off-grid and re-anchors everything there.
            steps = (pos - origin) / tau0
            if pos >= origin and abs(steps - round(steps)) <= 1e-9:
                next_m = int(round(steps)) + 1
            else:
                origin = pos
                next_m = 1
                max_completed = pos
            # A completed restart is also a swap point: the recovered
            # checkpoint is exactly as consistent an anchor as a fresh
            # commit, and without it a pending swap starves whenever the
            # current plan is too hopeless to ever reach a commit.
            maybe_swap(pos)
            continue

        boundary = origin + next_m * tau0
        if work < boundary - _EPS or boundary > T_B + _EPS:
            target = min(boundary, T_B)
            dur = target - work
            if fail_t - t < dur:
                elapsed = fail_t - t
                compute_time += elapsed
                work += elapsed
                t = fail_t
                on_failure("compute")
                continue
            t += dur
            compute_time += dur
            work = target
            continue

        # At a checkpoint boundary (work == boundary <= T_B).
        lv = pattern[(next_m - 1) % period]
        if boundary <= max_completed + _EPS:
            # Recomputation passing a previously-completed position on
            # the same grid: re-established free (the models' world).
            for ul in used_levels:
                if ul <= lv:
                    valid[ul - 1] = max(valid[ul - 1], boundary)
            restored += 1
            next_m += 1
            maybe_swap(boundary)
            continue
        c_scale, _ = seg_scales(t)
        dur = system.checkpoint_time(lv) * c_scale
        if fail_t - t < dur:
            acct.failed_checkpoint += fail_t - t
            ckpt_fail += 1
            t = fail_t
            on_failure("checkpoint")
            continue
        t += dur
        acct.checkpoint += dur
        ckpt_ok += 1
        obs_scales = (c_scale, obs_scales[1])
        for ul in used_levels:
            if ul <= lv:
                valid[ul - 1] = boundary
        max_completed = boundary
        next_m += 1
        maybe_swap(boundary)

    if recovering:
        work = rollback_ref
    acct.work = work
    rework = acct.rework_compute + acct.rework_checkpoint + acct.rework_restart
    if not math.isclose(compute_time, work + rework, rel_tol=1e-6, abs_tol=1e-6):
        raise RuntimeError(
            "adaptive walker invariant violated: compute_time != work + rework "
            f"({compute_time!r} != {work!r} + {rework!r}) for system "
            f"{system.name}, policy {policy!r}"
        )

    latency: float | None = None
    if (
        first_detect_t is not None
        and schedule is not None
        and schedule.num_segments > 1
    ):
        latency = first_detect_t - schedule.boundaries[1]
    return TrialResult(
        total_time=t,
        work_done=work,
        completed=completed,
        times=acct,
        failures_by_severity=tuple(n_by_sev),
        checkpoints_completed=ckpt_ok,
        checkpoints_failed=ckpt_fail,
        checkpoints_restored=restored,
        restarts_completed=rst_ok,
        restarts_failed=rst_fail,
        scratch_restarts=scratch,
        replans=replans,
        detection_latency=latency,
    )


@dataclass(frozen=True)
class AdaptiveComparison:
    """Static vs adaptive vs oracle over a shared set of failure streams."""

    system: str
    trials: int
    #: Mean wall-clock makespan per policy (horizon-capped trials count
    #: at the cap for every policy alike).
    static_mean: float
    adaptive_mean: float
    oracle_mean: float
    mean_replans: float
    #: Mean wall-clock minutes from the first regime onset to the first
    #: drift alarm, over trials that alarmed (negative: false positive
    #: before the onset); ``None`` when no trial alarmed.
    mean_detection_latency: float | None
    #: Mean of (adaptive - oracle) makespan, per shared stream.
    mean_regret: float
    #: Relative improvement of adaptive over static (positive = win).
    improvement: float
    per_trial_static: tuple[float, ...]
    per_trial_adaptive: tuple[float, ...]
    per_trial_oracle: tuple[float, ...]
    #: Description of the static (segment-0-optimal) plan all three
    #: policies start from, and the carryover-priced regime-aware
    #: makespan prediction (:func:`repro.core.plan_regimes`) — the
    #: quantities the scenario pipeline reports as plan/predicted_time.
    static_plan: str = ""
    predicted_makespan: float = float("nan")
    #: Aggregates over the *adaptive* policy's trials, mirroring the
    #: single-policy :class:`SimulationStats` fields the pipeline's
    #: outcome records expect.
    completed_fraction: float = 1.0
    mean_failures: float = 0.0
    breakdown_fractions: Mapping[str, float] = field(default_factory=dict)

    @property
    def adaptive_wins(self) -> bool:
        """The invariant ``validate --stress`` asserts on drift regimes."""
        return self.adaptive_mean <= self.static_mean

    def to_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "trials": self.trials,
            "static_mean": self.static_mean,
            "adaptive_mean": self.adaptive_mean,
            "oracle_mean": self.oracle_mean,
            "mean_replans": self.mean_replans,
            "mean_detection_latency": self.mean_detection_latency,
            "mean_regret": self.mean_regret,
            "improvement": self.improvement,
            "adaptive_wins": self.adaptive_wins,
            "static_plan": self.static_plan,
            "predicted_makespan": self.predicted_makespan,
            "completed_fraction": self.completed_fraction,
            "mean_failures": self.mean_failures,
        }


def compare_adaptive(
    system: SystemSpec,
    schedule: RegimeSchedule,
    spec: AdaptiveSpec | Mapping | None = None,
    trials: int = 32,
    seed: int = 0,
    model_factory=DauweModel,
    model_options: Mapping[str, Any] | None = None,
    max_time: float | None = None,
) -> AdaptiveComparison:
    """Run the three policies over identical drifting failure streams.

    Each trial spawns three generators from the *same* seed-sequence
    child, so every policy faces bitwise-identical failures and the
    makespan differences are pure planning policy.  Per-trial regret
    (adaptive minus oracle on the shared stream) lands in the adaptive
    walker's :class:`~repro.simulator.accounting.TrialResult`.
    """
    spec = AdaptiveSpec.resolve(spec) or AdaptiveSpec()
    model_options = dict(model_options or {})
    static_plan = model_factory(system, **model_options).optimize().plan
    oracle_plans = plan_regimes(
        system, schedule, model_factory=model_factory, model_options=model_options
    )
    factory = RegimeSourceFactory.for_system(system, schedule)
    replan_cache: dict = {}

    statics: list[float] = []
    adaptives: list[float] = []
    oracles: list[float] = []
    replans: list[int] = []
    latencies: list[float] = []
    regrets: list[float] = []
    failures: list[int] = []
    completed = 0
    breakdown = TimeBreakdown()
    for child in np.random.SeedSequence(seed).spawn(trials):
        runs: dict[str, TrialResult] = {}
        for policy in ("static", "adaptive", "oracle"):
            source = factory(np.random.default_rng(child))
            runs[policy] = simulate_adaptive_trial(
                system,
                static_plan if policy != "oracle" else oracle_plans.plan_for_segment(0),
                source,
                schedule,
                policy=policy,
                spec=spec,
                oracle_plans=oracle_plans if policy == "oracle" else None,
                max_time=max_time,
                model_factory=model_factory,
                model_options=model_options,
                replan_cache=replan_cache,
            )
        adaptive = runs["adaptive"]
        adaptive.regret = adaptive.total_time - runs["oracle"].total_time
        statics.append(runs["static"].total_time)
        adaptives.append(adaptive.total_time)
        oracles.append(runs["oracle"].total_time)
        replans.append(adaptive.replans)
        if adaptive.detection_latency is not None:
            latencies.append(adaptive.detection_latency)
        regrets.append(adaptive.regret)
        completed += adaptive.completed
        failures.append(adaptive.total_failures)
        breakdown = breakdown + adaptive.times

    static_mean = float(np.mean(statics))
    adaptive_mean = float(np.mean(adaptives))
    return AdaptiveComparison(
        system=system.name,
        trials=trials,
        static_mean=static_mean,
        adaptive_mean=adaptive_mean,
        oracle_mean=float(np.mean(oracles)),
        mean_replans=float(np.mean(replans)),
        mean_detection_latency=(
            float(np.mean(latencies)) if latencies else None
        ),
        mean_regret=float(np.mean(regrets)),
        improvement=(
            (static_mean - adaptive_mean) / static_mean if static_mean > 0 else 0.0
        ),
        per_trial_static=tuple(statics),
        per_trial_adaptive=tuple(adaptives),
        per_trial_oracle=tuple(oracles),
        static_plan=static_plan.describe(),
        predicted_makespan=oracle_plans.predicted_makespan,
        completed_fraction=completed / trials,
        mean_failures=float(np.mean(failures)),
        breakdown_fractions=breakdown.scaled(1.0 / trials).fractions(),
    )
