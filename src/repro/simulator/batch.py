"""Batched struct-of-arrays trial engine: all trials in lockstep.

:func:`simulate_trials_batch` advances **every trial of a
``simulate_many`` call at once**: per-trial state (``t``, ``work``,
``next_m``, per-level checkpoint validity, pending severity, the
accounting buckets) lives in NumPy arrays, the checkpoint pattern and
recovery tables are precomputed integer arrays, and each loop iteration
resolves exactly one event for every still-active trial via masked array
operations.  The renewal structure that makes large failure-injection
studies tractable in prior checkpoint simulators (Sodre's restart
analysis; Jayasekara et al.'s multi-level interval studies) is the same
one exploited here: between failures a trial's evolution is
deterministic, so the only per-trial randomness is the failure stream,
which batches cleanly.

Equality guarantee
------------------
For the configurations it accepts, this engine returns **bitwise
identical** :class:`~repro.simulator.accounting.TrialResult` objects to
the scalar :func:`~repro.simulator.engine.simulate_trial` loop for the
same per-trial seeds.  Two properties make that possible:

* the per-trial failure stream is drawn with the *same generator and the
  same draw order* as the scalar engine's
  :class:`~repro.failures.sources.ExponentialFailureSource`: one
  ``Generator.exponential(scale, 4096)`` batch followed by one
  ``Generator.random(4096)`` severity batch, refilled together every
  4096 consumed failures (the scalar source consumes one gap and one
  severity per failure, so both buffers always empty on the same call).
  Because the scalar loop chains failure times as ``fail_t = fail_t +
  gap`` — one sequential add per failure — a whole batch of absolute
  failure times is precomputed with ``np.add.accumulate`` (defined as
  the same sequential adds, unlike pairwise ``sum``), carrying the last
  time of the previous batch into the first gap;
* every floating-point update is performed per trial in the same order
  and with the same operations as the scalar loop: state commits use
  ``where=``-masked ufunc calls (``np.add(t, dur, out=t, where=ok)``),
  which perform exactly one IEEE-754 add per selected trial and leave
  the rest untouched, so times, accounting buckets and efficiencies
  match to the last bit — asserted across the whole Table-I catalog by
  ``tests/test_batch_engine.py``.

The hot loop is deliberately free of fancy-indexed gather/scatter pairs
(profiling showed index-array round-trips dominating at figure-sized
batches); everything is full-width masked arithmetic, so the per-event
cost is a fixed number of vector ops over the tile.

Scope: exponential failure source, ``retry`` restart semantics, any
``recheckpoint`` policy, optional silent errors, no event recording.
``escalate`` semantics, trace/Weibull sources and event timelines stay on
the scalar engine (:func:`repro.simulator.run.simulate_many` dispatches
automatically).

Silent errors (``silent_errors=``) keep the equality guarantee: both
engines consume the same :class:`~repro.core.silent.SilentStream` class
seeded from the same per-trial spawn, arming/detection comparisons are
the same absolute-time compares, and every detection-path float update
mirrors the scalar handler op for op.  With the option off the silent
branches are skipped entirely — the fail-stop walk is byte-identical to
the pre-silent engine.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.plan import CheckpointPlan
from ..core.silent import SilentErrorSpec, SilentStream
from ..systems.spec import SystemSpec
from .accounting import TimeBreakdown, TrialResult
from .engine import _EPS, default_max_time

__all__ = ["simulate_trials_batch"]

#: Per-trial RNG batch size.  Must equal the scalar
#: :class:`~repro.failures.sources.ExponentialFailureSource` default so
#: generator states advance identically between the two engines.
_RNG_BATCH = 4096

#: Trials advanced in lockstep per tile.  Bounds peak per-trial draw
#: storage; tiles are independent (per-trial seeding), so tiling never
#: changes results.
_TILE = 1024

#: Sliding-window width for the vectorized failure-time gather (a power
#: of two so the in-window offset is a cheap mask).  Each trial's window
#: is refreshed from its accumulated draw batch every _WINDOW consumed
#: failures.
_WINDOW = 64


def simulate_trials_batch(
    system: SystemSpec,
    plan: CheckpointPlan,
    seed_seqs,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
    silent_errors: SilentErrorSpec | None = None,
) -> list[TrialResult]:
    """Simulate one trial per entry of ``seed_seqs``, all in lockstep.

    Parameters mirror :func:`~repro.simulator.engine.simulate_trial`;
    each ``seed_seqs`` entry seeds one trial's ``default_rng`` exactly as
    the scalar path does.  Raises :class:`ValueError` for configurations
    outside the batched scope (``escalate`` semantics).
    """
    if plan.top_level > system.num_levels:
        raise ValueError(
            f"plan uses level {plan.top_level} but {system.name} has "
            f"{system.num_levels} levels"
        )
    if restart_semantics not in ("retry", "escalate"):
        raise ValueError(f"unknown restart_semantics {restart_semantics!r}")
    if restart_semantics != "retry":
        raise ValueError(
            "the batched engine supports restart_semantics='retry' only; "
            "use the scalar engine for 'escalate'"
        )
    if recheckpoint not in ("free", "paid", "skip"):
        raise ValueError(f"unknown recheckpoint policy {recheckpoint!r}")
    cap = default_max_time(system) if max_time is None else float(max_time)
    silent = SilentErrorSpec.resolve(silent_errors)

    results: list[TrialResult] = []
    seed_seqs = list(seed_seqs)
    for start in range(0, len(seed_seqs), _TILE):
        results.extend(
            _simulate_tile(
                system,
                plan,
                seed_seqs[start : start + _TILE],
                cap,
                checkpoint_at_completion,
                recheckpoint,
                silent,
            )
        )
    return results


def _simulate_tile(
    system: SystemSpec,
    plan: CheckpointPlan,
    seed_seqs,
    cap: float,
    checkpoint_at_completion: bool,
    recheckpoint: str,
    silent: SilentErrorSpec | None,
) -> list[TrialResult]:
    n = len(seed_seqs)
    T_B = system.baseline_time
    tau0 = plan.tau0
    num_used = len(plan.levels)
    num_sev = system.num_levels
    T_B_lo = T_B - _EPS
    T_B_hi = T_B + _EPS

    # --- tables (identical values to the scalar engine's lists) -------
    levels = np.array(plan.levels, dtype=np.int64)
    verify = silent.verify_cost if silent is not None else 0.0
    ckpt_cost = np.array(
        [system.checkpoint_time(lv) + verify for lv in plan.levels]
    )
    rest_cost = np.array([system.restart_time(lv) for lv in plan.levels])
    sev_rest_cost = np.array(
        [system.restart_time(s) for s in range(1, num_sev + 1)]
    )
    period = math.prod(c + 1 for c in plan.counts) if plan.counts else 1
    level_index_of = {lv: k for k, lv in enumerate(plan.levels)}
    pattern = np.array(
        [level_index_of[plan.level_at_position(m)] for m in range(1, period + 1)],
        dtype=np.int64,
    )
    recover_idx = np.empty(num_sev, dtype=np.int64)
    for s in range(1, num_sev + 1):
        lv = plan.recovery_level(s)
        recover_idx[s - 1] = level_index_of[lv] if lv is not None else -1
    col = np.arange(num_used, dtype=np.int64)
    sev_iota = np.arange(num_sev, dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)
    rows_w = rows * _WINDOW

    # --- failure stream (ExponentialFailureSource's exact draw order) --
    # scale/cdf expressions mirror ExponentialFailureSource.__init__ and
    # severity_sampler so every derived float is bit-identical.  Whole
    # batches of *absolute* failure times are precomputed per trial: the
    # scalar loop chains fail_t = fail_t + gap one add at a time, and
    # np.add.accumulate performs those same sequential adds (the carry
    # from the previous batch is folded into the first gap beforehand —
    # IEEE addition is commutative, so carry + gap == gap + carry).
    rate = float(system.failure_rate)
    scale = 1.0 / rate
    probs = np.asarray(system.severity_probabilities, dtype=float)
    cdf = np.cumsum(probs / probs.sum())
    rngs = [np.random.default_rng(ss) for ss in seed_seqs]
    # Per-trial draw batches live in the arrays the generators allocate
    # (accumulated in place) rather than one persistent (n, 4096) buffer
    # pair — first-touch page faults on tens of MB would cost more than
    # the whole setup.  The hot path gathers through a small sliding
    # window refreshed every _WINDOW consumed failures.
    ftime_rows: list = [None] * n
    sev_rows: list = [None] * n
    ptr = np.zeros(n, dtype=np.int64)
    win_t = np.empty((n, _WINDOW))
    win_s = np.empty((n, _WINDOW), dtype=np.int64)
    win_t_flat = win_t.reshape(-1)
    win_s_flat = win_s.reshape(-1)

    def refill_rows(ids, carries) -> None:
        """Draw the next (gaps, severities) batch for each trial in ``ids``.

        ``ids`` are *current row* indices; the per-trial draw storage is
        addressed through ``orig`` so it survives compaction.
        """
        for i, carry in zip(ids, carries):
            j = orig[i]
            gaps = rngs[j].exponential(scale, _RNG_BATCH)
            gaps[0] = carry + gaps[0]
            np.add.accumulate(gaps, out=gaps)
            ftime_rows[j] = gaps
            u = rngs[j].random(_RNG_BATCH)
            # Value-equal to severity_sampler's clamped inverse-CDF lookup
            # (min(searchsorted(cdf, u, "right") + 1, num_sev)): counting
            # thresholds below u over cdf[:-1] yields the same class, and
            # a handful of vector compares beats searchsorted here.
            sev = np.ones(_RNG_BATCH, dtype=np.int64)
            for c in cdf[:-1]:
                sev += u >= c
            sev_rows[j] = sev
            win_t[i] = gaps[:_WINDOW]
            win_s[i] = sev[:_WINDOW]
        ptr[ids] = 0

    orig = rows  # current row -> original trial index (identity until compacted)
    refill_rows(range(n), [0.0] * n)  # source.next_after(0.0)
    fail_t = win_t[:, 0].copy()
    fail_s = win_s[:, 0].copy()

    # --- per-trial state ----------------------------------------------
    t = np.zeros(n)
    work = np.zeros(n)
    next_m = np.ones(n, dtype=np.int64)
    valid = np.full((n, num_used), -1, dtype=np.int64)
    sm = np.empty_like(valid)  # suffix-max scratch for candidate lookups
    recovering = np.zeros(n, dtype=bool)
    pending_sev = np.zeros(n, dtype=np.int64)
    rollback_ref = np.zeros(n)
    max_completed_m = np.zeros(n, dtype=np.int64)
    compute_time = np.zeros(n)

    acct_checkpoint = np.zeros(n)
    acct_failed_checkpoint = np.zeros(n)
    acct_restart = np.zeros(n)
    acct_failed_restart = np.zeros(n)
    acct_rework_compute = np.zeros(n)
    acct_rework_checkpoint = np.zeros(n)
    acct_rework_restart = np.zeros(n)
    n_by_sev = np.zeros((n, num_sev), dtype=np.int64)
    ckpt_ok = np.zeros(n, dtype=np.int64)
    ckpt_fail = np.zeros(n, dtype=np.int64)
    rst_ok = np.zeros(n, dtype=np.int64)
    rst_fail = np.zeros(n, dtype=np.int64)
    scratch = np.zeros(n, dtype=np.int64)
    restored = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    # --- silent-error state (allocated only when the mode is on) ------
    # One strike "armed" per trial; its detection at strike + D.  The
    # streams are the same SilentStream class the scalar engine uses,
    # seeded from the same per-trial spawn, so strike draws are bitwise
    # identical; ``next_strike`` caches each stream's peek() so arming is
    # one vector compare (pops are a python loop over the rare armers).
    if silent is not None:
        D_lat = silent.detection_latency
        sstreams = [
            SilentStream(silent, np.random.default_rng(ss.spawn(1)[0]))
            for ss in seed_seqs
        ]
        next_strike = np.array([st.peek() for st in sstreams])
        armed = np.zeros(n, dtype=bool)
        strike_t = np.full(n, np.inf)
        detect_t = np.full(n, np.inf)
        valid_t = np.zeros((n, num_used))  # completion time of valid[:, k]
        silent_det = np.zeros(n, dtype=np.int64)
        full_armed, full_strike_t, full_silent_det = armed, strike_t, silent_det

    # Full-size result stores.  The loop works on a *compacted* live
    # subset once enough trials finish (straggler tails would otherwise
    # keep full-width ops running for a handful of trials); finished
    # rows are flushed back here through ``orig``.  Until the first
    # compaction these alias the working arrays, so flushing is a no-op
    # self-assignment.
    full_t, full_work, full_next_m = t, work, next_m
    full_recovering, full_rollback_ref = recovering, rollback_ref
    full_compute_time = compute_time
    full_acct_checkpoint = acct_checkpoint
    full_acct_failed_checkpoint = acct_failed_checkpoint
    full_acct_restart = acct_restart
    full_acct_failed_restart = acct_failed_restart
    full_acct_rework_compute = acct_rework_compute
    full_acct_rework_checkpoint = acct_rework_checkpoint
    full_acct_rework_restart = acct_rework_restart
    full_n_by_sev = n_by_sev
    full_ckpt_ok, full_ckpt_fail = ckpt_ok, ckpt_fail
    full_rst_ok, full_rst_fail = rst_ok, rst_fail
    full_scratch, full_restored = scratch, restored

    def flush() -> None:
        """Scatter the live rows' state back into the full-size stores."""
        full_t[orig] = t
        full_work[orig] = work
        full_next_m[orig] = next_m
        full_recovering[orig] = recovering
        full_rollback_ref[orig] = rollback_ref
        full_compute_time[orig] = compute_time
        full_acct_checkpoint[orig] = acct_checkpoint
        full_acct_failed_checkpoint[orig] = acct_failed_checkpoint
        full_acct_restart[orig] = acct_restart
        full_acct_failed_restart[orig] = acct_failed_restart
        full_acct_rework_compute[orig] = acct_rework_compute
        full_acct_rework_checkpoint[orig] = acct_rework_checkpoint
        full_acct_rework_restart[orig] = acct_rework_restart
        full_n_by_sev[orig] = n_by_sev
        full_ckpt_ok[orig] = ckpt_ok
        full_ckpt_fail[orig] = ckpt_fail
        full_rst_ok[orig] = rst_ok
        full_rst_fail[orig] = rst_fail
        full_scratch[orig] = scratch
        full_restored[orig] = restored
        if silent is not None:
            full_armed[orig] = armed
            full_strike_t[orig] = strike_t
            full_silent_det[orig] = silent_det

    def suffix_max_valid() -> None:
        """``sm[:, k]`` = newest position valid at any used level >= k."""
        np.copyto(sm, valid)
        for k in range(num_used - 2, -1, -1):
            np.maximum(sm[:, k], sm[:, k + 1], out=sm[:, k])

    def on_failures(fmask: np.ndarray, attributions) -> None:
        """Shared failure bookkeeping for every trial in ``fmask`` at once.

        ``attributions`` pairs disjoint sub-masks of ``fmask`` with the
        rework bucket their lost work belongs to (one entry per event
        phase that saw failures this iteration).
        """
        s = fail_s
        np.add(
            n_by_sev,
            1,
            out=n_by_sev,
            where=fmask[:, None] & (sev_iota[None, :] == (s - 1)[:, None]),
        )
        newrec = fmask & ~recovering
        np.copyto(rollback_ref, work, where=newrec)
        # Outside recovery pending_sev == 0 and s >= 1, so one masked
        # maximum covers both the "new recovery" and "escalating
        # severity while recovering" scalar branches.
        np.maximum(pending_sev, s, out=pending_sev, where=fmask)
        np.logical_or(recovering, fmask, out=recovering)
        np.copyto(
            valid,
            np.int64(-1),
            where=fmask[:, None] & (levels[None, :] < s[:, None]),
        )
        # Re-target: newest valid position able to recover pending_sev.
        suffix_max_valid()
        lo = recover_idx[pending_sev - 1]
        best = sm[rows, np.maximum(lo, 0)]
        pos = np.maximum(np.where(lo >= 0, best, np.int64(-1)), 0)
        posw = pos * tau0
        lost = rollback_ref - posw
        hitpos = lost > 0
        for mask, bucket in attributions:
            np.add(bucket, lost, out=bucket, where=mask & hitpos)
        np.copyto(rollback_ref, posw, where=fmask & hitpos)
        # Pop the next (time, severity) per failed trial; refill the rare
        # trials that exhausted their 4096-draw batch, slide the window
        # for those that crossed a _WINDOW boundary.
        np.add(ptr, fmask, out=ptr)
        exhausted = ptr >= _RNG_BATCH
        if exhausted.any():
            ids = np.flatnonzero(exhausted)
            refill_rows(ids, [ftime_rows[orig[i]][-1] for i in ids])
        off = ptr & (_WINDOW - 1)
        crossed = fmask & (off == 0) & (ptr != 0)
        if crossed.any():
            for i in np.flatnonzero(crossed):
                j, p = orig[i], ptr[i]
                win_t[i] = ftime_rows[j][p : p + _WINDOW]
                win_s[i] = sev_rows[j][p : p + _WINDOW]
        idx = rows_w + off
        np.take(win_t_flat, idx, out=fail_t)
        np.take(win_s_flat, idx, out=fail_s)

    def arm_strikes(mask: np.ndarray, dur) -> None:
        """Arm the next silent strike for ``mask`` trials whose strike
        lands inside the nominal segment ``[t, t + dur)`` — the scalar
        ``seg_fate`` arming step, one compare plus a rare python loop."""
        arm = mask & ~armed & (next_strike < t + dur)
        if arm.any():
            for i in np.flatnonzero(arm):
                st = sstreams[orig[i]]
                strike_t[i] = st.pop()
                detect_t[i] = strike_t[i] + D_lat
                next_strike[i] = st.peek()
            armed[arm] = True

    def on_detections(dmask: np.ndarray, det_attr) -> None:
        """Vectorized mirror of the scalar engine's ``on_detection``:
        invalidate post-strike checkpoints, enter (or keep) recovery at
        severity 1, re-target, attribute lost work per phase, disarm."""
        nonlocal silent_det
        silent_det += dmask
        np.copyto(
            valid,
            np.int64(-1),
            where=dmask[:, None] & (valid >= 0) & (valid_t > strike_t[:, None]),
        )
        newrec = dmask & ~recovering
        np.copyto(rollback_ref, work, where=newrec)
        np.maximum(pending_sev, np.int64(1), out=pending_sev, where=dmask)
        np.logical_or(recovering, dmask, out=recovering)
        suffix_max_valid()
        lo = recover_idx[pending_sev - 1]
        best = sm[rows, np.maximum(lo, 0)]
        pos = np.maximum(np.where(lo >= 0, best, np.int64(-1)), 0)
        posw = pos * tau0
        lost = rollback_ref - posw
        hitpos = lost > 0
        for mask, bucket in det_attr:
            np.add(bucket, lost, out=bucket, where=mask & hitpos)
        np.copyto(rollback_ref, posw, where=dmask & hitpos)
        armed[dmask] = False
        for i in np.flatnonzero(dmask):
            st = sstreams[orig[i]]
            st.skip_past(detect_t[i])
            next_strike[i] = st.peek()
        strike_t[dmask] = np.inf
        detect_t[dmask] = np.inf

    while True:
        boundary = next_m * tau0
        nrec = ~recovering
        over_hi = boundary > T_B_hi
        fin = work >= T_B_lo
        if checkpoint_at_completion:
            fin &= over_hi
        fin &= nrec
        stop = fin | (t >= cap)
        active &= ~stop
        live = int(active.sum())
        if live == 0:
            flush()
            break
        if live * 2 <= orig.size and orig.size > 32:
            # Compact: flush everything, then keep only live rows.  The
            # RNG buffers stay full-size (compacting megabytes to drop a
            # few rows would cost more than it saves); ``orig``/``row_off``
            # keep addressing them correctly.
            flush()
            keep = np.flatnonzero(active)
            orig = orig[keep]
            t, work, next_m = t[keep], work[keep], next_m[keep]
            recovering = recovering[keep]
            pending_sev = pending_sev[keep]
            rollback_ref = rollback_ref[keep]
            max_completed_m = max_completed_m[keep]
            compute_time = compute_time[keep]
            fail_t, fail_s, ptr = fail_t[keep], fail_s[keep], ptr[keep]
            win_t, win_s = win_t[keep], win_s[keep]
            win_t_flat = win_t.reshape(-1)
            win_s_flat = win_s.reshape(-1)
            valid, n_by_sev = valid[keep], n_by_sev[keep]
            sm = np.empty_like(valid)
            acct_checkpoint = acct_checkpoint[keep]
            acct_failed_checkpoint = acct_failed_checkpoint[keep]
            acct_restart = acct_restart[keep]
            acct_failed_restart = acct_failed_restart[keep]
            acct_rework_compute = acct_rework_compute[keep]
            acct_rework_checkpoint = acct_rework_checkpoint[keep]
            acct_rework_restart = acct_rework_restart[keep]
            ckpt_ok, ckpt_fail = ckpt_ok[keep], ckpt_fail[keep]
            rst_ok, rst_fail = rst_ok[keep], rst_fail[keep]
            scratch, restored = scratch[keep], restored[keep]
            if silent is not None:
                armed, strike_t = armed[keep], strike_t[keep]
                detect_t, next_strike = detect_t[keep], next_strike[keep]
                valid_t, silent_det = valid_t[keep], silent_det[keep]
            rows = np.arange(orig.size, dtype=np.int64)
            rows_w = rows * _WINDOW
            active = np.ones(orig.size, dtype=bool)
            boundary = next_m * tau0
            nrec = ~recovering
            over_hi = boundary > T_B_hi

        rec = active & recovering
        comp = active & nrec
        bnd = comp & ~((work < boundary - _EPS) | over_hi)
        comp ^= bnd
        slack = fail_t - t
        attributions: list[tuple[np.ndarray, np.ndarray]] = []
        det_attr: list[tuple[np.ndarray, np.ndarray]] = []

        # Event fusion: a successful restart chains into its follow-up
        # compute segment, and a successful compute into its checkpoint,
        # within this same iteration.  Each fusion re-evaluates exactly
        # the scalar loop's top-of-iteration predicates (completion, cap,
        # branch selection) on the updated state, so the per-trial event
        # sequence — and every float op — is unchanged; only the number
        # of lockstep iterations drops (~2 events per iteration in the
        # failure-free steady state instead of 1).

        # --- restart attempts -----------------------------------------
        if rec.any():
            suffix_max_valid()
            lo = recover_idx[pending_sev - 1]
            has_lo = lo >= 0
            best = sm[rows, np.maximum(lo, 0)]
            pos = np.maximum(np.where(has_lo, best, np.int64(-1)), 0)
            has = pos > 0
            # First used level >= lo holding the chosen position: the
            # cheapest sufficient restart, as in the scalar engine.
            elig = (valid == pos[:, None]) & (col[None, :] >= lo[:, None])
            k_use = np.argmax(elig, axis=1)
            dur = np.where(
                has,
                rest_cost[k_use],
                np.where(
                    has_lo,
                    rest_cost[np.maximum(lo, 0)],
                    sev_rest_cost[pending_sev - 1],
                ),
            )
            if silent is None:
                ok = rec & (slack >= dur)
                flr = rec ^ ok
                detr = None
            else:
                arm_strikes(rec, dur)
                dslack = detect_t - t
                ok = rec & (slack >= dur) & (dslack >= dur)
                flr = rec & (slack < dur) & ((dslack >= dur) | (fail_t <= detect_t))
                detr = rec & ~ok & ~flr
            np.add(t, dur, out=t, where=ok)
            np.add(acct_restart, dur, out=acct_restart, where=ok)
            rst_ok += ok
            scratch += ok & ~has
            np.copyto(work, pos * tau0, where=ok)
            np.copyto(next_m, pos + 1, where=ok)
            np.copyto(pending_sev, np.int64(0), where=ok)
            recovering ^= ok
            if flr.any():
                np.add(
                    acct_failed_restart, slack, out=acct_failed_restart, where=flr
                )
                rst_fail += flr
                np.copyto(t, fail_t, where=flr)
                attributions.append((flr, acct_rework_restart))
            if detr is not None and detr.any():
                np.add(
                    acct_failed_restart, dslack, out=acct_failed_restart, where=detr
                )
                rst_fail += detr
                np.copyto(t, detect_t, where=detr)
                det_attr.append((detr, acct_rework_restart))
            if ok.any():
                # Fuse: restarted trials proceed to their next event now.
                boundary = next_m * tau0
                over_hi = boundary > T_B_hi
                fin2 = work >= T_B_lo
                if checkpoint_at_completion:
                    fin2 &= over_hi
                go = ok & ~fin2 & (t < cap)
                compx = go & ((work < boundary - _EPS) | over_hi)
                comp |= compx
                bnd |= go ^ compx
                slack = fail_t - t

        # --- compute segments -----------------------------------------
        if comp.any():
            target = np.minimum(boundary, T_B)
            dur = target - work
            if silent is None:
                okc = comp & (slack >= dur)
                flc = comp ^ okc
                detc = None
            else:
                arm_strikes(comp, dur)
                dslack = detect_t - t
                okc = comp & (slack >= dur) & (dslack >= dur)
                flc = comp & (slack < dur) & ((dslack >= dur) | (fail_t <= detect_t))
                detc = comp & ~okc & ~flc
            np.add(t, dur, out=t, where=okc)
            np.add(compute_time, dur, out=compute_time, where=okc)
            np.copyto(work, target, where=okc)
            if flc.any():
                np.add(compute_time, slack, out=compute_time, where=flc)
                np.add(work, slack, out=work, where=flc)
                np.copyto(t, fail_t, where=flc)
                attributions.append((flc, acct_rework_compute))
            if detc is not None and detc.any():
                np.add(compute_time, dslack, out=compute_time, where=detc)
                np.add(work, dslack, out=work, where=detc)
                np.copyto(t, detect_t, where=detc)
                det_attr.append((detc, acct_rework_compute))
            if okc.any():
                # Fuse: trials that reached their boundary checkpoint now.
                fin2 = work >= T_B_lo
                if checkpoint_at_completion:
                    fin2 &= over_hi
                go = okc & ~fin2 & (t < cap)
                bnd |= go & ~((work < boundary - _EPS) | over_hi)
                slack = fail_t - t

        # --- checkpoint boundaries ------------------------------------
        if bnd.any():
            k = pattern[(next_m - 1) % period]
            kc = col[None, :] <= k[:, None]
            take = bnd
            if recheckpoint != "paid":
                redo = bnd & (next_m <= max_completed_m)
                if redo.any():
                    # Recomputation past previously-completed positions:
                    # "free" re-establishes validity at zero cost, "skip"
                    # leaves the old recovery point as the only fallback.
                    if recheckpoint == "free":
                        np.copyto(
                            valid, next_m[:, None], where=kc & redo[:, None]
                        )
                        if silent is not None:
                            np.copyto(
                                valid_t, t[:, None], where=kc & redo[:, None]
                            )
                        restored += redo
                    take = bnd ^ redo
                    next_m += redo
            if take.any():
                dur = ckpt_cost[k]
                if silent is None:
                    okk = take & (slack >= dur)
                    flk = take ^ okk
                    detk = None
                else:
                    arm_strikes(take, dur)
                    dslack = detect_t - t
                    okk = take & (slack >= dur) & (dslack >= dur)
                    flk = take & (slack < dur) & (
                        (dslack >= dur) | (fail_t <= detect_t)
                    )
                    detk = take & ~okk & ~flk
                np.add(t, dur, out=t, where=okk)
                np.add(acct_checkpoint, dur, out=acct_checkpoint, where=okk)
                ckpt_ok += okk
                # hierarchical write: validates all levels <= k
                np.copyto(valid, next_m[:, None], where=kc & okk[:, None])
                if silent is not None:
                    np.copyto(valid_t, t[:, None], where=kc & okk[:, None])
                np.maximum(
                    max_completed_m, next_m, out=max_completed_m, where=okk
                )
                next_m += okk
                if flk.any():
                    np.add(
                        acct_failed_checkpoint,
                        slack,
                        out=acct_failed_checkpoint,
                        where=flk,
                    )
                    ckpt_fail += flk
                    np.copyto(t, fail_t, where=flk)
                    attributions.append((flk, acct_rework_checkpoint))
                if detk is not None and detk.any():
                    np.add(
                        acct_failed_checkpoint,
                        dslack,
                        out=acct_failed_checkpoint,
                        where=detk,
                    )
                    ckpt_fail += detk
                    np.copyto(t, detect_t, where=detk)
                    det_attr.append((detk, acct_rework_checkpoint))

        if attributions:
            fmask = attributions[0][0]
            for mask, _ in attributions[1:]:
                fmask = fmask | mask
            on_failures(fmask, attributions)
        if det_attr:
            dmask = det_attr[0][0]
            for mask, _ in det_attr[1:]:
                dmask = dmask | mask
            on_detections(dmask, det_attr)

    t, work, next_m = full_t, full_work, full_next_m
    recovering, rollback_ref = full_recovering, full_rollback_ref
    compute_time = full_compute_time
    acct_checkpoint = full_acct_checkpoint
    acct_failed_checkpoint = full_acct_failed_checkpoint
    acct_restart = full_acct_restart
    acct_failed_restart = full_acct_failed_restart
    acct_rework_compute = full_acct_rework_compute
    acct_rework_checkpoint = full_acct_rework_checkpoint
    acct_rework_restart = full_acct_rework_restart
    n_by_sev = full_n_by_sev
    ckpt_ok, ckpt_fail = full_ckpt_ok, full_ckpt_fail
    rst_ok, rst_fail = full_rst_ok, full_rst_fail
    scratch, restored = full_scratch, full_restored

    # Deactivated state is frozen, so final classification reproduces the
    # scalar loop's top-of-iteration completion test.
    completed = ~recovering & (work >= T_B_lo)
    if checkpoint_at_completion:
        completed &= next_m * tau0 > T_B_hi
    if silent is None:
        silent_det_out = silent_undet_out = np.zeros(n, dtype=np.int64)
    else:
        silent_det_out = full_silent_det
        silent_undet_out = (
            completed & full_armed & (full_strike_t <= t)
        ).astype(np.int64)
    # Horizon cap fired mid-recovery: only the recovery position counts
    # as retained work (losses above it are already in rework buckets).
    np.copyto(work, rollback_ref, where=recovering)

    rework = acct_rework_compute + acct_rework_checkpoint + acct_rework_restart
    if not np.allclose(compute_time, work + rework, rtol=1e-6, atol=1e-6):
        worst = int(np.argmax(np.abs(compute_time - work - rework)))
        raise RuntimeError(
            "batched engine invariant violated: compute_time != work + rework "
            f"(trial {worst}: {compute_time[worst]!r} != "
            f"{work[worst]!r} + {rework[worst]!r})"
        )

    out: list[TrialResult] = []
    for i in range(n):
        times = TimeBreakdown(
            work=float(work[i]),
            checkpoint=float(acct_checkpoint[i]),
            failed_checkpoint=float(acct_failed_checkpoint[i]),
            restart=float(acct_restart[i]),
            failed_restart=float(acct_failed_restart[i]),
            rework_compute=float(acct_rework_compute[i]),
            rework_checkpoint=float(acct_rework_checkpoint[i]),
            rework_restart=float(acct_rework_restart[i]),
        )
        out.append(
            TrialResult(
                total_time=float(t[i]),
                work_done=float(work[i]),
                completed=bool(completed[i]),
                times=times,
                failures_by_severity=tuple(int(x) for x in n_by_sev[i]),
                checkpoints_completed=int(ckpt_ok[i]),
                checkpoints_failed=int(ckpt_fail[i]),
                checkpoints_restored=int(restored[i]),
                restarts_completed=int(rst_ok[i]),
                restarts_failed=int(rst_fail[i]),
                scratch_restarts=int(scratch[i]),
                silent_detections=int(silent_det_out[i]),
                silent_undetected=int(silent_undet_out[i]),
                events=None,
            )
        )
    return out
