"""Batched struct-of-arrays trial engine: all trials in lockstep.

:func:`simulate_trials_batch` advances **every trial of a
``simulate_many`` call at once**: per-trial state (``t``, ``work``,
``next_m``, per-level checkpoint validity, pending severity, the
accounting buckets) lives in NumPy arrays, the checkpoint pattern and
recovery tables are precomputed integer arrays, and each loop iteration
resolves at least one event for every still-active trial via masked
array operations.  The renewal structure that makes large
failure-injection studies tractable in prior checkpoint simulators
(Sodre's restart analysis; Jayasekara et al.'s multi-level interval
studies) is the same one exploited here: between failures a trial's
evolution is deterministic, so the only per-trial randomness is the
failure stream, which batches cleanly — for *any* renewal or replay
process, not just the exponential one (see
:mod:`repro.failures.batching`).

:func:`simulate_packed` generalizes the tile to a **multi-scenario
universe**: trials from several (system, plan, options) requests share
the same ``t``/``work``/``next_m``/``valid`` arrays with a scenario-id
column, and per-scenario pattern/cost/recovery tables are gathered per
trial.  A study of many small scenarios then advances through one
tensorized loop instead of one ``simulate_many`` call per scenario,
amortizing the fixed per-iteration NumPy dispatch cost that dominates
at figure-sized trial counts.  The :mod:`repro.scenarios` pipeline uses
this as its serial fast path.

Equality guarantee
------------------
For the configurations it accepts, this engine returns **bitwise
identical** :class:`~repro.simulator.accounting.TrialResult` objects to
the scalar :func:`~repro.simulator.engine.simulate_trial` loop for the
same per-trial seeds.  Two properties make that possible:

* the per-trial failure stream is drawn with the *same generator and the
  same draw order* as the scalar engine's failure sources: one gap batch
  (``Generator.exponential(scale, 4096)``, or ``scale *
  Generator.weibull(shape, 4096)``) followed by one
  ``Generator.random(4096)`` severity batch, refilled together every
  4096 consumed failures (the scalar source consumes one gap and one
  severity per failure, so both buffers always empty on the same call).
  Because the scalar loop chains failure times as ``fail_t = fail_t +
  gap`` — one sequential add per failure — a whole batch of absolute
  failure times is precomputed with ``np.add.accumulate`` (defined as
  the same sequential adds, unlike pairwise ``sum``), carrying the last
  time of the previous batch into the first gap.  Trace replay needs no
  generator at all: the absolute times are shared, padded with the
  scalar source's infinite failure-free tail;
* every floating-point update is performed per trial in the same order
  and with the same operations as the scalar loop: state commits use
  ``where=``-masked ufunc calls (``np.add(t, dur, out=t, where=ok)``),
  which perform exactly one IEEE-754 add per selected trial and leave
  the rest untouched, so times, accounting buckets and efficiencies
  match to the last bit — asserted across the whole Table-I catalog by
  ``tests/test_batch_engine.py``.

``escalate`` restart semantics are a masked level promotion inside the
shared failure handler (an equal-severity failure during recovery bumps
the pending severity one level, exactly the scalar branch), so both
restart semantics run batched.  The remaining scalar-only feature is
event-timeline recording (``record_events``), which is inherently
per-trial.

The hot loop is deliberately free of fancy-indexed gather/scatter pairs
(profiling showed index-array round-trips dominating at figure-sized
batches); everything is full-width masked arithmetic, so the per-event
cost is a fixed number of vector ops over the tile.  Event fusion
chains restart→compute→checkpoint→compute→... within one iteration
(:data:`_FUSE_ROUNDS` rounds), re-evaluating the scalar loop's
top-of-iteration predicates at each hop so per-trial event sequences
are unchanged while lockstep iterations drop severalfold.

Silent errors (``silent_errors=``) keep the equality guarantee: both
engines consume the same :class:`~repro.core.silent.SilentStream` class
seeded from the same per-trial spawn, arming/detection comparisons are
the same absolute-time compares, and every detection-path float update
mirrors the scalar handler op for op.  With the option off the silent
branches are skipped entirely — the fail-stop walk is byte-identical to
the pre-silent engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.plan import CheckpointPlan
from ..core.silent import SilentErrorSpec, SilentStream
from ..failures.batching import ExponentialStreamSpec, RNG_BATCH
from ..systems.spec import SystemSpec
from .accounting import TimeBreakdown, TrialResult
from .engine import _EPS, default_max_time

__all__ = ["BatchRequest", "simulate_packed", "simulate_trials_batch"]

#: Per-trial RNG batch size; re-exported from the stream layer so the
#: generator states advance identically between the two engines.
_RNG_BATCH = RNG_BATCH

#: Trials advanced in lockstep per tile.  Bounds peak per-trial draw
#: storage; tiles are independent (per-trial seeding), so tiling never
#: changes results.
_TILE = 1024

#: Sliding-window width for the vectorized failure-time gather (a power
#: of two so the in-window offset is a cheap mask).  Each trial's window
#: is refreshed from its accumulated draw batch every _WINDOW consumed
#: failures.
_WINDOW = 64

#: Maximum compute→checkpoint hops fused into one lockstep iteration
#: (after the restart hop).  Fusion only changes *when* an event is
#: processed, never the per-trial event sequence, so any value is
#: bitwise-safe.  2 measured best across the Table I grid: deeper
#: rounds keep paying full-width masked ops for the shrinking set of
#: trials whose chains have not been broken by a failure, and the
#: adaptive cutoff in the main loop already stops early when few
#: trials continue.
_FUSE_ROUNDS = 2

#: Padding value for unused level-table columns in packed (multi-
#: scenario) tiles: larger than any real checkpoint level, so a padded
#: column is never invalidated (``levels < severity`` stays False) and
#: its ``valid`` entry stays -1 forever.
_LEVEL_PAD = np.int64(2**31)


@dataclass(frozen=True)
class BatchRequest:
    """One scenario's worth of trials for :func:`simulate_packed`.

    ``seed_seqs`` is the list of per-trial ``SeedSequence`` objects
    (one trial each, same contract as :func:`simulate_trials_batch`);
    ``stream`` is an optional failure-stream descriptor from
    :mod:`repro.failures.batching` (``None`` = the system's exponential
    default); ``silent_errors`` accepts anything
    :meth:`~repro.core.silent.SilentErrorSpec.resolve` does.
    """

    system: SystemSpec
    plan: CheckpointPlan
    seed_seqs: Sequence
    max_time: float | None = None
    restart_semantics: str = "retry"
    checkpoint_at_completion: bool = False
    recheckpoint: str = "free"
    silent_errors: object = None
    stream: object = None


class _Config:
    """Precomputed per-scenario tables and options (tile-independent)."""

    def __init__(self, req: BatchRequest):
        system, plan = req.system, req.plan
        if plan.top_level > system.num_levels:
            raise ValueError(
                f"plan uses level {plan.top_level} but {system.name} has "
                f"{system.num_levels} levels"
            )
        if req.restart_semantics not in ("retry", "escalate"):
            raise ValueError(
                f"unknown restart_semantics {req.restart_semantics!r}"
            )
        if req.recheckpoint not in ("free", "paid", "skip"):
            raise ValueError(f"unknown recheckpoint policy {req.recheckpoint!r}")
        self.system = system
        self.plan = plan
        self.T_B = system.baseline_time
        self.tau0 = plan.tau0
        self.cap = (
            default_max_time(system) if req.max_time is None
            else float(req.max_time)
        )
        self.escalate = req.restart_semantics == "escalate"
        self.cac = bool(req.checkpoint_at_completion)
        self.recheckpoint = req.recheckpoint
        self.silent = SilentErrorSpec.resolve(req.silent_errors)
        self.num_used = len(plan.levels)
        self.num_sev = system.num_levels
        self.levels = np.array(plan.levels, dtype=np.int64)
        verify = self.silent.verify_cost if self.silent is not None else 0.0
        self.ckpt_cost = np.array(
            [system.checkpoint_time(lv) + verify for lv in plan.levels]
        )
        self.rest_cost = np.array(
            [system.restart_time(lv) for lv in plan.levels]
        )
        self.sev_rest_cost = np.array(
            [system.restart_time(s) for s in range(1, self.num_sev + 1)]
        )
        self.period = (
            math.prod(c + 1 for c in plan.counts) if plan.counts else 1
        )
        level_index_of = {lv: k for k, lv in enumerate(plan.levels)}
        self.pattern = np.array(
            [
                level_index_of[plan.level_at_position(m)]
                for m in range(1, self.period + 1)
            ],
            dtype=np.int64,
        )
        self.recover_idx = np.empty(self.num_sev, dtype=np.int64)
        for s in range(1, self.num_sev + 1):
            lv = plan.recovery_level(s)
            self.recover_idx[s - 1] = (
                level_index_of[lv] if lv is not None else -1
            )
        stream = req.stream
        if stream is None:
            stream = ExponentialStreamSpec(
                float(system.failure_rate),
                tuple(system.severity_probabilities),
            )
        self.stream = stream


def simulate_trials_batch(
    system: SystemSpec,
    plan: CheckpointPlan,
    seed_seqs,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
    silent_errors: SilentErrorSpec | None = None,
    stream=None,
) -> list[TrialResult]:
    """Simulate one trial per entry of ``seed_seqs``, all in lockstep.

    Parameters mirror :func:`~repro.simulator.engine.simulate_trial`;
    each ``seed_seqs`` entry seeds one trial's ``default_rng`` exactly as
    the scalar path does.  ``stream`` selects the failure process (a
    descriptor from :mod:`repro.failures.batching`; ``None`` = the
    system's exponential default).
    """
    return simulate_packed(
        [
            BatchRequest(
                system=system,
                plan=plan,
                seed_seqs=list(seed_seqs),
                max_time=max_time,
                restart_semantics=restart_semantics,
                checkpoint_at_completion=checkpoint_at_completion,
                recheckpoint=recheckpoint,
                silent_errors=silent_errors,
                stream=stream,
            )
        ]
    )[0]


def simulate_packed(requests: Sequence[BatchRequest]) -> list[list[TrialResult]]:
    """Simulate several scenarios' trials in one shared lockstep universe.

    Each request is validated independently; trials from all requests
    are concatenated (scenario-id column), tiled to :data:`_TILE`, and
    advanced together.  Results are bitwise identical to issuing one
    :func:`simulate_trials_batch` call per request — and therefore to
    the scalar loop — because every per-trial constant the hot loop
    touches is gathered through the scenario id before use.
    """
    configs = [_Config(req) for req in requests]
    flat_sid: list[int] = []
    flat_seeds: list = []
    for ci, req in enumerate(requests):
        seqs = list(req.seed_seqs)
        flat_sid.extend([ci] * len(seqs))
        flat_seeds.extend(seqs)

    per_request: list[list[TrialResult]] = [[] for _ in requests]
    for start in range(0, len(flat_seeds), _TILE):
        sid = flat_sid[start : start + _TILE]
        seeds = flat_seeds[start : start + _TILE]
        # Remap to tile-local config ids so single-scenario tiles (the
        # overwhelmingly common case) bind the scalar-constant fast path.
        used = sorted(set(sid))
        local = {ci: k for k, ci in enumerate(used)}
        tile_configs = [configs[ci] for ci in used]
        tile_sid = np.array([local[ci] for ci in sid], dtype=np.int64)
        results = _simulate_tile(tile_configs, tile_sid, seeds)
        for ci, res in zip(sid, results):
            per_request[ci].append(res)
    return per_request


def _uniform(values: list):
    """The single shared value, or ``None`` when the tile is heterogeneous."""
    first = values[0]
    return first if all(v == first for v in values[1:]) else None


def _simulate_tile(
    configs: list[_Config], sid: np.ndarray, seed_seqs: list
) -> list[TrialResult]:
    n = len(seed_seqs)
    nconf = len(configs)
    single = nconf == 1
    c0 = configs[0]

    # --- per-tile constants: python scalars when every scenario in the
    # tile agrees (the single-scenario fast path and homogeneous packs),
    # per-trial gathered arrays otherwise.  The hot-loop expressions are
    # written once and work for both bindings.
    def const(values, dtype=float):
        u = _uniform(values)
        if u is not None:
            return u
        return np.asarray(values, dtype=dtype)[sid]

    tau0_q = const([c.tau0 for c in configs])
    T_B_q = const([c.T_B for c in configs])
    T_B_lo_q = const([c.T_B - _EPS for c in configs])
    T_B_hi_q = const([c.T_B + _EPS for c in configs])
    cap_q = const([c.cap for c in configs])

    esc0 = _uniform([c.escalate for c in configs])
    esc_any = esc0 is not False  # True, or mixed
    esc_tr = (
        None if esc0 is not None
        else np.array([c.escalate for c in configs], dtype=bool)[sid]
    )
    cac0 = _uniform([c.cac for c in configs])
    cac_tr = (
        None if cac0 is not None
        else np.array([c.cac for c in configs], dtype=bool)[sid]
    )
    notcac_tr = None if cac_tr is None else ~cac_tr
    recheck0 = _uniform([c.recheckpoint for c in configs])
    if recheck0 is None:
        paid_tr = np.array(
            [c.recheckpoint == "paid" for c in configs], dtype=bool
        )[sid]
        free_tr = np.array(
            [c.recheckpoint == "free" for c in configs], dtype=bool
        )[sid]
    else:
        paid_tr = free_tr = None
    all_paid = recheck0 == "paid"

    num_used_max = max(c.num_used for c in configs)
    num_sev_max = max(c.num_sev for c in configs)
    num_sev_q = const([c.num_sev for c in configs], dtype=np.int64)

    if single:
        levels_bc = c0.levels[None, :]
        ckpt_cost0, rest_cost0 = c0.ckpt_cost, c0.rest_cost
        sev_rest0, recover0 = c0.sev_rest_cost, c0.recover_idx
        levels_tr = ckpt_cost_tr = rest_cost_tr = None
        sev_rest_tr = recover_tr = None
        pattern_flat = c0.pattern
        pat_off = None
        period_q = c0.period
    else:
        def pad2(arrs, width, fill, dtype):
            out = np.full((nconf, width), fill, dtype=dtype)
            for i, a in enumerate(arrs):
                out[i, : a.size] = a
            return out

        levels_tr = pad2(
            [c.levels for c in configs], num_used_max, _LEVEL_PAD, np.int64
        )[sid]
        levels_bc = levels_tr
        ckpt_cost_tr = pad2(
            [c.ckpt_cost for c in configs], num_used_max, 0.0, float
        )[sid]
        rest_cost_tr = pad2(
            [c.rest_cost for c in configs], num_used_max, 0.0, float
        )[sid]
        sev_rest_tr = pad2(
            [c.sev_rest_cost for c in configs], num_sev_max, 0.0, float
        )[sid]
        recover_tr = pad2(
            [c.recover_idx for c in configs], num_sev_max, -1, np.int64
        )[sid]
        ckpt_cost0 = rest_cost0 = sev_rest0 = recover0 = None
        pattern_flat = np.concatenate([c.pattern for c in configs])
        offsets = np.cumsum([0] + [c.period for c in configs[:-1]])
        pat_off = offsets[sid]
        period_q = const([c.period for c in configs], dtype=np.int64)

    col = np.arange(num_used_max, dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)
    rows_w = rows * _WINDOW

    # --- failure streams (each scenario's scalar source's exact draw
    # order; see repro.failures.batching for the bitwise contract) -----
    providers = [
        configs[s].stream.spawn(ss) for s, ss in zip(sid, seed_seqs)
    ]
    # Per-trial draw batches live in the arrays the providers allocate
    # rather than one persistent (n, 4096) buffer pair — first-touch
    # page faults on tens of MB would cost more than the whole setup.
    # The hot path gathers through a small sliding window refreshed
    # every _WINDOW consumed failures.
    ftime_rows: list = [None] * n
    sev_rows: list = [None] * n
    ptr = np.zeros(n, dtype=np.int64)
    win_t = np.empty((n, _WINDOW))
    win_s = np.empty((n, _WINDOW), dtype=np.int64)
    win_t_flat = win_t.reshape(-1)
    win_s_flat = win_s.reshape(-1)

    def refill_rows(ids, carries) -> None:
        """Next (times, severities) batch for each trial in ``ids``.

        ``ids`` are *current row* indices; the per-trial draw storage is
        addressed through ``orig`` so it survives compaction.
        """
        for i, carry in zip(ids, carries):
            j = orig[i]
            times, sevs = providers[j].refill(carry)
            ftime_rows[j] = times
            sev_rows[j] = sevs
            win_t[i] = times[:_WINDOW]
            win_s[i] = sevs[:_WINDOW]
        ptr[ids] = 0

    orig = rows  # current row -> original trial index (identity until compacted)
    refill_rows(range(n), [0.0] * n)  # source.next_after(0.0)
    fail_t = win_t[:, 0].copy()
    fail_s = win_s[:, 0].copy()

    # --- per-trial state ----------------------------------------------
    t = np.zeros(n)
    work = np.zeros(n)
    next_m = np.ones(n, dtype=np.int64)
    valid = np.full((n, num_used_max), -1, dtype=np.int64)
    sm = np.empty_like(valid)  # suffix-max scratch for candidate lookups
    recovering = np.zeros(n, dtype=bool)
    pending_sev = np.zeros(n, dtype=np.int64)
    rollback_ref = np.zeros(n)
    max_completed_m = np.zeros(n, dtype=np.int64)
    compute_time = np.zeros(n)

    acct_checkpoint = np.zeros(n)
    acct_failed_checkpoint = np.zeros(n)
    acct_restart = np.zeros(n)
    acct_failed_restart = np.zeros(n)
    acct_rework_compute = np.zeros(n)
    acct_rework_checkpoint = np.zeros(n)
    acct_rework_restart = np.zeros(n)
    n_by_sev = np.zeros((n, num_sev_max), dtype=np.int64)
    ckpt_ok = np.zeros(n, dtype=np.int64)
    ckpt_fail = np.zeros(n, dtype=np.int64)
    rst_ok = np.zeros(n, dtype=np.int64)
    rst_fail = np.zeros(n, dtype=np.int64)
    scratch = np.zeros(n, dtype=np.int64)
    restored = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    # --- silent-error state (allocated only when the mode is on for at
    # least one scenario in the tile; trials of silent-off scenarios see
    # inf sentinels, so every masked float op matches their scalar walk).
    silents = [c.silent for c in configs]
    any_silent = any(s is not None for s in silents)
    if any_silent:
        d_lat_by_trial = [
            (
                silents[s].detection_latency
                if silents[s] is not None
                else math.inf
            )
            for s in sid
        ]
        sstreams = [
            (
                SilentStream(silents[s], np.random.default_rng(ss.spawn(1)[0]))
                if silents[s] is not None
                else None
            )
            for s, ss in zip(sid, seed_seqs)
        ]
        next_strike = np.array(
            [st.peek() if st is not None else math.inf for st in sstreams]
        )
        armed = np.zeros(n, dtype=bool)
        strike_t = np.full(n, np.inf)
        detect_t = np.full(n, np.inf)
        valid_t = np.zeros((n, num_used_max))  # completion time of valid[:, k]
        silent_det = np.zeros(n, dtype=np.int64)
        full_armed, full_strike_t, full_silent_det = armed, strike_t, silent_det

    # Full-size result stores.  The loop works on a *compacted* live
    # subset once enough trials finish (straggler tails would otherwise
    # keep full-width ops running for a handful of trials); finished
    # rows are flushed back here through ``orig``.  Until the first
    # compaction these alias the working arrays, so flushing is a no-op
    # self-assignment.
    full_t, full_work, full_next_m = t, work, next_m
    full_recovering, full_rollback_ref = recovering, rollback_ref
    full_compute_time = compute_time
    full_acct_checkpoint = acct_checkpoint
    full_acct_failed_checkpoint = acct_failed_checkpoint
    full_acct_restart = acct_restart
    full_acct_failed_restart = acct_failed_restart
    full_acct_rework_compute = acct_rework_compute
    full_acct_rework_checkpoint = acct_rework_checkpoint
    full_acct_rework_restart = acct_rework_restart
    full_n_by_sev = n_by_sev
    full_ckpt_ok, full_ckpt_fail = ckpt_ok, ckpt_fail
    full_rst_ok, full_rst_fail = rst_ok, rst_fail
    full_scratch, full_restored = scratch, restored

    def flush() -> None:
        """Scatter the live rows' state back into the full-size stores."""
        full_t[orig] = t
        full_work[orig] = work
        full_next_m[orig] = next_m
        full_recovering[orig] = recovering
        full_rollback_ref[orig] = rollback_ref
        full_compute_time[orig] = compute_time
        full_acct_checkpoint[orig] = acct_checkpoint
        full_acct_failed_checkpoint[orig] = acct_failed_checkpoint
        full_acct_restart[orig] = acct_restart
        full_acct_failed_restart[orig] = acct_failed_restart
        full_acct_rework_compute[orig] = acct_rework_compute
        full_acct_rework_checkpoint[orig] = acct_rework_checkpoint
        full_acct_rework_restart[orig] = acct_rework_restart
        full_n_by_sev[orig] = n_by_sev
        full_ckpt_ok[orig] = ckpt_ok
        full_ckpt_fail[orig] = ckpt_fail
        full_rst_ok[orig] = rst_ok
        full_rst_fail[orig] = rst_fail
        full_scratch[orig] = scratch
        full_restored[orig] = restored
        if any_silent:
            full_armed[orig] = armed
            full_strike_t[orig] = strike_t
            full_silent_det[orig] = silent_det

    def suffix_max_valid() -> None:
        """``sm[:, k]`` = newest position valid at any used level >= k."""
        np.copyto(sm, valid)
        for k in range(num_used_max - 2, -1, -1):
            np.maximum(sm[:, k], sm[:, k + 1], out=sm[:, k])

    def take_rest(k):
        return rest_cost0[k] if single else rest_cost_tr[rows, k]

    def take_ckpt(k):
        return ckpt_cost0[k] if single else ckpt_cost_tr[rows, k]

    def take_sevrest(s_idx):
        return sev_rest0[s_idx] if single else sev_rest_tr[rows, s_idx]

    def take_recover(s_idx):
        return recover0[s_idx] if single else recover_tr[rows, s_idx]

    def on_failures(fmask: np.ndarray, attributions) -> None:
        """Shared failure bookkeeping for every trial in ``fmask`` at once.

        ``attributions`` pairs disjoint sub-masks of ``fmask`` with the
        rework bucket their lost work belongs to (one entry per event
        phase that saw failures this iteration).
        """
        s = fail_s
        # fidx rows are unique (one failure per trial per call), so the
        # fancy in-place add is well-defined — and O(failed) instead of
        # the O(n * S) masked broadcast.
        fidx = np.flatnonzero(fmask)
        n_by_sev[fidx, s[fidx] - 1] += 1
        if esc_any:
            # escalate: an equal-severity failure while already
            # recovering promotes the pending severity one level (the
            # scalar engine's Moody-style branch, masked).  The
            # by-severity count above uses the *original* severity, as
            # the scalar loop does.
            esc = fmask & recovering & (s == pending_sev) & (s < num_sev_q)
            if esc_tr is not None:
                esc &= esc_tr
            s = s + esc
        newrec = fmask & ~recovering
        np.copyto(rollback_ref, work, where=newrec)
        # Outside recovery pending_sev == 0 and s >= 1, so one masked
        # maximum covers both the "new recovery" and "escalating
        # severity while recovering" scalar branches.
        np.maximum(pending_sev, s, out=pending_sev, where=fmask)
        np.logical_or(recovering, fmask, out=recovering)
        np.copyto(
            valid,
            np.int64(-1),
            where=fmask[:, None] & (levels_bc < s[:, None]),
        )
        # Re-target: newest valid position able to recover pending_sev.
        suffix_max_valid()
        lo = take_recover(pending_sev - 1)
        best = sm[rows, np.maximum(lo, 0)]
        pos = np.maximum(np.where(lo >= 0, best, np.int64(-1)), 0)
        posw = pos * tau0_q
        lost = rollback_ref - posw
        hitpos = lost > 0
        for mask, bucket in attributions:
            np.add(bucket, lost, out=bucket, where=mask & hitpos)
        np.copyto(rollback_ref, posw, where=fmask & hitpos)
        # Pop the next (time, severity) per failed trial; refill the rare
        # trials that exhausted their 4096-draw batch, slide the window
        # for those that crossed a _WINDOW boundary.
        np.add(ptr, fmask, out=ptr)
        exhausted = ptr >= _RNG_BATCH
        if exhausted.any():
            ids = np.flatnonzero(exhausted)
            refill_rows(ids, [ftime_rows[orig[i]][-1] for i in ids])
        off = ptr & (_WINDOW - 1)
        crossed = fmask & (off == 0) & (ptr != 0)
        if crossed.any():
            for i in np.flatnonzero(crossed):
                j, p = orig[i], ptr[i]
                win_t[i] = ftime_rows[j][p : p + _WINDOW]
                win_s[i] = sev_rows[j][p : p + _WINDOW]
        idx = rows_w + off
        np.take(win_t_flat, idx, out=fail_t)
        np.take(win_s_flat, idx, out=fail_s)

    def arm_strikes(mask: np.ndarray, dur) -> None:
        """Arm the next silent strike for ``mask`` trials whose strike
        lands inside the nominal segment ``[t, t + dur)`` — the scalar
        ``seg_fate`` arming step, one compare plus a rare python loop."""
        arm = mask & ~armed & (next_strike < t + dur)
        if arm.any():
            for i in np.flatnonzero(arm):
                st = sstreams[orig[i]]
                strike_t[i] = st.pop()
                detect_t[i] = strike_t[i] + d_lat_by_trial[orig[i]]
                next_strike[i] = st.peek()
            armed[arm] = True

    def on_detections(dmask: np.ndarray, det_attr) -> None:
        """Vectorized mirror of the scalar engine's ``on_detection``:
        invalidate post-strike checkpoints, enter (or keep) recovery at
        severity 1, re-target, attribute lost work per phase, disarm."""
        np.add(silent_det, dmask, out=silent_det)
        np.copyto(
            valid,
            np.int64(-1),
            where=dmask[:, None] & (valid >= 0) & (valid_t > strike_t[:, None]),
        )
        newrec = dmask & ~recovering
        np.copyto(rollback_ref, work, where=newrec)
        np.maximum(pending_sev, np.int64(1), out=pending_sev, where=dmask)
        np.logical_or(recovering, dmask, out=recovering)
        suffix_max_valid()
        lo = take_recover(pending_sev - 1)
        best = sm[rows, np.maximum(lo, 0)]
        pos = np.maximum(np.where(lo >= 0, best, np.int64(-1)), 0)
        posw = pos * tau0_q
        lost = rollback_ref - posw
        hitpos = lost > 0
        for mask, bucket in det_attr:
            np.add(bucket, lost, out=bucket, where=mask & hitpos)
        np.copyto(rollback_ref, posw, where=dmask & hitpos)
        armed[dmask] = False
        for i in np.flatnonzero(dmask):
            st = sstreams[orig[i]]
            st.skip_past(detect_t[i])
            next_strike[i] = st.peek()
        strike_t[dmask] = np.inf
        detect_t[dmask] = np.inf

    attributions: list[tuple[np.ndarray, np.ndarray]] = []
    det_attr: list[tuple[np.ndarray, np.ndarray]] = []

    def successors(moved: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Re-evaluate the scalar top-of-iteration predicates for trials
        whose state just advanced; returns (compute, checkpoint) masks of
        those that continue this iteration.  Fusion never changes a
        trial's event sequence, only when it is processed, so trials not
        picked up here are simply handled next iteration."""
        boundary = next_m * tau0_q
        over = boundary > T_B_hi_q
        fin2 = work >= T_B_lo_q
        if cac0 is True:
            fin2 = fin2 & over
        elif cac_tr is not None:
            fin2 = fin2 & (over | notcac_tr)
        go = moved & ~fin2 & (t < cap_q)
        compx = go & ((work < boundary - _EPS) | over)
        return compx, go ^ compx

    def restart_block(rec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        suffix_max_valid()
        lo = take_recover(pending_sev - 1)
        has_lo = lo >= 0
        best = sm[rows, np.maximum(lo, 0)]
        pos = np.maximum(np.where(has_lo, best, np.int64(-1)), 0)
        has = pos > 0
        # First used level >= lo holding the chosen position: the
        # cheapest sufficient restart, as in the scalar engine.
        elig = (valid == pos[:, None]) & (col[None, :] >= lo[:, None])
        k_use = np.argmax(elig, axis=1)
        dur = np.where(
            has,
            take_rest(k_use),
            np.where(
                has_lo,
                take_rest(np.maximum(lo, 0)),
                take_sevrest(pending_sev - 1),
            ),
        )
        slack = fail_t - t
        if not any_silent:
            ok = rec & (slack >= dur)
            flr = rec ^ ok
            detr = None
        else:
            arm_strikes(rec, dur)
            dslack = detect_t - t
            ok = rec & (slack >= dur) & (dslack >= dur)
            flr = rec & (slack < dur) & ((dslack >= dur) | (fail_t <= detect_t))
            detr = rec & ~ok & ~flr
        np.add(t, dur, out=t, where=ok)
        np.add(acct_restart, dur, out=acct_restart, where=ok)
        np.add(rst_ok, ok, out=rst_ok)
        np.add(scratch, ok & ~has, out=scratch)
        np.copyto(work, pos * tau0_q, where=ok)
        np.copyto(next_m, pos + 1, where=ok)
        np.copyto(pending_sev, np.int64(0), where=ok)
        np.logical_xor(recovering, ok, out=recovering)
        if flr.any():
            np.add(
                acct_failed_restart, slack, out=acct_failed_restart, where=flr
            )
            np.add(rst_fail, flr, out=rst_fail)
            np.copyto(t, fail_t, where=flr)
            attributions.append((flr, acct_rework_restart))
        if detr is not None and detr.any():
            np.add(
                acct_failed_restart, dslack, out=acct_failed_restart, where=detr
            )
            np.add(rst_fail, detr, out=rst_fail)
            np.copyto(t, detect_t, where=detr)
            det_attr.append((detr, acct_rework_restart))
        if ok.any():
            return successors(ok)
        return _ZFALSE, _ZFALSE

    def compute_block(comp: np.ndarray) -> np.ndarray:
        boundary = next_m * tau0_q
        target = np.minimum(boundary, T_B_q)
        dur = target - work
        slack = fail_t - t
        if not any_silent:
            okc = comp & (slack >= dur)
            flc = comp ^ okc
            detc = None
        else:
            arm_strikes(comp, dur)
            dslack = detect_t - t
            okc = comp & (slack >= dur) & (dslack >= dur)
            flc = comp & (slack < dur) & ((dslack >= dur) | (fail_t <= detect_t))
            detc = comp & ~okc & ~flc
        np.add(t, dur, out=t, where=okc)
        np.add(compute_time, dur, out=compute_time, where=okc)
        np.copyto(work, target, where=okc)
        if flc.any():
            np.add(compute_time, slack, out=compute_time, where=flc)
            np.add(work, slack, out=work, where=flc)
            np.copyto(t, fail_t, where=flc)
            attributions.append((flc, acct_rework_compute))
        if detc is not None and detc.any():
            np.add(compute_time, dslack, out=compute_time, where=detc)
            np.add(work, dslack, out=work, where=detc)
            np.copyto(t, detect_t, where=detc)
            det_attr.append((detc, acct_rework_compute))
        if okc.any():
            # A committed compute segment ends at its boundary (or at
            # completion); only the checkpoint successor can fire.
            _, bndx = successors(okc)
            return bndx
        return _ZFALSE

    def checkpoint_block(
        bnd: np.ndarray, fuse: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        idx = (next_m - 1) % period_q
        if pat_off is not None:
            idx = idx + pat_off
        k = np.take(pattern_flat, idx)
        kc = col[None, :] <= k[:, None]
        take = bnd
        redo = None
        if not all_paid:
            redo = bnd & (next_m <= max_completed_m)
            if paid_tr is not None:
                redo &= ~paid_tr
            if redo.any():
                # Recomputation past previously-completed positions:
                # "free" re-establishes validity at zero cost, "skip"
                # leaves the old recovery point as the only fallback.
                free_redo = redo if free_tr is None else redo & free_tr
                if recheck0 == "free" or free_tr is not None:
                    np.copyto(
                        valid, next_m[:, None], where=kc & free_redo[:, None]
                    )
                    if any_silent:
                        np.copyto(
                            valid_t, t[:, None], where=kc & free_redo[:, None]
                        )
                    np.add(restored, free_redo, out=restored)
                take = bnd ^ redo
                np.add(next_m, redo, out=next_m)
            else:
                redo = None
        okk = _ZFALSE
        if take.any():
            dur = take_ckpt(k)
            slack = fail_t - t
            if not any_silent:
                okk = take & (slack >= dur)
                flk = take ^ okk
                detk = None
            else:
                arm_strikes(take, dur)
                dslack = detect_t - t
                okk = take & (slack >= dur) & (dslack >= dur)
                flk = take & (slack < dur) & (
                    (dslack >= dur) | (fail_t <= detect_t)
                )
                detk = take & ~okk & ~flk
            np.add(t, dur, out=t, where=okk)
            np.add(acct_checkpoint, dur, out=acct_checkpoint, where=okk)
            np.add(ckpt_ok, okk, out=ckpt_ok)
            # hierarchical write: validates all levels <= k
            np.copyto(valid, next_m[:, None], where=kc & okk[:, None])
            if any_silent:
                np.copyto(valid_t, t[:, None], where=kc & okk[:, None])
            np.maximum(
                max_completed_m, next_m, out=max_completed_m, where=okk
            )
            np.add(next_m, okk, out=next_m)
            if flk.any():
                np.add(
                    acct_failed_checkpoint,
                    slack,
                    out=acct_failed_checkpoint,
                    where=flk,
                )
                np.add(ckpt_fail, flk, out=ckpt_fail)
                np.copyto(t, fail_t, where=flk)
                attributions.append((flk, acct_rework_checkpoint))
            if detk is not None and detk.any():
                np.add(
                    acct_failed_checkpoint,
                    dslack,
                    out=acct_failed_checkpoint,
                    where=detk,
                )
                np.add(ckpt_fail, detk, out=ckpt_fail)
                np.copyto(t, detect_t, where=detk)
                det_attr.append((detk, acct_rework_checkpoint))
        # Both a committed checkpoint and a redo hop continue to their
        # next event (normally the next compute segment) this iteration.
        if not fuse:
            return _ZFALSE, _ZFALSE
        moved = okk if redo is None else okk | redo
        if moved.any():
            return successors(moved)
        return _ZFALSE, _ZFALSE

    _ZFALSE = np.zeros(n, dtype=bool)

    while True:
        boundary = next_m * tau0_q
        nrec = ~recovering
        over_hi = boundary > T_B_hi_q
        fin = work >= T_B_lo_q
        if cac0 is True:
            fin &= over_hi
        elif cac_tr is not None:
            fin &= over_hi | notcac_tr
        fin &= nrec
        stop = fin | (t >= cap_q)
        active &= ~stop
        live = int(active.sum())
        if live == 0:
            flush()
            break
        if live * 2 <= orig.size and orig.size > 32:
            # Compact: flush everything, then keep only live rows.  The
            # RNG buffers stay full-size (compacting megabytes to drop a
            # few rows would cost more than it saves); ``orig``/``rows_w``
            # keep addressing them correctly.
            flush()
            keep = np.flatnonzero(active)
            orig = orig[keep]
            t, work, next_m = t[keep], work[keep], next_m[keep]
            recovering = recovering[keep]
            pending_sev = pending_sev[keep]
            rollback_ref = rollback_ref[keep]
            max_completed_m = max_completed_m[keep]
            compute_time = compute_time[keep]
            fail_t, fail_s, ptr = fail_t[keep], fail_s[keep], ptr[keep]
            win_t, win_s = win_t[keep], win_s[keep]
            win_t_flat = win_t.reshape(-1)
            win_s_flat = win_s.reshape(-1)
            valid, n_by_sev = valid[keep], n_by_sev[keep]
            sm = np.empty_like(valid)
            acct_checkpoint = acct_checkpoint[keep]
            acct_failed_checkpoint = acct_failed_checkpoint[keep]
            acct_restart = acct_restart[keep]
            acct_failed_restart = acct_failed_restart[keep]
            acct_rework_compute = acct_rework_compute[keep]
            acct_rework_checkpoint = acct_rework_checkpoint[keep]
            acct_rework_restart = acct_rework_restart[keep]
            ckpt_ok, ckpt_fail = ckpt_ok[keep], ckpt_fail[keep]
            rst_ok, rst_fail = rst_ok[keep], rst_fail[keep]
            scratch, restored = scratch[keep], restored[keep]
            if any_silent:
                armed, strike_t = armed[keep], strike_t[keep]
                detect_t, next_strike = detect_t[keep], next_strike[keep]
                valid_t, silent_det = valid_t[keep], silent_det[keep]
            if not single:
                levels_tr = levels_tr[keep]
                levels_bc = levels_tr
                ckpt_cost_tr = ckpt_cost_tr[keep]
                rest_cost_tr = rest_cost_tr[keep]
                sev_rest_tr = sev_rest_tr[keep]
                recover_tr = recover_tr[keep]
                if pat_off is not None:
                    pat_off = pat_off[keep]
            if isinstance(tau0_q, np.ndarray):
                tau0_q = tau0_q[keep]
            if isinstance(T_B_q, np.ndarray):
                T_B_q = T_B_q[keep]
            if isinstance(T_B_lo_q, np.ndarray):
                T_B_lo_q = T_B_lo_q[keep]
            if isinstance(T_B_hi_q, np.ndarray):
                T_B_hi_q = T_B_hi_q[keep]
            if isinstance(cap_q, np.ndarray):
                cap_q = cap_q[keep]
            if isinstance(period_q, np.ndarray):
                period_q = period_q[keep]
            if isinstance(num_sev_q, np.ndarray):
                num_sev_q = num_sev_q[keep]
            if esc_tr is not None:
                esc_tr = esc_tr[keep]
            if cac_tr is not None:
                cac_tr, notcac_tr = cac_tr[keep], notcac_tr[keep]
            if paid_tr is not None:
                paid_tr, free_tr = paid_tr[keep], free_tr[keep]
            rows = np.arange(orig.size, dtype=np.int64)
            rows_w = rows * _WINDOW
            active = np.ones(orig.size, dtype=bool)
            _ZFALSE = np.zeros(orig.size, dtype=bool)
            boundary = next_m * tau0_q
            nrec = ~recovering
            over_hi = boundary > T_B_hi_q

        rec = active & recovering
        nact = active & nrec
        comp = nact & ((work < boundary - _EPS) | over_hi)
        bnd = nact ^ comp
        attributions.clear()
        det_attr.clear()

        # Event fusion: a successful restart chains into its follow-up
        # compute segment, a successful compute into its checkpoint, and
        # a successful (or redone) checkpoint back into the next compute
        # — up to _FUSE_ROUNDS compute/checkpoint hops per iteration.
        # Each hop re-evaluates exactly the scalar loop's
        # top-of-iteration predicates (completion, cap, branch
        # selection) on the updated state, so the per-trial event
        # sequence — and every float op — is unchanged; only the number
        # of lockstep iterations drops.
        if rec.any():
            c2, b2 = restart_block(rec)
            comp = comp | c2
            bnd = bnd | b2
        for _round in range(_FUSE_ROUNDS):
            if comp.any():
                bnd = bnd | compute_block(comp)
            if not bnd.any():
                break
            last = _round + 1 == _FUSE_ROUNDS
            comp, bnd = checkpoint_block(bnd, fuse=not last)
            if last:
                break
            # Adaptive cutoff: every round costs full-width ops whether
            # one trial continues or all of them; when few do (failure-
            # heavy regimes break chains early), defer them to the next
            # iteration instead of paying another round now.
            if (int(comp.sum()) + int(bnd.sum())) * 4 < live:
                break

        if attributions:
            fmask = attributions[0][0]
            for mask, _ in attributions[1:]:
                fmask = fmask | mask
            on_failures(fmask, attributions)
        if det_attr:
            dmask = det_attr[0][0]
            for mask, _ in det_attr[1:]:
                dmask = dmask | mask
            on_detections(dmask, det_attr)

    t, work, next_m = full_t, full_work, full_next_m
    recovering, rollback_ref = full_recovering, full_rollback_ref
    compute_time = full_compute_time
    acct_checkpoint = full_acct_checkpoint
    acct_failed_checkpoint = full_acct_failed_checkpoint
    acct_restart = full_acct_restart
    acct_failed_restart = full_acct_failed_restart
    acct_rework_compute = full_acct_rework_compute
    acct_rework_checkpoint = full_acct_rework_checkpoint
    acct_rework_restart = full_acct_rework_restart
    n_by_sev = full_n_by_sev
    ckpt_ok, ckpt_fail = full_ckpt_ok, full_ckpt_fail
    rst_ok, rst_fail = full_rst_ok, full_rst_fail
    scratch, restored = full_scratch, full_restored

    # Deactivated state is frozen, so final classification reproduces the
    # scalar loop's top-of-iteration completion test (per-trial constants
    # regathered at full width — the loop's bindings were compacted).
    tb_lo_f = np.array([c.T_B - _EPS for c in configs])[sid]
    tb_hi_f = np.array([c.T_B + _EPS for c in configs])[sid]
    tau0_f = np.array([c.tau0 for c in configs])[sid]
    cac_f = np.array([c.cac for c in configs], dtype=bool)[sid]
    completed = ~recovering & (work >= tb_lo_f)
    if cac_f.any():
        completed &= (next_m * tau0_f > tb_hi_f) | ~cac_f
    if not any_silent:
        silent_det_out = silent_undet_out = np.zeros(n, dtype=np.int64)
    else:
        silent_det_out = full_silent_det
        silent_undet_out = (
            completed & full_armed & (full_strike_t <= t)
        ).astype(np.int64)
    # Horizon cap fired mid-recovery: only the recovery position counts
    # as retained work (losses above it are already in rework buckets).
    np.copyto(work, rollback_ref, where=recovering)

    rework = acct_rework_compute + acct_rework_checkpoint + acct_rework_restart
    if not np.allclose(compute_time, work + rework, rtol=1e-6, atol=1e-6):
        worst = int(np.argmax(np.abs(compute_time - work - rework)))
        raise RuntimeError(
            "batched engine invariant violated: compute_time != work + rework "
            f"(trial {worst}: {compute_time[worst]!r} != "
            f"{work[worst]!r} + {rework[worst]!r})"
        )

    out: list[TrialResult] = []
    for i in range(n):
        num_sev_i = configs[sid[i]].num_sev
        times = TimeBreakdown(
            work=float(work[i]),
            checkpoint=float(acct_checkpoint[i]),
            failed_checkpoint=float(acct_failed_checkpoint[i]),
            restart=float(acct_restart[i]),
            failed_restart=float(acct_failed_restart[i]),
            rework_compute=float(acct_rework_compute[i]),
            rework_checkpoint=float(acct_rework_checkpoint[i]),
            rework_restart=float(acct_rework_restart[i]),
        )
        out.append(
            TrialResult(
                total_time=float(t[i]),
                work_done=float(work[i]),
                completed=bool(completed[i]),
                times=times,
                failures_by_severity=tuple(
                    int(x) for x in n_by_sev[i, :num_sev_i]
                ),
                checkpoints_completed=int(ckpt_ok[i]),
                checkpoints_failed=int(ckpt_fail[i]),
                checkpoints_restored=int(restored[i]),
                restarts_completed=int(rst_ok[i]),
                restarts_failed=int(rst_fail[i]),
                scratch_restarts=int(scratch[i]),
                silent_detections=int(silent_det_out[i]),
                silent_undetected=int(silent_undet_out[i]),
                events=None,
            )
        )
    return out
