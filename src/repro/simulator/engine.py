"""Fast event-driven simulation of one protected application execution.

This is the package's ground truth — the counterpart of the event-based
simulator the paper validates against (Section IV-B).  One trial walks the
application through alternating compute segments, checkpoint writes and
restarts while a :class:`~repro.failures.sources.FailureSource` injects
random failures, implementing exactly the semantics the paper states:

* checkpoints are taken at fixed *work* positions ``m * tau0`` with the
  level given by the plan's pattern; a completed level-``i`` checkpoint
  establishes valid checkpoints at every used level ``<= i`` (SCR performs
  the nested lower-level checkpoints within the same write, Section II-B);
* a severity-``s`` failure destroys every checkpoint of level ``< s`` and
  is recovered from the *newest* valid checkpoint among levels ``>= s``
  (ties broken toward the cheaper restart), or from scratch when none
  exists — the risk a plan that skips top levels accepts (Section IV-F);
* failures can strike during checkpoints and during restarts.  A failure
  of severity ``<=`` the outstanding severity during a restart means the
  same checkpoint is retried — the paper's (and its simulator's)
  assumption for *all* techniques (Section IV-G).  ``escalate`` semantics
  (Moody et al.'s pessimistic assumption: an equal-severity failure forces
  the next level up) are available for the ablation study;
* after a restart the application recomputes lost work; what happens at
  checkpoint positions it had already completed is governed by the
  ``recheckpoint`` policy (the default matches the analytic models'
  assumptions — see the parameter documentation and DESIGN.md 7a);
* optionally (``silent_errors=``), silent data corruptions strike from a
  dedicated Poisson stream and surface a detection latency later, at
  which point every checkpoint completed after the strike is invalidated
  and the run rolls back to the newest pre-strike checkpoint — the
  semantics and approximations live in :mod:`repro.core.silent`.

The walk is O(1) per event with batched RNG draws; a horizon cap bounds
near-zero-efficiency scenarios, whose efficiency is then reported by the
consistent utilization estimator ``work_done / elapsed``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.plan import CheckpointPlan
from ..core.silent import SilentErrorSpec, SilentStream
from ..failures.sources import ExponentialFailureSource, FailureSource
from ..systems.spec import SystemSpec
from .accounting import TimeBreakdown, TrialResult
from .tracelog import SimEvent

__all__ = ["simulate_trial", "default_max_time"]

_EPS = 1e-9


def default_max_time(system: SystemSpec) -> float:
    """Simulation horizon cap: generous, but bounded, for hopeless plans.

    Fifteen times the baseline measures any efficiency above ~7% exactly
    (the run completes inside the horizon) and gives the utilization
    estimator thousands of renewal cycles below that; the MTBF term keeps
    very short applications on very unreliable systems (Figure 5's
    30-minute runs at 3-minute MTBF) from being cut off before they see
    enough failures.
    """
    return max(15.0 * system.baseline_time, system.baseline_time + 300.0 * system.mtbf)


def simulate_trial(
    system: SystemSpec,
    plan: CheckpointPlan,
    rng: np.random.Generator | int | None = None,
    source: FailureSource | None = None,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
    record_events: bool = False,
    silent_errors: SilentErrorSpec | None = None,
    silent_rng: np.random.Generator | int | None = None,
) -> TrialResult:
    """Simulate one execution of ``system``'s application under ``plan``.

    Parameters
    ----------
    rng:
        Seed or generator for the default exponential failure source
        (ignored when ``source`` is given).
    source:
        Explicit failure process; pass a
        :class:`~repro.failures.sources.TraceFailureSource` for
        deterministic replay.
    max_time:
        Simulation horizon; defaults to :func:`default_max_time`.
    restart_semantics:
        ``"retry"`` (the paper's simulator assumption) or ``"escalate"``
        (Moody et al.'s model assumption) — see module docstring.
    checkpoint_at_completion:
        Take a final checkpoint if a pattern position coincides with the
        end of the application (off by default: a finished application
        has no state worth saving; the analytic models price it, which
        contributes a documented ``<= delta_L / T_B`` prediction bias).
    recheckpoint:
        What happens at a checkpoint position the application had already
        checkpointed before a failure rolled it back:

        * ``"free"`` (default) — the checkpoint is considered
          re-established without cost when the recomputation passes its
          position.  This is the world every analytic model (the paper's
          included) implicitly assumes: exactly ``N_i`` checkpoint costs
          per interval, with scheduled recovery points always available.
          Matching it keeps simulated-vs-predicted comparisons about the
          effects the paper studies rather than about re-checkpointing,
          and reproduces the near-zero model errors the paper reports.
        * ``"paid"`` — re-taking costs the full checkpoint duration
          again, as a deployed SCR would pay (the failure destroyed the
          original copies).  No model prices this; at extreme failure
          rates it adds a systematic optimism of several efficiency
          points to *every* model (see the ablation bench).
        * ``"skip"`` — previously-completed positions are neither paid
          nor re-established; recoveries keep falling back to the
          original recovery point until new positions are reached.
    record_events:
        Record a :class:`~repro.simulator.tracelog.SimEvent` timeline in
        ``TrialResult.events`` (off by default: the hot loop stays
        allocation-free for large sweeps).
    silent_errors:
        Optional :class:`~repro.core.silent.SilentErrorSpec` (or dict)
        enabling silent data corruptions: the verification cost ``V``
        joins every checkpoint write, strikes arrive from a dedicated
        Poisson stream, and a strike is detected ``D`` later — at which
        point every checkpoint completed after the strike is invalidated
        and the run rolls back to the newest pre-strike checkpoint (or
        scratch).  See :mod:`repro.core.silent` for the shared
        approximations; ``None`` leaves the fail-stop walk untouched.
    silent_rng:
        Seed or generator for the silent strike stream.  It must be
        *separate* from the fail-stop ``rng`` so enabling silent errors
        does not perturb the fail-stop draw sequence (and so both engines
        draw identical strikes); :func:`~repro.simulator.run.simulate_many`
        derives it from the trial's seed automatically.
    """
    if plan.top_level > system.num_levels:
        raise ValueError(
            f"plan uses level {plan.top_level} but {system.name} has "
            f"{system.num_levels} levels"
        )
    if restart_semantics not in ("retry", "escalate"):
        raise ValueError(f"unknown restart_semantics {restart_semantics!r}")
    if recheckpoint not in ("free", "paid", "skip"):
        raise ValueError(f"unknown recheckpoint policy {recheckpoint!r}")
    escalate = restart_semantics == "escalate"

    if source is None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        source = ExponentialFailureSource.for_system(system, rng)
    cap = default_max_time(system) if max_time is None else float(max_time)

    silent = SilentErrorSpec.resolve(silent_errors)
    sstream: SilentStream | None = None
    if silent is not None:
        if not isinstance(silent_rng, np.random.Generator):
            silent_rng = np.random.default_rng(silent_rng)
        sstream = SilentStream(silent, silent_rng)

    T_B = system.baseline_time
    tau0 = plan.tau0
    levels = plan.levels
    num_used = len(levels)
    num_sev = system.num_levels
    verify = silent.verify_cost if silent is not None else 0.0
    ckpt_cost = [system.checkpoint_time(lv) + verify for lv in levels]
    rest_cost = [system.restart_time(lv) for lv in levels]
    sev_rest_cost = [system.restart_time(s) for s in range(1, num_sev + 1)]

    # Pattern level (as used-level *index*) per position, one full period.
    period = math.prod(n + 1 for n in plan.counts) if plan.counts else 1
    level_index_of = {lv: k for k, lv in enumerate(levels)}
    pattern = [
        level_index_of[plan.level_at_position(m)] for m in range(1, period + 1)
    ]

    # Used-level index of the recovery level per severity (-1 = scratch).
    recover_idx = []
    for s in range(1, num_sev + 1):
        lv = plan.recovery_level(s)
        recover_idx.append(level_index_of[lv] if lv is not None else -1)

    # --- state -------------------------------------------------------
    t = 0.0
    work = 0.0
    next_m = 1  # next checkpoint position index
    valid = [-1] * num_used  # newest checkpointed position index per level
    valid_t = [0.0] * num_used  # wall-clock completion time of valid[k]
    recovering = False
    pending_sev = 0
    rollback_ref = 0.0
    # Silent-error state: one strike "armed" at a time (see
    # repro.core.silent); its detection fires at strike + D.
    armed = False
    strike_t = math.inf
    detect_t = math.inf
    silent_det = silent_undet = 0

    compute_time = 0.0
    acct = TimeBreakdown()
    n_by_sev = [0] * num_sev
    ckpt_ok = ckpt_fail = rst_ok = rst_fail = scratch = restored = 0
    # Highest checkpoint position ever completed; positions complete in
    # order, so everything <= this index has been checkpointed before.
    max_completed_m = 0

    fail_t, fail_s = source.next_after(0.0)
    completed = False
    events: list[SimEvent] | None = [] if record_events else None

    def candidate(sev: int) -> int:
        """Newest valid checkpoint position able to recover ``sev`` (else 0)."""
        best = 0
        lo = recover_idx[sev - 1]
        if lo < 0:
            # No used level covers this severity: only scratch recovery.
            return 0
        for k in range(lo, num_used):
            if valid[k] > best:
                best = valid[k]
        return best

    def on_failure(category: str) -> None:
        """Shared failure bookkeeping: invalidate, re-target, attribute loss."""
        nonlocal recovering, pending_sev, rollback_ref, fail_t, fail_s
        s = fail_s
        n_by_sev[s - 1] += 1
        if recovering:
            if escalate and s == pending_sev and s < num_sev:
                s = s + 1  # Moody-style escalation to the next level up
            if s > pending_sev:
                pending_sev = s
        else:
            recovering = True
            pending_sev = s
            rollback_ref = work
        for k in range(num_used):
            if levels[k] < s and valid[k] >= 0:
                valid[k] = -1
        pos = candidate(pending_sev) * tau0
        lost = rollback_ref - pos
        if lost > 0:
            if category == "compute":
                acct.rework_compute += lost
            elif category == "checkpoint":
                acct.rework_checkpoint += lost
            else:
                acct.rework_restart += lost
            rollback_ref = pos
        fail_t, fail_s = source.next_after(fail_t)

    def seg_fate(dur: float) -> int:
        """Classify the segment starting at ``t``: 0 commit, 1 fail, 2 detect.

        Arms the next silent strike when it lands inside the nominal
        segment (arming is mere pre-computation — strikes live on wall
        clock, so arming one the segment never reaches is harmless).  A
        failure wins a failure/detection tie.
        """
        nonlocal armed, strike_t, detect_t
        if sstream is not None and not armed and sstream.peek() < t + dur:
            strike_t = sstream.pop()
            detect_t = strike_t + silent.detection_latency
            armed = True
        fail_in = fail_t - t < dur
        det_in = armed and detect_t - t < dur
        if fail_in and (not det_in or fail_t <= detect_t):
            return 1
        if det_in:
            return 2
        return 0

    def on_detection(category: str) -> None:
        """A silent strike surfaces ``D`` after it corrupted the state.

        Every checkpoint completed after the strike captured the
        corruption and is invalidated; the run rolls back to the newest
        surviving checkpoint (detection is severity-agnostic — any level
        can restore clean pre-strike state), or to scratch.
        """
        nonlocal recovering, pending_sev, rollback_ref, armed, silent_det
        silent_det += 1
        for k in range(num_used):
            if valid[k] >= 0 and valid_t[k] > strike_t:
                valid[k] = -1
        if not recovering:
            recovering = True
            pending_sev = 1
            rollback_ref = work
        pos = candidate(pending_sev) * tau0
        lost = rollback_ref - pos
        if lost > 0:
            if category == "compute":
                acct.rework_compute += lost
            elif category == "checkpoint":
                acct.rework_checkpoint += lost
            else:
                acct.rework_restart += lost
            rollback_ref = pos
        armed = False
        sstream.skip_past(detect_t)

    while True:
        if (
            work >= T_B - _EPS
            and not recovering
            and (not checkpoint_at_completion or next_m * tau0 > T_B + _EPS)
        ):
            completed = True
            break
        if t >= cap:
            break

        if recovering:
            pos_idx = candidate(pending_sev)
            if pos_idx > 0:
                # Restart from the newest sufficient checkpoint; recovery
                # level = cheapest used level >= pending severity holding it.
                k_lo = recover_idx[pending_sev - 1]
                k_use = next(
                    k for k in range(k_lo, num_used) if valid[k] == pos_idx
                )
                dur = rest_cost[k_use]
            else:
                k_lo = recover_idx[pending_sev - 1]
                dur = (
                    rest_cost[k_lo] if k_lo >= 0 else sev_rest_cost[pending_sev - 1]
                )
            fate = seg_fate(dur)
            if fate == 0:
                if events is not None:
                    events.append(
                        SimEvent(t, t + dur, "restart", level=levels[k_use] if pos_idx > 0 else (levels[k_lo] if k_lo >= 0 else pending_sev))
                    )
                t += dur
                acct.restart += dur
                rst_ok += 1
                if pos_idx == 0:
                    scratch += 1
                work = pos_idx * tau0
                next_m = pos_idx + 1
                recovering = False
                pending_sev = 0
            elif fate == 1:
                elapsed = fail_t - t
                if events is not None:
                    events.append(
                        SimEvent(t, fail_t, "failed_restart",
                                 level=levels[k_use] if pos_idx > 0 else (levels[k_lo] if k_lo >= 0 else pending_sev),
                                 severity=fail_s)
                    )
                acct.failed_restart += elapsed
                rst_fail += 1
                t = fail_t
                on_failure("restart")
            else:
                elapsed = detect_t - t
                if events is not None:
                    events.append(SimEvent(t, detect_t, "silent_detect"))
                acct.failed_restart += elapsed
                rst_fail += 1
                t = detect_t
                on_detection("restart")
            continue

        boundary = next_m * tau0
        if work < boundary - _EPS or boundary > T_B + _EPS:
            # Compute toward the next checkpoint position or completion.
            target = min(boundary, T_B)
            dur = target - work
            fate = seg_fate(dur)
            if fate == 0:
                if events is not None:
                    events.append(SimEvent(t, t + dur, "compute"))
                t += dur
                compute_time += dur
                work = target
            elif fate == 1:
                elapsed = fail_t - t
                if events is not None:
                    events.append(SimEvent(t, fail_t, "compute", severity=fail_s))
                compute_time += elapsed
                work += elapsed
                t = fail_t
                on_failure("compute")
            else:
                elapsed = detect_t - t
                if events is not None:
                    events.append(SimEvent(t, detect_t, "silent_detect"))
                compute_time += elapsed
                work += elapsed
                t = detect_t
                on_detection("compute")
            continue

        # At a checkpoint boundary (work == boundary <= T_B).
        k = pattern[(next_m - 1) % period]
        if next_m <= max_completed_m and recheckpoint != "paid":
            # Recomputing past a previously-completed position: the
            # models' world re-establishes it for free; "skip" leaves the
            # old recovery point as the only fallback.
            if recheckpoint == "free":
                for j in range(k + 1):
                    valid[j] = next_m
                    valid_t[j] = t
                restored += 1
            next_m += 1
            continue
        dur = ckpt_cost[k]
        fate = seg_fate(dur)
        if fate == 0:
            if events is not None:
                events.append(SimEvent(t, t + dur, "checkpoint", level=levels[k]))
            t += dur
            acct.checkpoint += dur
            ckpt_ok += 1
            for j in range(k + 1):  # hierarchical: validates all levels <= k
                valid[j] = next_m
                valid_t[j] = t
            if next_m > max_completed_m:
                max_completed_m = next_m
            next_m += 1
        elif fate == 1:
            elapsed = fail_t - t
            if events is not None:
                events.append(
                    SimEvent(t, fail_t, "failed_checkpoint", level=levels[k], severity=fail_s)
                )
            acct.failed_checkpoint += elapsed
            ckpt_fail += 1
            t = fail_t
            on_failure("checkpoint")
        else:
            elapsed = detect_t - t
            if events is not None:
                events.append(SimEvent(t, detect_t, "silent_detect"))
            acct.failed_checkpoint += elapsed
            ckpt_fail += 1
            t = detect_t
            on_detection("checkpoint")

    if completed and armed and strike_t <= t:
        # The application finished before the armed strike's detection
        # fired: possibly-corrupted results shipped (see repro.core.silent).
        silent_undet = 1
    if recovering:
        # Horizon cap fired mid-recovery: the rolled-back progress was
        # already attributed to a rework bucket, so only the recovery
        # position counts as retained work.
        work = rollback_ref
    acct.work = work
    # compute_time == work + rework: every minute of gross computation is
    # either retained at the end or was attributed to exactly one rework
    # bucket when a failure rolled it back.  Cheap guard here; the test
    # suite sweeps it property-style across seeds/systems/engines.
    rework = acct.rework_compute + acct.rework_checkpoint + acct.rework_restart
    if not math.isclose(compute_time, work + rework, rel_tol=1e-6, abs_tol=1e-6):
        raise RuntimeError(
            "engine invariant violated: compute_time != work + rework "
            f"({compute_time!r} != {work!r} + {rework!r}) for system "
            f"{system.name}, plan {plan.describe()}"
        )
    return TrialResult(
        total_time=t,
        work_done=work,
        completed=completed,
        times=acct,
        failures_by_severity=tuple(n_by_sev),
        checkpoints_completed=ckpt_ok,
        checkpoints_failed=ckpt_fail,
        checkpoints_restored=restored,
        restarts_completed=rst_ok,
        restarts_failed=rst_fail,
        scratch_restarts=scratch,
        silent_detections=silent_det,
        silent_undetected=silent_undet,
        events=events,
    )
