"""Failure-injecting checkpoint/restart simulator (the paper's Section IV-B).

* :func:`simulate_trial` — one execution, event by event.
* :func:`simulate_many` — repeated trials with aggregation (figure bars).
* :class:`TrialResult` / :class:`SimulationStats` /
  :class:`TimeBreakdown` — measurement records.
* :mod:`repro.simulator.reference` — an independent process-oriented
  implementation on the :mod:`repro.des` engine, used to cross-validate
  the fast engine trace for trace.
"""

from .accounting import SimulationStats, TimeBreakdown, TrialResult
from .adaptive import (
    AdaptiveComparison,
    AdaptiveSpec,
    compare_adaptive,
    simulate_adaptive_trial,
)
from .batch import BatchRequest, simulate_packed, simulate_trials_batch
from .engine import default_max_time, simulate_trial
from .run import (
    get_default_engine,
    set_default_engine,
    set_inline_mode,
    simulate_many,
    trial_seeds,
)
from .tracelog import SimEvent, render_timeline, validate_timeline

__all__ = [
    "AdaptiveComparison",
    "AdaptiveSpec",
    "BatchRequest",
    "SimEvent",
    "SimulationStats",
    "TimeBreakdown",
    "TrialResult",
    "compare_adaptive",
    "default_max_time",
    "get_default_engine",
    "render_timeline",
    "set_default_engine",
    "set_inline_mode",
    "simulate_adaptive_trial",
    "simulate_many",
    "simulate_packed",
    "simulate_trial",
    "simulate_trials_batch",
    "trial_seeds",
    "validate_timeline",
]
