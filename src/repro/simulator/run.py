"""Repeated-trial simulation, the measurement side of every figure.

``simulate_many`` runs independent trials with per-trial child seeds
(spawned from one :class:`numpy.random.SeedSequence`, so results are
reproducible regardless of worker count) and aggregates them into
:class:`~repro.simulator.accounting.SimulationStats` — the bar heights
and standard deviations of Figures 2, 4 and 5 and the stacked shares of
Figure 3.  Trials are embarrassingly parallel; ``workers > 1`` fans them
out over processes.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.plan import CheckpointPlan
from ..systems.spec import SystemSpec
from .accounting import SimulationStats, TrialResult
from .engine import simulate_trial

__all__ = ["simulate_many", "set_inline_mode", "trial_seeds"]

#: When True, ``simulate_many`` never spawns a process pool regardless of
#: ``workers`` — set by the scenario scheduler's worker initializer so a
#: scenario running inside a pool worker cannot nest a second pool (which
#: would oversubscribe the machine and, under some start methods,
#: deadlock).  See :mod:`repro.exec.scheduler`.
_INLINE_MODE = False

#: One-shot guard for the tiny-run worker warning (per process).
_WARNED_TINY_RUN = False


def set_inline_mode(enabled: bool) -> bool:
    """Force (or release) inline trial execution; returns the previous state."""
    global _INLINE_MODE
    previous = _INLINE_MODE
    _INLINE_MODE = bool(enabled)
    return previous


def trial_seeds(seed: int | None, trials: int) -> list[np.random.SeedSequence]:
    """Independent child seed sequences, stable across worker counts."""
    return np.random.SeedSequence(seed).spawn(trials)


def _run_chunk(args) -> list[TrialResult]:
    (system, plan, states, max_time, restart_semantics,
     checkpoint_at_completion, recheckpoint, source_factory) = args
    out = []
    for ss in states:
        rng = np.random.default_rng(ss)
        out.append(
            simulate_trial(
                system,
                plan,
                rng=rng,
                source=None if source_factory is None else source_factory(rng),
                max_time=max_time,
                restart_semantics=restart_semantics,
                checkpoint_at_completion=checkpoint_at_completion,
                recheckpoint=recheckpoint,
            )
        )
    return out


def simulate_many(
    system: SystemSpec,
    plan: CheckpointPlan,
    trials: int,
    seed: int | None = None,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
    workers: int = 1,
    return_trials: bool = False,
    source_factory=None,
) -> SimulationStats | tuple[SimulationStats, list[TrialResult]]:
    """Run ``trials`` independent executions and aggregate them.

    Parameters mirror :func:`~repro.simulator.engine.simulate_trial`;
    ``workers`` > 1 distributes trials over a process pool (each process
    receives a contiguous chunk of the spawned seed sequences, so the
    result set is identical to a serial run with the same ``seed``).
    ``workers`` is ignored — the run stays inline — when ``trials < 4``
    (pool startup would dominate such tiny runs; one stderr warning is
    emitted per process) or when :func:`set_inline_mode` is active
    because this call is already inside a scenario worker process (an
    intentional scheduler decision, not warned).
    ``source_factory``, when given, builds each trial's failure source
    from its per-trial generator (``source_factory(rng)``) — used by the
    Weibull study to swap the failure process while keeping per-trial
    seeding reproducible.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    seeds = trial_seeds(seed, trials)

    if workers > 1 and trials < 4 and not _INLINE_MODE:
        # Inline mode is an intentional scheduler decision; a tiny run
        # dropping an explicit workers request deserves one audible note.
        global _WARNED_TINY_RUN
        if not _WARNED_TINY_RUN:
            _WARNED_TINY_RUN = True
            print(
                f"warning: workers={workers} ignored for trials={trials} "
                "(< 4): pool startup would dominate, running inline",
                file=sys.stderr,
            )

    if workers <= 1 or trials < 4 or _INLINE_MODE:
        results = _run_chunk(
            (system, plan, seeds, max_time, restart_semantics,
             checkpoint_at_completion, recheckpoint, source_factory)
        )
    else:
        chunks = np.array_split(np.arange(trials), min(workers, trials))
        payloads = [
            (
                system,
                plan,
                [seeds[i] for i in chunk],
                max_time,
                restart_semantics,
                checkpoint_at_completion,
                recheckpoint,
                source_factory,
            )
            for chunk in chunks
            if len(chunk)
        ]
        results = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for part in pool.map(_run_chunk, payloads):
                results.extend(part)

    stats = SimulationStats.from_trials(results)
    if return_trials:
        return stats, results
    return stats
