"""Repeated-trial simulation, the measurement side of every figure.

``simulate_many`` runs independent trials with per-trial child seeds
(spawned from one :class:`numpy.random.SeedSequence`, so results are
reproducible regardless of worker count) and aggregates them into
:class:`~repro.simulator.accounting.SimulationStats` — the bar heights
and standard deviations of Figures 2, 4 and 5 and the stacked shares of
Figure 3.  Trials are embarrassingly parallel; ``workers > 1`` fans them
out over processes.

Two trial engines sit behind the call, selected by ``engine``:

* ``"batch"`` — the struct-of-arrays lockstep engine
  (:func:`repro.simulator.batch.simulate_trials_batch`), which advances
  all trials at once with masked NumPy operations and returns bitwise
  identical :class:`~repro.simulator.accounting.TrialResult` objects to
  the scalar loop for the same seeds;
* ``"scalar"`` — one :func:`~repro.simulator.engine.simulate_trial`
  Python loop per trial.  The batched engine covers the exponential,
  Weibull, and trace failure processes (any ``source_factory`` exposing
  a ``batch_stream`` descriptor, see :mod:`repro.failures.batching`)
  under both ``retry`` and ``escalate`` semantics, so the scalar loop is
  only *required* for opaque custom source factories and event-timeline
  recording;
* ``"auto"`` (the default) — the batched engine whenever the
  configuration supports it and the run is at least ``_AUTO_MIN_TRIALS``
  wide (narrower runs are faster scalar; override the threshold with the
  ``REPRO_AUTO_MIN_TRIALS`` environment variable, or measure your
  machine's crossover with ``python -m repro bench --crossover``), the
  scalar loop otherwise.  Because the two engines agree bit for bit,
  ``auto`` never changes results, only speed.

``engine=None`` defers to the process-wide default (``"auto"`` unless
:func:`set_default_engine` overrode it — the CLI's ``--engine`` flag and
the scenario scheduler's worker initializer both thread through it).
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.plan import CheckpointPlan
from ..core.silent import SilentErrorSpec
from ..systems.spec import SystemSpec
from .accounting import SimulationStats, TrialResult
from .batch import simulate_trials_batch
from .engine import simulate_trial

__all__ = [
    "simulate_many",
    "set_inline_mode",
    "set_default_engine",
    "get_default_engine",
    "set_auto_min_trials",
    "get_auto_min_trials",
    "trial_seeds",
]

#: Recognized values of the ``engine`` parameter.
ENGINES = ("auto", "scalar", "batch")

#: When True, ``simulate_many`` never spawns a process pool regardless of
#: ``workers`` — set by the scenario scheduler's worker initializer so a
#: scenario running inside a pool worker cannot nest a second pool (which
#: would oversubscribe the machine and, under some start methods,
#: deadlock).  See :mod:`repro.exec.scheduler`.
_INLINE_MODE = False

#: Process-wide default engine; ``simulate_many(engine=None)`` uses it.
_DEFAULT_ENGINE = "auto"

#: Minimum trial count at which ``engine="auto"`` picks the batched
#: engine.  Below this width the lockstep loop's fixed per-iteration
#: numpy dispatch cost outweighs the vectorization win (measured
#: crossover on the reference container: ~64 trials for mild systems,
#: ~96 for failure-heavy ones, per ``bench --crossover``), so tiny
#: runs — notably ``--quick``'s
#: 25 trials — stay on the scalar loop.  Results are identical either
#: way; explicit ``engine="batch"`` ignores the threshold.  Override
#: with ``REPRO_AUTO_MIN_TRIALS`` (``python -m repro bench --crossover``
#: measures the right value for the current machine).
def _auto_min_trials_default() -> int:
    raw = os.environ.get("REPRO_AUTO_MIN_TRIALS")
    if raw is None:
        return 96
    try:
        value = int(raw)
    except ValueError:
        print(
            f"warning: ignoring non-integer REPRO_AUTO_MIN_TRIALS={raw!r}",
            file=sys.stderr,
        )
        return 96
    return max(value, 1)


_AUTO_MIN_TRIALS = _auto_min_trials_default()


def set_auto_min_trials(threshold: int | None = None) -> int:
    """Set the process-wide auto-engine crossover threshold; returns the
    previous value.  ``None`` re-reads the environment default
    (``REPRO_AUTO_MIN_TRIALS``, falling back to the built-in 96).  The
    scenario scheduler mirrors this into its workers like the engine
    default, so one programmatic override governs a whole study run.
    """
    global _AUTO_MIN_TRIALS
    previous = _AUTO_MIN_TRIALS
    _AUTO_MIN_TRIALS = (
        _auto_min_trials_default() if threshold is None
        else max(int(threshold), 1)
    )
    return previous


def get_auto_min_trials() -> int:
    """The trial count at which ``engine="auto"`` switches to batch."""
    return _AUTO_MIN_TRIALS

#: One-shot guard for the tiny-run worker warning (per process).
_WARNED_TINY_RUN = False

#: One-shot guard for the auto→scalar wide-run fallback warning.
_WARNED_SCALAR_FALLBACK = False


def set_inline_mode(enabled: bool) -> bool:
    """Force (or release) inline trial execution; returns the previous state."""
    global _INLINE_MODE
    previous = _INLINE_MODE
    _INLINE_MODE = bool(enabled)
    return previous


def set_default_engine(engine: str) -> str:
    """Set the process-wide default trial engine; returns the previous one.

    The CLI's ``--engine`` flag calls this once at startup, and the
    scenario scheduler's worker initializer mirrors the parent's value
    into every worker process, so one flag governs the whole run.
    """
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


def get_default_engine() -> str:
    """The engine ``simulate_many`` uses when none is passed explicitly."""
    return _DEFAULT_ENGINE


def _reset_warnings() -> None:
    """Re-arm one-shot warnings (test hook; warnings are per-process)."""
    global _WARNED_TINY_RUN, _WARNED_SCALAR_FALLBACK
    _WARNED_TINY_RUN = False
    _WARNED_SCALAR_FALLBACK = False


def trial_seeds(seed: int | None, trials: int) -> list[np.random.SeedSequence]:
    """Independent child seed sequences, stable across worker counts."""
    return np.random.SeedSequence(seed).spawn(trials)


def _resolve_engine(
    engine: str | None, restart_semantics: str, source_factory, trials: int
) -> bool:
    """Whether this configuration runs on the batched engine.

    ``"batch"`` on an unsupported configuration is a loud error rather
    than a silent fallback; ``"auto"`` picks the batched engine exactly
    when it is guaranteed bitwise-equal to the scalar one *and* the run
    is wide enough to profit (``trials >= _AUTO_MIN_TRIALS``).
    """
    eng = _DEFAULT_ENGINE if engine is None else engine
    if eng not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    supported = (
        source_factory is None
        or getattr(source_factory, "batch_stream", None) is not None
    )
    if eng == "batch" and not supported:
        raise ValueError(
            "engine='batch' requires a batchable failure source (the "
            "built-in exponential default, or a source_factory exposing a "
            "batch_stream descriptor — see repro.failures.batching); use "
            "engine='auto' (which falls back to the scalar loop) or "
            "engine='scalar'"
        )
    if eng == "auto" and not supported and trials >= _AUTO_MIN_TRIALS:
        # A wide run silently losing the vectorized engine is a surprise
        # worth one stderr note per process (mirrors the tiny-run warning).
        global _WARNED_SCALAR_FALLBACK
        if not _WARNED_SCALAR_FALLBACK:
            _WARNED_SCALAR_FALLBACK = True
            print(
                f"warning: engine='auto' fell back to the scalar loop for "
                f"a {trials}-trial run: a custom failure source without a "
                "batch_stream descriptor is outside the batched engine's "
                "scope (results are identical, only slower)",
                file=sys.stderr,
            )
    return eng == "batch" or (
        eng == "auto" and supported and trials >= _AUTO_MIN_TRIALS
    )


#: Shared per-chunk context installed once per pool worker (see
#: ``_chunk_worker_init``): everything except the seed list, so chunk
#: payloads no longer re-pickle ``system``/``plan`` per chunk.
_CHUNK_CONTEXT = None


def _chunk_worker_init(context) -> None:
    global _CHUNK_CONTEXT
    _CHUNK_CONTEXT = context


def _run_chunk(context, states) -> list[TrialResult]:
    (system, plan, max_time, restart_semantics, checkpoint_at_completion,
     recheckpoint, source_factory, silent_errors, use_batch) = context
    if use_batch:
        return simulate_trials_batch(
            system,
            plan,
            states,
            max_time=max_time,
            restart_semantics=restart_semantics,
            checkpoint_at_completion=checkpoint_at_completion,
            recheckpoint=recheckpoint,
            silent_errors=silent_errors,
            stream=(
                None if source_factory is None else source_factory.batch_stream
            ),
        )
    out = []
    for ss in states:
        # The silent stream's child seed is spawned exactly once per
        # trial, matching the batched engine, so both engines see
        # identical strike times for the same seed sequence.
        srng = (
            np.random.default_rng(ss.spawn(1)[0])
            if silent_errors is not None
            else None
        )
        rng = np.random.default_rng(ss)
        out.append(
            simulate_trial(
                system,
                plan,
                rng=rng,
                source=None if source_factory is None else source_factory(rng),
                max_time=max_time,
                restart_semantics=restart_semantics,
                checkpoint_at_completion=checkpoint_at_completion,
                recheckpoint=recheckpoint,
                silent_errors=silent_errors,
                silent_rng=srng,
            )
        )
    return out


def _run_chunk_in_worker(states) -> list[TrialResult]:
    """Pool entry point: seed list in, shared context from the initializer."""
    return _run_chunk(_CHUNK_CONTEXT, states)


def simulate_many(
    system: SystemSpec,
    plan: CheckpointPlan,
    trials: int,
    seed: int | None = None,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
    workers: int = 1,
    return_trials: bool = False,
    source_factory=None,
    engine: str | None = None,
    silent_errors=None,
) -> SimulationStats | tuple[SimulationStats, list[TrialResult]]:
    """Run ``trials`` independent executions and aggregate them.

    Parameters mirror :func:`~repro.simulator.engine.simulate_trial`;
    ``workers`` > 1 distributes trials over a process pool (each process
    receives a contiguous chunk of the spawned seed sequences, so the
    result set is identical to a serial run with the same ``seed``; the
    shared ``system``/``plan``/options context ships once per worker via
    the pool initializer, only seed lists travel per chunk).
    ``workers`` is ignored — the run stays inline — when ``trials < 4``
    (pool startup would dominate such tiny runs; one stderr warning is
    emitted per process) or when :func:`set_inline_mode` is active
    because this call is already inside a scenario worker process (an
    intentional scheduler decision, not warned).
    ``source_factory``, when given, builds each trial's failure source
    from its per-trial generator (``source_factory(rng)``) — used by the
    Weibull study to swap the failure process while keeping per-trial
    seeding reproducible.
    ``engine`` selects the trial engine (``"auto"``/``"scalar"``/
    ``"batch"``; ``None`` = the process default) — see the module
    docstring.  Results are engine-independent bit for bit.
    ``silent_errors`` (a :class:`~repro.core.silent.SilentErrorSpec`,
    mapping, or ``None``) overlays a silent-error process on every trial:
    each trial draws its strike times from a dedicated child stream of
    its seed sequence, so fail-stop draws — and therefore every run with
    ``silent_errors=None`` — are byte-identical to before, and both
    engines agree bit for bit with the overlay on.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    use_batch = _resolve_engine(engine, restart_semantics, source_factory, trials)
    seeds = trial_seeds(seed, trials)

    if workers > 1 and trials < 4 and not _INLINE_MODE:
        # Inline mode is an intentional scheduler decision; a tiny run
        # dropping an explicit workers request deserves one audible note.
        global _WARNED_TINY_RUN
        if not _WARNED_TINY_RUN:
            _WARNED_TINY_RUN = True
            print(
                f"warning: workers={workers} ignored for trials={trials} "
                "(< 4): pool startup would dominate, running inline",
                file=sys.stderr,
            )

    context = (
        system, plan, max_time, restart_semantics, checkpoint_at_completion,
        recheckpoint, source_factory, SilentErrorSpec.resolve(silent_errors),
        use_batch,
    )
    if workers <= 1 or trials < 4 or _INLINE_MODE:
        results = _run_chunk(context, seeds)
    else:
        chunks = np.array_split(np.arange(trials), min(workers, trials))
        payloads = [[seeds[i] for i in chunk] for chunk in chunks if len(chunk)]
        results = []
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_chunk_worker_init,
            initargs=(context,),
        ) as pool:
            for part in pool.map(_run_chunk_in_worker, payloads):
                results.extend(part)

    stats = SimulationStats.from_trials(results)
    if return_trials:
        return stats, results
    return stats
