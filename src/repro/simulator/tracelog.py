"""Per-trial event timelines: what happened, when, at which level.

``simulate_trial(..., record_events=True)`` fills
``TrialResult.events`` with an ordered list of :class:`SimEvent` spans —
every compute segment, checkpoint write, restart attempt, and the
failures that interrupted them.  The timeline is the simulator's
explanation of itself: debugging aid, teaching output
(:func:`render_timeline`), and the substrate for the strictest invariant
test in the suite (the spans must tile the trial's wall-clock exactly and
their per-kind sums must equal the accounting buckets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["SimEvent", "render_timeline", "validate_timeline"]

#: Event kinds, matching the accounting taxonomy.
KINDS = (
    "compute",
    "checkpoint",
    "failed_checkpoint",
    "restart",
    "failed_restart",
)


@dataclass(frozen=True)
class SimEvent:
    """One span of simulated time.

    ``level`` is the checkpoint level for checkpoint/restart spans and 0
    for compute; ``severity`` is set (non-zero) on spans that ended in a
    failure, identifying the failure class that cut them short.
    """

    start: float
    end: float
    kind: str
    level: int = 0
    severity: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.end < self.start:
            raise ValueError(f"event ends ({self.end}) before it starts ({self.start})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        tag = f"L{self.level} " if self.level else ""
        sev = f" [failure sev {self.severity}]" if self.severity else ""
        return f"{self.start:10.3f} -> {self.end:10.3f}  {tag}{self.kind}{sev}"


def render_timeline(events: Sequence[SimEvent], limit: int | None = None) -> str:
    """Human-readable event log (first ``limit`` spans)."""
    shown = events if limit is None else events[:limit]
    lines = [ev.describe() for ev in shown]
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def validate_timeline(events: Iterable[SimEvent], total_time: float) -> None:
    """Assert the spans tile ``[0, total_time]`` with no gaps or overlaps.

    Raises ``ValueError`` on the first violation; used by tests and
    available to users instrumenting their own runs.
    """
    cursor = 0.0
    for i, ev in enumerate(events):
        if abs(ev.start - cursor) > 1e-9:
            raise ValueError(
                f"event {i} starts at {ev.start}, expected {cursor} "
                "(gap or overlap in the timeline)"
            )
        cursor = ev.end
    if abs(cursor - total_time) > 1e-9:
        raise ValueError(
            f"timeline ends at {cursor}, trial reports total_time={total_time}"
        )


def kind_totals(events: Iterable[SimEvent]) -> dict[str, float]:
    """Total duration per event kind (compare against TimeBreakdown)."""
    out = {kind: 0.0 for kind in KINDS}
    for ev in events:
        out[ev.kind] += ev.duration
    return out
