"""Energy accounting for checkpointed executions (extension, after [19]).

Test system B comes from Balaprakash et al. [19], which studies the
*energy*/run-time tradeoffs of multilevel checkpointing.  This module
adds that dimension on top of the package's time accounting: a
:class:`PowerProfile` maps each event category to a power draw, and both
measured (:func:`energy_breakdown`) and predicted
(:func:`predicted_energy`) time breakdowns convert to energy.

:func:`optimize_for_energy` re-runs the paper's bounded interval sweep
with expected *energy* as the objective.  Checkpoint and restart phases
are typically I/O-bound and draw less power than computation, so the
energy optimum tolerates slightly more checkpoint overhead than the time
optimum — the effect [19] quantifies.

Units: times are minutes (as everywhere in the package), powers are
watts, energies are reported in kilowatt-hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.dauwe import DauweModel
from ..core.interfaces import CheckpointModel
from ..core.optimizer import sweep_plans
from ..core.plan import CheckpointPlan
from .accounting import TimeBreakdown

__all__ = [
    "PowerProfile",
    "EnergyReport",
    "EnergyOptimizationResult",
    "energy_breakdown",
    "predicted_energy",
    "optimize_for_energy",
]

_KWH_PER_WATT_MINUTE = 1.0 / 60_000.0


@dataclass(frozen=True)
class PowerProfile:
    """System power draw (watts) per activity.

    ``compute_w`` applies to useful work *and* recomputation (the machine
    cannot tell them apart); ``checkpoint_w``/``restart_w`` cover both
    successful and failed attempts of their kind.  Defaults are shaped
    like [19]'s measurements: I/O phases draw noticeably less than
    computation.
    """

    compute_w: float = 100.0
    checkpoint_w: float = 70.0
    restart_w: float = 70.0

    def __post_init__(self) -> None:
        for field in ("compute_w", "checkpoint_w", "restart_w"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    def category_power(self, category: str) -> float:
        """Watts drawn during one accounting category."""
        if category in (
            "work",
            "rework_compute",
            "rework_checkpoint",
            "rework_restart",
            "unprotected",  # scratch-restart renewal time is mostly recompute
        ):
            return self.compute_w
        if category in ("checkpoint", "failed_checkpoint"):
            return self.checkpoint_w
        if category in ("restart", "failed_restart"):
            return self.restart_w
        raise KeyError(f"unknown accounting category {category!r}")


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals for one execution (all in kWh)."""

    total_kwh: float
    useful_kwh: float
    per_category_kwh: Mapping[str, float]

    @property
    def energy_efficiency(self) -> float:
        """Fraction of energy spent on retained useful work."""
        if self.total_kwh <= 0:
            return 0.0
        return self.useful_kwh / self.total_kwh

    def energy_delay_product(self, total_time_min: float) -> float:
        """kWh x hours — the EDP metric of energy/performance studies."""
        return self.total_kwh * (total_time_min / 60.0)


def energy_breakdown(times: TimeBreakdown, profile: PowerProfile) -> EnergyReport:
    """Convert a measured time breakdown into an energy report."""
    per_cat = {
        name: minutes * profile.category_power(name) * _KWH_PER_WATT_MINUTE
        for name, minutes in times.as_dict().items()
    }
    return EnergyReport(
        total_kwh=sum(per_cat.values()),
        useful_kwh=per_cat["work"],
        per_category_kwh=per_cat,
    )


def predicted_energy(
    model: DauweModel, plan: CheckpointPlan, profile: PowerProfile
) -> float:
    """Expected energy (kWh) of ``plan`` under ``model``'s time breakdown."""
    breakdown = model.predict_breakdown(plan)
    kwh = 0.0
    for name, minutes in breakdown.items():
        if name == "total":
            continue
        kwh += minutes * profile.category_power(name) * _KWH_PER_WATT_MINUTE
    return kwh


@dataclass(frozen=True)
class EnergyOptimizationResult:
    """Outcome of an energy-objective interval sweep."""

    plan: CheckpointPlan
    predicted_energy_kwh: float
    predicted_time: float
    predicted_efficiency: float


class _EnergyObjective(CheckpointModel):
    """Adapter: the shared sweep minimizes predicted energy instead of time.

    ``predict_time``/``predict_time_batch`` return kWh scaled into the
    sweep's "minutes" slot; only the ordering matters to the optimizer.
    """

    name = "energy-objective"

    def __init__(self, base: DauweModel, profile: PowerProfile):
        super().__init__(base.system)
        self.base = base
        self.profile = profile

    def candidate_level_subsets(self):
        return self.base.candidate_level_subsets()

    def predict_time(self, plan: CheckpointPlan) -> float:
        import numpy as np

        return float(self.predict_time_batch(plan.levels, plan.counts, np.array([plan.tau0]))[0])

    def predict_time_batch(self, levels, counts, tau0):
        import numpy as np

        _, parts = self.base._evaluate(
            levels, counts, np.asarray(tau0, dtype=float), want_parts=True
        )
        kwh = np.zeros_like(np.asarray(tau0, dtype=float))
        for name, minutes in parts.items():
            kwh = kwh + minutes * self.profile.category_power(name)
        return kwh * _KWH_PER_WATT_MINUTE


def optimize_for_energy(
    model: DauweModel, profile: PowerProfile, **sweep_options
) -> EnergyOptimizationResult:
    """Select the plan minimizing expected *energy* (extension after [19]).

    Runs the same Section III-C bounded sweep with the energy objective,
    then reports the chosen plan's time-side predictions from the
    underlying model for comparison against :meth:`DauweModel.optimize`.
    """
    adapter = _EnergyObjective(model, profile)
    res = sweep_plans(adapter, **sweep_options)
    time_pred = model.predict_time(res.plan)
    return EnergyOptimizationResult(
        plan=res.plan,
        predicted_energy_kwh=res.predicted_time,
        predicted_time=time_pred,
        predicted_efficiency=model.system.baseline_time / time_pred,
    )
