"""Process-oriented reference implementation of the checkpoint simulator.

This is a second, independently-written implementation of the execution
semantics of :mod:`repro.simulator.engine`, built as communicating
processes on the :mod:`repro.des` engine: an *application* process walks
compute segments, checkpoint writes and restarts, while a *failure*
process injects :class:`~repro.des.Interrupt` exceptions carrying the
failure severity.

Purpose: cross-validation.  Driven by the same failure trace, the fast
state-machine engine and this reference must produce identical timelines
and accounting (the test suite checks equality to 1e-9 on random traces).
A deliberate divergence exists only on exact ties — a failure landing at
the precise instant an operation completes — where event ordering decides
whether the operation counts as completed; continuous failure draws hit
ties with probability zero.

This module favours clarity over speed (it is ~10x slower than the fast
engine); use it for semantics questions and debugging, and the fast
engine for experiments.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.plan import CheckpointPlan
from ..des import Environment, Interrupt
from ..failures.sources import ExponentialFailureSource, FailureSource
from ..systems.spec import SystemSpec
from .accounting import TimeBreakdown, TrialResult
from .engine import default_max_time

__all__ = ["simulate_trial_reference"]

_EPS = 1e-9


class _State:
    """Mutable application state shared between generator stages."""

    __slots__ = (
        "work",
        "next_m",
        "valid",
        "pending_sev",
        "rollback_ref",
        "recovering",
        "acct",
        "n_by_sev",
        "ckpt_ok",
        "ckpt_fail",
        "rst_ok",
        "rst_fail",
        "scratch",
        "restored",
        "max_completed_m",
        "completed",
    )

    def __init__(self, num_used: int, num_sev: int):
        self.work = 0.0
        self.next_m = 1
        self.valid = [-1] * num_used
        self.pending_sev = 0
        self.rollback_ref = 0.0
        self.recovering = False
        self.acct = TimeBreakdown()
        self.n_by_sev = [0] * num_sev
        self.ckpt_ok = 0
        self.ckpt_fail = 0
        self.rst_ok = 0
        self.rst_fail = 0
        self.scratch = 0
        self.restored = 0
        self.max_completed_m = 0
        self.completed = False


def simulate_trial_reference(
    system: SystemSpec,
    plan: CheckpointPlan,
    rng: np.random.Generator | int | None = None,
    source: FailureSource | None = None,
    max_time: float | None = None,
    restart_semantics: str = "retry",
    checkpoint_at_completion: bool = False,
    recheckpoint: str = "free",
) -> TrialResult:
    """Reference twin of :func:`repro.simulator.engine.simulate_trial`."""
    if plan.top_level > system.num_levels:
        raise ValueError(
            f"plan uses level {plan.top_level} but {system.name} has "
            f"{system.num_levels} levels"
        )
    if restart_semantics not in ("retry", "escalate"):
        raise ValueError(f"unknown restart_semantics {restart_semantics!r}")
    if recheckpoint not in ("free", "paid", "skip"):
        raise ValueError(f"unknown recheckpoint policy {recheckpoint!r}")
    escalate = restart_semantics == "escalate"
    if source is None:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        source = ExponentialFailureSource.for_system(system, rng)
    cap = default_max_time(system) if max_time is None else float(max_time)

    T_B = system.baseline_time
    tau0 = plan.tau0
    levels = plan.levels
    num_used = len(levels)
    num_sev = system.num_levels
    ckpt_cost = [system.checkpoint_time(lv) for lv in levels]
    rest_cost = [system.restart_time(lv) for lv in levels]
    sev_rest_cost = [system.restart_time(s) for s in range(1, num_sev + 1)]
    period = math.prod(n + 1 for n in plan.counts) if plan.counts else 1
    level_index_of = {lv: k for k, lv in enumerate(levels)}
    pattern = [level_index_of[plan.level_at_position(m)] for m in range(1, period + 1)]
    recover_idx = [
        level_index_of[plan.recovery_level(s)]
        if plan.recovery_level(s) is not None
        else -1
        for s in range(1, num_sev + 1)
    ]

    env = Environment()
    st = _State(num_used, num_sev)

    def candidate(sev: int) -> int:
        lo = recover_idx[sev - 1]
        if lo < 0:
            return 0
        return max([st.valid[k] for k in range(lo, num_used)] + [0])

    def register_failure(sev: int, category: str) -> None:
        st.n_by_sev[sev - 1] += 1
        s = sev
        if st.recovering:
            if escalate and s == st.pending_sev and s < num_sev:
                s += 1
            st.pending_sev = max(st.pending_sev, s)
        else:
            st.recovering = True
            st.pending_sev = s
            st.rollback_ref = st.work
        for k in range(num_used):
            if levels[k] < s and st.valid[k] >= 0:
                st.valid[k] = -1
        pos = candidate(st.pending_sev) * tau0
        lost = st.rollback_ref - pos
        if lost > 0:
            setattr(
                st.acct,
                f"rework_{category}",
                getattr(st.acct, f"rework_{category}") + lost,
            )
            st.rollback_ref = pos

    def application(env: Environment):
        while True:
            if (
                st.work >= T_B - _EPS
                and not st.recovering
                and (not checkpoint_at_completion or st.next_m * tau0 > T_B + _EPS)
            ):
                st.completed = True
                return
            if env.now >= cap:
                return

            if st.recovering:
                pos_idx = candidate(st.pending_sev)
                k_lo = recover_idx[st.pending_sev - 1]
                if pos_idx > 0:
                    k_use = next(
                        k for k in range(k_lo, num_used) if st.valid[k] == pos_idx
                    )
                    dur = rest_cost[k_use]
                else:
                    dur = (
                        rest_cost[k_lo]
                        if k_lo >= 0
                        else sev_rest_cost[st.pending_sev - 1]
                    )
                start = env.now
                try:
                    yield env.timeout(dur)
                except Interrupt as intr:
                    st.acct.failed_restart += env.now - start
                    st.rst_fail += 1
                    register_failure(int(intr.cause), "restart")
                    continue
                st.acct.restart += dur
                st.rst_ok += 1
                if pos_idx == 0:
                    st.scratch += 1
                st.work = pos_idx * tau0
                st.next_m = pos_idx + 1
                st.recovering = False
                st.pending_sev = 0
                continue

            boundary = st.next_m * tau0
            if st.work < boundary - _EPS or boundary > T_B + _EPS:
                target = min(boundary, T_B)
                dur = target - st.work
                start = env.now
                try:
                    yield env.timeout(dur)
                except Interrupt as intr:
                    elapsed = env.now - start
                    st.work += elapsed
                    register_failure(int(intr.cause), "compute")
                    continue
                st.work = target
                continue

            k = pattern[(st.next_m - 1) % period]
            if st.next_m <= st.max_completed_m and recheckpoint != "paid":
                if recheckpoint == "free":
                    for j in range(k + 1):
                        st.valid[j] = st.next_m
                    st.restored += 1
                st.next_m += 1
                continue
            dur = ckpt_cost[k]
            start = env.now
            try:
                yield env.timeout(dur)
            except Interrupt as intr:
                st.acct.failed_checkpoint += env.now - start
                st.ckpt_fail += 1
                register_failure(int(intr.cause), "checkpoint")
                continue
            st.acct.checkpoint += dur
            st.ckpt_ok += 1
            for j in range(k + 1):
                st.valid[j] = st.next_m
            st.max_completed_m = max(st.max_completed_m, st.next_m)
            st.next_m += 1

    app = env.process(application(env))

    def failures(env: Environment):
        t = 0.0
        while app.is_alive:
            ft, sev = source.next_after(t)
            if math.isinf(ft):
                return
            if ft > env.now:
                yield env.timeout(ft - env.now)
            if app.is_alive:
                app.interrupt(sev)
            t = ft

    env.process(failures(env))
    env.run(until=app)

    if st.recovering:
        st.work = st.rollback_ref
    st.acct.work = st.work
    return TrialResult(
        total_time=env.now,
        work_done=st.work,
        completed=st.completed,
        times=st.acct,
        failures_by_severity=tuple(st.n_by_sev),
        checkpoints_completed=st.ckpt_ok,
        checkpoints_failed=st.ckpt_fail,
        checkpoints_restored=st.restored,
        restarts_completed=st.rst_ok,
        restarts_failed=st.rst_fail,
        scratch_restarts=st.scratch,
    )
