"""GF(2^8) arithmetic for Reed-Solomon erasure coding.

The FTI protocol's third checkpoint level stores Reed-Solomon encoded
checkpoint data across node groups (Section II-B.2); this module provides
the finite-field substrate: log/antilog tables over the AES polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), vectorized multiply over NumPy
byte arrays, and Gaussian elimination for matrix inversion.

All operations treat bytes as elements of GF(256); addition is XOR.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF_EXP",
    "GF_LOG",
    "gf_mul",
    "gf_mul_bytes",
    "gf_inv",
    "gf_matmul",
    "gf_matrix_invert",
    "cauchy_matrix",
    "vandermonde_matrix",
]

_PRIMITIVE_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[255:510] = exp[:255]  # doubled so index sums need no modulo
    return exp, log


#: Antilog table, doubled: ``GF_EXP[(GF_LOG[a] + GF_LOG[b])]`` multiplies.
GF_EXP, GF_LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements (scalars)."""
    if a == 0 or b == 0:
        return 0
    return int(GF_EXP[GF_LOG[a] + GF_LOG[b]])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(GF_EXP[255 - GF_LOG[a]])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorized)."""
    data = np.asarray(data, dtype=np.uint8)
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    logs = GF_LOG[data].astype(np.int32)
    out = GF_EXP[logs + GF_LOG[scalar]]
    out[data == 0] = 0
    return out


def gf_matmul(m: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Matrix-times-stack-of-rows product over GF(256).

    ``m`` is ``(r, k)`` of uint8; ``vectors`` is ``(k, n)`` — ``k`` shards
    of ``n`` bytes.  Returns ``(r, n)``.
    """
    m = np.asarray(m, dtype=np.uint8)
    vectors = np.asarray(vectors, dtype=np.uint8)
    if m.ndim != 2 or vectors.ndim != 2 or m.shape[1] != vectors.shape[0]:
        raise ValueError(f"shape mismatch: {m.shape} @ {vectors.shape}")
    out = np.zeros((m.shape[0], vectors.shape[1]), dtype=np.uint8)
    for i in range(m.shape[0]):
        acc = np.zeros(vectors.shape[1], dtype=np.uint8)
        for j in range(m.shape[1]):
            if m[i, j]:
                acc ^= gf_mul_bytes(int(m[i, j]), vectors[j])
        out[i] = acc
    return out


def gf_matrix_invert(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises ``np.linalg.LinAlgError`` when singular (an unrecoverable
    erasure pattern surfaces here).
    """
    m = np.asarray(m, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"need a square matrix, got {m.shape}")
    n = m.shape[0]
    a = m.astype(np.uint8).copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r, col]), None)
        if pivot is None:
            raise np.linalg.LinAlgError("matrix is singular over GF(256)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        scale = gf_inv(int(a[col, col]))
        a[col] = gf_mul_bytes(scale, a[col])
        inv[col] = gf_mul_bytes(scale, inv[col])
        for r in range(n):
            if r != col and a[r, col]:
                factor = int(a[r, col])
                a[r] ^= gf_mul_bytes(factor, a[col])
                inv[r] ^= gf_mul_bytes(factor, inv[col])
    return inv


def cauchy_matrix(rows: int, cols: int) -> np.ndarray:
    """A ``rows x cols`` Cauchy matrix: every square submatrix invertible.

    Entries ``1 / (x_i + y_j)`` with disjoint ``x`` and ``y`` sets — the
    standard generator for MDS erasure codes, guaranteeing recovery from
    any ``rows`` erasures.
    """
    if rows + cols > 256:
        raise ValueError(f"rows + cols must be <= 256, got {rows + cols}")
    xs = np.arange(rows, dtype=np.int32)
    ys = np.arange(rows, rows + cols, dtype=np.int32)
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = gf_inv(int(x) ^ int(y))
    return out


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """``rows x cols`` Vandermonde matrix ``a_i^j`` (reference/testing)."""
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        v = 1
        for j in range(cols):
            out[i, j] = v
            v = gf_mul(v, i + 1)
    return out
