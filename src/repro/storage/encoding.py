"""Checkpoint erasure encodings: XOR partner groups and Reed-Solomon.

These are the actual redundancy schemes behind the checkpoint levels the
paper's test systems assume (Section II-B): SCR's level-2 stores XOR
parity across partner nodes, FTI's level-3 stores Reed-Solomon encoded
blocks tolerating multiple simultaneous node losses, and the PFS level
needs no encoding.  The experiment pipeline itself only needs the *costs*
of these levels (Table I provides them), but the encoders are implemented
for real so the storage substrate can demonstrate and verify
recoverability — see ``examples/design_from_hardware.py``.

Both encoders operate on equal-length byte shards (one per node).
"""

from __future__ import annotations

import numpy as np

from .gf256 import cauchy_matrix, gf_matmul, gf_matrix_invert

__all__ = ["XorPartnerCode", "ReedSolomonCode"]


def _as_shards(shards) -> np.ndarray:
    arr = np.asarray(shards, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"shards must be a 2-D byte array, got shape {arr.shape}")
    return arr


class XorPartnerCode:
    """Single-erasure XOR parity across a partner group (SCR level 2).

    ``encode`` produces one parity shard per group of ``group_size`` data
    shards; ``recover`` rebuilds any one missing shard of a group from the
    survivors plus parity.
    """

    def __init__(self, group_size: int):
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = int(group_size)

    @property
    def storage_overhead(self) -> float:
        """Extra bytes stored per data byte (1 parity per group)."""
        return 1.0 / self.group_size

    def encode(self, shards) -> np.ndarray:
        """Parity shards, one per complete group (shape ``(g, n)``)."""
        data = _as_shards(shards)
        if data.shape[0] % self.group_size:
            raise ValueError(
                f"{data.shape[0]} shards do not form complete groups of "
                f"{self.group_size}"
            )
        groups = data.reshape(-1, self.group_size, data.shape[1])
        return np.bitwise_xor.reduce(groups, axis=1)

    def recover(self, survivors, parity: np.ndarray) -> np.ndarray:
        """Rebuild the single missing shard of one group.

        ``survivors`` are the group's remaining ``group_size - 1`` shards;
        ``parity`` is the group's parity shard.
        """
        data = _as_shards(survivors)
        if data.shape[0] != self.group_size - 1:
            raise ValueError(
                f"need exactly {self.group_size - 1} survivors, got {data.shape[0]}"
            )
        parity = np.asarray(parity, dtype=np.uint8)
        if parity.shape != (data.shape[1],):
            raise ValueError("parity length does not match shard length")
        return np.bitwise_xor.reduce(np.vstack([data, parity[None, :]]), axis=0)


class ReedSolomonCode:
    """Systematic MDS erasure code over GF(256) (FTI level 3).

    ``k`` data shards are complemented with ``m`` Cauchy-generated parity
    shards; *any* ``k`` of the ``k + m`` total shards reconstruct the
    originals, i.e. the group tolerates up to ``m`` simultaneous node
    losses.
    """

    def __init__(self, data_shards: int, parity_shards: int):
        if data_shards < 1 or parity_shards < 1:
            raise ValueError("data_shards and parity_shards must be >= 1")
        if data_shards + parity_shards > 255:
            raise ValueError("data_shards + parity_shards must be <= 255")
        self.k = int(data_shards)
        self.m = int(parity_shards)
        self._parity_matrix = cauchy_matrix(self.m, self.k)
        # Full generator: identity on top (systematic), Cauchy below.
        self._generator = np.vstack(
            [np.eye(self.k, dtype=np.uint8), self._parity_matrix]
        )

    @property
    def storage_overhead(self) -> float:
        return self.m / self.k

    def encode(self, shards) -> np.ndarray:
        """Parity shards (shape ``(m, n)``) for ``k`` data shards."""
        data = _as_shards(shards)
        if data.shape[0] != self.k:
            raise ValueError(f"need exactly {self.k} data shards, got {data.shape[0]}")
        return gf_matmul(self._parity_matrix, data)

    def recover(self, available: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct all ``k`` data shards from any ``k`` survivors.

        ``available`` maps shard index -> shard bytes, where indices
        ``0..k-1`` are data shards and ``k..k+m-1`` parity shards.  At
        least ``k`` entries are required.
        """
        if len(available) < self.k:
            raise ValueError(
                f"unrecoverable: {len(available)} shards available, need {self.k}"
            )
        idxs = sorted(available)[: self.k]
        if any(i < 0 or i >= self.k + self.m for i in idxs):
            raise ValueError(f"shard index out of range in {idxs}")
        sub = self._generator[idxs]
        stack = _as_shards([available[i] for i in idxs])
        inv = gf_matrix_invert(sub)
        return gf_matmul(inv, stack)

    def verify(self, data_shards, parity_shards) -> bool:
        """True when ``parity_shards`` match ``data_shards``."""
        expected = self.encode(data_shards)
        return bool(np.array_equal(expected, _as_shards(parity_shards)))
