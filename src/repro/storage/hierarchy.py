"""Checkpoint storage hierarchy: from hardware description to Table-I rows.

The paper's Table I takes per-level checkpoint/restart costs as given.
This module derives such costs from first principles, so a user can model
*their* machine and feed the result straight into the models and the
simulator: describe the machine (:class:`MachineSpec`), stack storage
levels (:class:`StorageLevel` of the four kinds the SCR/FTI literature
uses), and :func:`build_system_spec` produces a
:class:`~repro.systems.spec.SystemSpec`.

Cost model (minutes; bandwidths in GB/s):

* ``LOCAL``    — every node writes its image to node-local storage in
  parallel: ``size / local_bw``.
* ``PARTNER``  — local write, plus a copy streamed to the partner node,
  plus the XOR parity share (1/group of the image) written locally.
* ``RS``       — local write, plus Reed-Solomon encoding of the group's
  parity (``m/k`` of the image at the encode rate), plus the group
  exchange over the network.
* ``PFS``      — all nodes share the file system's aggregate bandwidth:
  ``nodes * size / pfs_bw`` plus a constant mount/metadata latency.

The model intentionally mirrors the scaling argument of Section IV-E:
only the PFS level's cost grows with application size; the others use
per-node resources and stay flat.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from ..systems.spec import SystemSpec
from .encoding import ReedSolomonCode, XorPartnerCode

__all__ = ["LevelKind", "MachineSpec", "StorageLevel", "build_system_spec"]


class LevelKind(enum.Enum):
    """The four storage-level archetypes of the multilevel literature."""

    LOCAL = "local"
    PARTNER = "partner-xor"
    RS = "reed-solomon"
    PFS = "pfs"


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description sufficient to price every level kind.

    Attributes
    ----------
    nodes:
        Node count of the application's allocation.
    checkpoint_gb_per_node:
        Size of one node's checkpoint image, GB.
    local_write_gb_s:
        Per-node bandwidth to node-local storage (DRAM/NVM), GB/s.
    network_gb_s:
        Per-node injection bandwidth for partner/group exchange, GB/s.
    encode_gb_s:
        Per-node Reed-Solomon encoding throughput, GB/s.
    pfs_aggregate_gb_s:
        Aggregate parallel-file-system bandwidth shared by all nodes.
    pfs_latency_s:
        Fixed PFS metadata/mount latency per checkpoint, seconds.
    """

    nodes: int
    checkpoint_gb_per_node: float
    local_write_gb_s: float = 2.0
    network_gb_s: float = 1.0
    encode_gb_s: float = 0.5
    pfs_aggregate_gb_s: float = 100.0
    pfs_latency_s: float = 10.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        for field in (
            "checkpoint_gb_per_node",
            "local_write_gb_s",
            "network_gb_s",
            "encode_gb_s",
            "pfs_aggregate_gb_s",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.pfs_latency_s < 0:
            raise ValueError("pfs_latency_s must be non-negative")


@dataclass(frozen=True)
class StorageLevel:
    """One level of the hierarchy plus its failure class.

    ``failure_rate`` is the rate (per minute) of failures whose recovery
    requires *this* level — e.g. the PARTNER level's rate is the rate of
    whole-node losses.  ``group_size``/``parity_shards`` parameterize the
    encoded kinds and must satisfy the codes' own constraints (they are
    validated by constructing the actual encoder).
    """

    kind: LevelKind
    failure_rate: float
    group_size: int = 8
    parity_shards: int = 2

    def __post_init__(self) -> None:
        if self.failure_rate <= 0:
            raise ValueError("each level needs a positive failure rate")
        # Validate code parameters by instantiating the real encoders.
        if self.kind is LevelKind.PARTNER:
            XorPartnerCode(self.group_size)
        elif self.kind is LevelKind.RS:
            ReedSolomonCode(self.group_size, self.parity_shards)

    def checkpoint_minutes(self, machine: MachineSpec) -> float:
        """Expected duration of one checkpoint at this level (minutes)."""
        size = machine.checkpoint_gb_per_node
        if self.kind is LevelKind.LOCAL:
            seconds = size / machine.local_write_gb_s
        elif self.kind is LevelKind.PARTNER:
            parity = size / self.group_size
            seconds = (
                size / machine.local_write_gb_s
                + size / machine.network_gb_s
                + parity / machine.local_write_gb_s
            )
        elif self.kind is LevelKind.RS:
            ratio = self.parity_shards / self.group_size
            seconds = (
                size / machine.local_write_gb_s
                + size / machine.network_gb_s
                + ratio * size / machine.encode_gb_s
            )
        elif self.kind is LevelKind.PFS:
            total = machine.nodes * size
            seconds = total / machine.pfs_aggregate_gb_s + machine.pfs_latency_s
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(self.kind)
        return seconds / 60.0

    def storage_overhead(self) -> float:
        """Redundant bytes stored per checkpoint byte at this level."""
        if self.kind is LevelKind.PARTNER:
            # full partner copy + XOR parity share
            return 1.0 + XorPartnerCode(self.group_size).storage_overhead
        if self.kind is LevelKind.RS:
            return ReedSolomonCode(self.group_size, self.parity_shards).storage_overhead
        return 0.0


def build_system_spec(
    name: str,
    machine: MachineSpec,
    levels: Sequence[StorageLevel],
    baseline_time: float,
    description: str = "",
) -> SystemSpec:
    """Assemble a Table-I-style :class:`SystemSpec` from hardware terms.

    Levels must be ordered by increasing severity (LOCAL .. PFS); their
    checkpoint costs must come out non-decreasing, otherwise the hierarchy
    is mis-specified (a higher level that is cheaper than a lower one
    should simply replace it) and a ``ValueError`` explains which pair.
    """
    if not levels:
        raise ValueError("at least one storage level is required")
    costs = [lv.checkpoint_minutes(machine) for lv in levels]
    for i, (a, b) in enumerate(zip(costs, costs[1:])):
        if b < a:
            raise ValueError(
                f"level {i + 2} ({levels[i + 1].kind.value}) costs "
                f"{b:.3f}min, cheaper than level {i + 1} "
                f"({levels[i].kind.value}, {a:.3f}min); drop the slower level"
            )
    rates = [lv.failure_rate for lv in levels]
    total = sum(rates)
    return SystemSpec(
        name=name,
        mtbf=1.0 / total,
        level_probabilities=tuple(r / total for r in rates),
        checkpoint_times=tuple(costs),
        baseline_time=baseline_time,
        description=description
        or f"derived from {machine.nodes}-node machine spec",
    )
