"""Checkpoint storage substrate: erasure codes + hierarchy cost model.

* :mod:`repro.storage.gf256` — GF(2^8) arithmetic.
* :class:`XorPartnerCode` / :class:`ReedSolomonCode` — the redundancy
  schemes behind SCR level 2 and FTI level 3, implemented for real.
* :class:`MachineSpec` / :class:`StorageLevel` /
  :func:`build_system_spec` — derive Table-I-style systems from hardware
  descriptions.
"""

from .encoding import ReedSolomonCode, XorPartnerCode
from .gf256 import (
    cauchy_matrix,
    gf_inv,
    gf_matmul,
    gf_matrix_invert,
    gf_mul,
    gf_mul_bytes,
    vandermonde_matrix,
)
from .hierarchy import LevelKind, MachineSpec, StorageLevel, build_system_spec

__all__ = [
    "LevelKind",
    "MachineSpec",
    "ReedSolomonCode",
    "StorageLevel",
    "XorPartnerCode",
    "build_system_spec",
    "cauchy_matrix",
    "gf_inv",
    "gf_matmul",
    "gf_matrix_invert",
    "gf_mul",
    "gf_mul_bytes",
    "vandermonde_matrix",
]
