"""Di et al.'s two-level checkpoint model [17], as characterized by the paper.

The paper isolates three defining properties of this technique
(Sections II-C, IV-C, IV-G):

1. **Two levels only** — on systems offering more, it uses the *highest
   two* (levels ``L-1`` and ``L``); its weaker Figure 4 performance on the
   four-level system B is attributed purely to this restriction.
2. **Considers application execution time** — like the paper's own model
   it can decide that a short application should skip level-``L``
   checkpoints entirely and risk a full restart (Section IV-F).
3. **Neglects failures during restarts entirely** — restarts always
   succeed and take exactly ``R_i``; this is why its predictions
   *overestimate* efficiency by up to ~14% on the hardest scenarios
   (Section IV-G; Di et al. acknowledge the limitation in [17]).

We therefore implement it as the hierarchical expected-time recursion with
the restart-failure terms (Eqns. 12 and 14) switched off and the plan
space restricted to the top-two-levels subsets.  Failures during
*checkpoints* remain modeled, matching the paper's attribution of Di's
error solely to restart-failure neglect.

The numerics guard (see :mod:`repro.core.numerics`) is inherited from the
base recursion: ``predict_time(..., diagnostics=)`` records clamp and
overflow events under ``"di.*"`` sites (the ``name`` attribute prefixes
every site), and the restart-failure (``zeta``) site never fires because
the term is disabled.
"""

from __future__ import annotations

from ..core.dauwe import DauweModel
from ..systems.spec import SystemSpec

__all__ = ["DiModel"]


class DiModel(DauweModel):
    """Two-level pattern-based optimization per Di et al. [17]."""

    name = "di"

    def __init__(
        self,
        system: SystemSpec,
        allow_level_skipping: bool = True,
        silent_errors=None,
    ):
        super().__init__(
            system,
            include_checkpoint_failures=True,
            include_restart_failures=False,
            allow_level_skipping=allow_level_skipping,
            silent_errors=silent_errors,
        )

    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """``(L-1, L)`` plus — when execution time warrants — ``(L-1,)``.

        A one-level system degenerates to ``[(1,)]``.  The skip-top subset
        realizes the Section IV-F behaviour: level-``L-1`` checkpoints
        only, with level-``L`` severities restarting the application.
        """
        L = self.system.num_levels
        if L == 1:
            return [(1,)]
        subsets: list[tuple[int, ...]] = [(L - 1, L)]
        if self.allow_level_skipping:
            subsets.append((L - 1,))
        return subsets
