"""Moody et al.'s SCR Markov model [5], as characterized by the paper.

The SCR model is the reference multilevel technique: a pattern-based
Markov model for an arbitrary number of levels that *does* account for
failures during checkpoints and restarts.  The paper exploits two of its
defining assumptions (Sections II-C, IV-F, IV-G):

1. **Steady state** — it optimizes the expected time of one checkpoint
   *pattern* and ignores the application's total execution time, so it
   always includes level-``L`` checkpoints even for applications shorter
   than the level-``L`` failure horizon (the Figure 5 comparison).
2. **Escalating restarts** — if a second failure of severity ``i`` strikes
   while recovering from a severity-``i`` failure, the model assumes the
   system must fall back to a level-``i+1`` checkpoint.  The paper argues
   this is unrealistically pessimistic at extreme scale and shows it makes
   the model *underestimate* efficiency by up to ~7% (Section IV-G).

Implementation: the same hierarchical stage recursion as the paper's
model, evaluated over a single pattern, with restart failures resolved by
a three-outcome Markov absorption per attempt — success, retry (a lower
severity interrupted the restart), or escalate (the same severity struck
again).  Escalated recoveries are carried up one stage, where they pay the
higher restart cost plus, on average, half of that stage's span in lost
progress.  Predicted application time is ``T_B / pattern_efficiency``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.interfaces import CheckpointModel, OptimizationResult, split_grid_counts
from ..core.numerics import ModelDiagnostics, flag, safe_expm1
from ..core.plan import CheckpointPlan
from ..core.severity import LevelMapping
from ..core.silent import SilentErrorSpec
from ..core.truncated import truncated_mean
from ..systems.spec import SystemSpec

__all__ = ["MoodyModel"]

_MAX_RATE_TIME = 500.0


class MoodyModel(CheckpointModel):
    """SCR's pattern-steady-state Markov model with escalating restarts."""

    name = "moody"
    takes_scheduled_end_checkpoint = True
    supports_grid_eval = True
    supports_diagnostics = True
    #: Cost-only silent-error degradation: ``V`` joins every checkpoint
    #: write, but the Markov chain has no detection-latency state.
    silent_error_fidelity = "cost-only"

    def __init__(
        self,
        system: SystemSpec,
        escalating_restarts: bool = True,
        silent_errors=None,
    ):
        super().__init__(system)
        #: Escalation is SCR's documented assumption; turning it off is the
        #: ablation the paper implicitly performs when explaining Figure 6.
        self.escalating_restarts = escalating_restarts
        self.silent_errors = SilentErrorSpec.resolve(silent_errors)
        self._mapping = LevelMapping.build(
            system, tuple(range(1, system.num_levels + 1))
        )

    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """Always the full protocol — SCR deploys every available level."""
        return [tuple(range(1, self.system.num_levels + 1))]

    # ------------------------------------------------------------------
    def predict_time(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        out = self.predict_time_batch(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float),
            diagnostics=diagnostics,
        )
        return float(out[0])

    def predict_time_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        """``T_B / pattern_efficiency`` over an array of ``tau0`` values.

        ``counts`` may be a 2-D ``(V, C)`` matrix of count vectors (the
        optimizer's batched-sweep contract); the result is then ``(V, T)``.
        A zero steady-state efficiency means the pattern never makes
        progress; the predicted time is ``+inf`` and — unlike the bare
        division that would silently produce it — the collapse is recorded
        as a ``moody.efficiency`` divergence event.
        """
        eff = self.pattern_efficiency_batch(levels, counts, tau0, diagnostics=diagnostics)
        T_B = self.system.baseline_time
        flag(diagnostics, f"{self.name}.efficiency", "divergence", eff <= 0)
        with np.errstate(divide="ignore", over="ignore"):
            times = np.where(eff > 0, T_B / eff, math.inf)
        # An efficiency that is positive but subnormal-tiny overflows
        # T_B / eff to +inf on its own; that escape hatch must be as loud
        # as the eff <= 0 one (the silent-inf path the stress validator
        # originally caught).
        flag(
            diagnostics, f"{self.name}.efficiency", "overflow",
            np.isinf(times) & (eff > 0), values=eff, label="efficiency",
        )
        return times

    def pattern_efficiency(self, plan: CheckpointPlan) -> float:
        """Steady-state efficiency of one pattern (SCR's own metric)."""
        out = self.pattern_efficiency_batch(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float)
        )
        return float(out[0])

    # ------------------------------------------------------------------
    # SCR's pattern efficiency *is* the steady-state useful-work fraction,
    # so the availability objective's native hooks are aliases — and since
    # predict_time is exactly T_B / efficiency, the time and availability
    # optima coincide for this model (a property the objective tests pin).
    def predict_availability(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        out = self.pattern_efficiency_batch(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float),
            diagnostics=diagnostics,
        )
        return float(out[0])

    def predict_availability_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        return self.pattern_efficiency_batch(
            levels, counts, tau0, diagnostics=diagnostics
        )

    # ------------------------------------------------------------------
    def pattern_efficiency_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        L = self.system.num_levels
        if tuple(levels) != tuple(range(1, L + 1)):
            raise ValueError(
                f"the Moody model prices the full {L}-level protocol only, "
                f"got levels={levels}"
            )
        counts, tau0 = split_grid_counts(counts, np.asarray(tau0, dtype=float))
        if len(counts) != L - 1:
            raise ValueError(f"expected {L - 1} counts, got {len(counts)}")
        counts = tuple(np.asarray(n, dtype=float) for n in counts)
        mp = self._mapping
        shape = np.broadcast_shapes(tau0.shape, *(n.shape for n in counts))

        stride = np.asarray(1.0)
        for n in counts:
            stride = stride * (n + 1.0)
        pattern_work = tau0 * stride
        tau_k = np.broadcast_to(tau0.astype(float), shape).copy()
        esc_in = np.zeros(shape)
        bad = np.zeros(shape, dtype=bool)
        hist_tau: list[np.ndarray] = []
        hist_rework: list[np.ndarray] = []

        for k in range(L):
            lam_k = mp.rates[k]
            lam_c = mp.cumulative_rates[k]
            delta = mp.checkpoint_times[k]
            if self.silent_errors is not None:
                delta = delta + self.silent_errors.verify_cost
            R = mp.restart_times[k]
            top = k == L - 1
            if top:
                m_intervals = 1.0
                n_ckpt = 1.0
            else:
                m_intervals = counts[k] + 1.0
                n_ckpt = counts[k]

            with np.errstate(over="ignore", invalid="ignore"):
                rate_time = lam_k * tau_k
                bad |= flag(
                    diagnostics, f"{self.name}.gamma", "clamp",
                    rate_time > _MAX_RATE_TIME, values=rate_time, label="rate_time",
                )
                gamma = safe_expm1(rate_time, diagnostics, f"{self.name}.gamma")
                E_tau = np.asarray(truncated_mean(tau_k, lam_k))
                T_Wtau = gamma * E_tau * m_intervals
                T_d = n_ckpt * delta
                hist_tau.append(tau_k)
                hist_rework.append(gamma * E_tau)

                if delta > 0:
                    bad |= flag(
                        diagnostics, f"{self.name}.alpha", "clamp",
                        lam_c * delta > _MAX_RATE_TIME,
                        values=lam_c * delta, label="rate_time",
                    )
                    alpha = n_ckpt * safe_expm1(
                        lam_c * delta, diagnostics, f"{self.name}.alpha"
                    )
                    T_df = alpha * truncated_mean(delta, lam_c)
                    lost = np.zeros(shape)
                    for j in range(k + 1):
                        lost += (hist_tau[j] + hist_rework[j]) * mp.shares[j]
                    T_Wd = alpha * lost
                else:
                    alpha = np.zeros(shape)
                    T_df = np.zeros(shape)
                    T_Wd = np.zeros(shape)

                # Recovery demand: Eqn.-11 analogue plus escalations from below.
                demand = (
                    mp.shares[k] * alpha
                    + gamma * (mp.shares[k] * alpha + m_intervals)
                    + esc_in
                )

                if R > 0:
                    bad |= flag(
                        diagnostics, f"{self.name}.restart", "clamp",
                        lam_c * R > _MAX_RATE_TIME,
                        values=lam_c * R, label="rate_time",
                    )
                    p_fail = -np.expm1(-lam_c * R)
                else:
                    p_fail = np.zeros(shape)
                p_same = p_fail * (lam_k / lam_c if lam_c > 0 else 0.0)
                p_retry = p_fail - p_same

                if self.escalating_restarts and not top:
                    # Absorbing Markov chain per recovery: success,
                    # retry (lower severity), or escalate (same severity).
                    attempts = demand / (1.0 - p_retry)
                    esc_out = attempts * p_same
                    successes = attempts * (1.0 - p_fail)
                    failed = attempts * p_fail
                else:
                    # Retry-only: plain negative binomial (Eqn. 12 form).
                    successes = demand
                    failed = demand * p_fail / (1.0 - p_fail)
                    esc_out = np.zeros(shape)
                    bad |= flag(
                        diagnostics, f"{self.name}.retry", "divergence",
                        ~np.isfinite(failed), values=p_fail, label="p_fail",
                    )

                T_r = successes * R
                T_rf = failed * (truncated_mean(R, lam_c) if R > 0 else 0.0)

                # Escalated recoveries arriving at this stage lost, on
                # average, half this stage's deterministic span on top of
                # what lower stages already charged.
                esc_rework = esc_in * 0.5 * (tau_k * m_intervals + T_d)

                tau_k = (
                    tau_k * m_intervals
                    + T_d + T_df + T_r + T_rf + T_Wtau + T_Wd + esc_rework
                )
                esc_in = esc_out

        # Guard invariant: NaN never escapes, and every diverged pattern
        # span not already claimed by a clamp is recorded as it is zeroed.
        bad |= flag(diagnostics, f"{self.name}.pattern", "nan", np.isnan(tau_k))
        bad |= flag(
            diagnostics, f"{self.name}.pattern", "divergence", np.isinf(tau_k) & ~bad
        )
        bad |= ~np.isfinite(tau_k)
        with np.errstate(invalid="ignore", divide="ignore"):
            eff = np.where(bad | (tau_k <= 0), 0.0, pattern_work / tau_k)
        return np.clip(eff, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Optimization note: SCR's brute-force search in [5] enumerates the
    # checkpoint counts of the pattern deployed for a given run, so the
    # pattern always fits within the application (>= one level-L
    # checkpoint per run) even though the *objective* is length-blind
    # steady-state efficiency.  This is exactly what Figure 5 exploits:
    # for a 30-minute application the model "still performs a level-L
    # checkpoint", with interval values "appropriate only for longer
    # running applications".  The inherited optimize() already bounds the
    # pattern by T_B, so no override is needed.
