"""Benoit et al.'s first-order multilevel pattern model [18].

The paper uses this technique as the cautionary baseline: its equations
"do not consider the effect of failures during checkpoints or restarts and
only consider failures during computation", making its efficiency
predictions optimistic and its chosen computation intervals "at least
2.5x greater than that of the other multilevel checkpointing techniques"
(Section IV-C).  Its accuracy also degrades as the number of checkpoint
levels grows — the sharp drop from system M (3 levels) to system B (4
levels) in Figure 2.

Faithful to that characterization, the model here is the classical
first-order waste decomposition for a nested pattern.  With ``W_k`` the
work between level-``k`` checkpoints (``W_k = tau0 * prod_{j<k}(N_j+1)``)
the per-unit-work overhead is

    H = sum_k delta_k (1/W_k - 1/W_{k+1})                  (checkpointing)
      + sum_k lambda_k (R_k + span_k / 2)                  (failure waste)

where ``1/W_{L+1} = 0``, ``span_k`` is the wall-clock length of a
level-``k`` interval including its nested checkpoint overhead, and each
severity-``k`` failure is assumed to strike on average halfway through its
protecting interval and to never hit a checkpoint or restart.  The
predicted execution time is ``T_B * (1 + H)``: a steady-state rate model
that — like [18] and unlike the paper's model — is independent of the
application's length and therefore always takes level-``L`` checkpoints.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.interfaces import CheckpointModel, split_grid_counts
from ..core.numerics import ModelDiagnostics, flag, safe_div
from ..core.plan import CheckpointPlan
from ..core.severity import LevelMapping
from ..core.silent import SilentErrorSpec
from ..systems.spec import SystemSpec

__all__ = ["BenoitModel"]


class BenoitModel(CheckpointModel):
    """First-order multilevel waste model per Benoit et al. [18]."""

    name = "benoit"
    takes_scheduled_end_checkpoint = True
    supports_grid_eval = True
    supports_diagnostics = True
    #: Cost-only silent-error degradation: ``V`` inflates the checkpoint
    #: densities, nothing else — first-order waste has no latency notion.
    silent_error_fidelity = "cost-only"

    def __init__(self, system: SystemSpec, silent_errors=None):
        super().__init__(system)
        self.silent_errors = SilentErrorSpec.resolve(silent_errors)
        self._mapping = LevelMapping.build(
            system, tuple(range(1, system.num_levels + 1))
        )

    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        """The full protocol only: the model has no notion of skipping."""
        return [tuple(range(1, self.system.num_levels + 1))]

    # ------------------------------------------------------------------
    def predict_time(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        out = self.predict_time_batch(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float),
            diagnostics=diagnostics,
        )
        return float(out[0])

    def predict_time_batch(
        self,
        levels: tuple[int, ...],
        counts,
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        L = self.system.num_levels
        if tuple(levels) != tuple(range(1, L + 1)):
            raise ValueError(
                f"the Benoit model prices the full {L}-level protocol only, "
                f"got levels={levels}"
            )
        counts, tau0 = split_grid_counts(counts, np.asarray(tau0, dtype=float))
        if len(counts) != L - 1:
            raise ValueError(f"expected {L - 1} counts, got {len(counts)}")
        counts = tuple(np.asarray(n, dtype=float) for n in counts)
        mp = self._mapping
        shape = np.broadcast_shapes(tau0.shape, *(n.shape for n in counts))

        # Work between level-k checkpoints, W_k = tau0 * prod_{j<k}(N_j+1).
        strides = [np.asarray(1.0)]
        for n in counts:
            strides.append(strides[-1] * (n + 1.0))

        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            # Checkpoint overhead per unit work: positions where the protocol
            # takes *exactly* a level-k checkpoint have density
            # 1/W_k - 1/W_{k+1}.  A vanishing W_k makes the density diverge;
            # safe_div records it instead of warning.
            h_ckpt = np.zeros(shape)
            verify = (
                self.silent_errors.verify_cost
                if self.silent_errors is not None
                else 0.0
            )
            for k in range(L):
                dens = safe_div(
                    1.0, tau0 * strides[k], diagnostics, f"{self.name}.density"
                )
                if k + 1 < L:
                    dens = dens - safe_div(
                        1.0, tau0 * strides[k + 1], diagnostics, f"{self.name}.density"
                    )
                h_ckpt += (mp.checkpoint_times[k] + verify) * dens

            # Failure waste per unit work: each severity-k failure restarts
            # (cost R_k) and loses half a level-k interval of wall-clock time.
            h_fail = np.zeros(shape)
            for k in range(L):
                span = tau0 * strides[k] * (1.0 + h_ckpt)
                h_fail += mp.rates[k] * (mp.restart_times[k] + span / 2.0)

            overhead = h_ckpt + h_fail
            total = self.system.baseline_time * (1.0 + overhead)
        # Guard invariant: never NaN, and every non-finite prediction is
        # recorded as it is pinned to +inf.
        flag(diagnostics, f"{self.name}.total", "nan", np.isnan(total))
        flag(diagnostics, f"{self.name}.total", "divergence", np.isinf(total))
        return np.where(np.isfinite(total), total, math.inf)

    # ------------------------------------------------------------------
    def optimize(self, objective="time", **sweep_options):
        """Steady-state sweep: like Moody's model the pattern ignores ``T_B``.

        The waste rate ``H`` is independent of application length, so the
        pattern is bounded by a generous multiple of the failure horizon
        rather than by ``T_B`` — this is what lets the technique choose
        the over-long intervals the paper reports.
        """
        sweep_options.setdefault(
            "max_pattern_work",
            max(
                self.system.baseline_time,
                60.0 * self.system.mtbf * self.system.num_levels,
            ),
        )
        sweep_options.setdefault("tau0_max", sweep_options["max_pattern_work"])
        return super().optimize(objective=objective, **sweep_options)
