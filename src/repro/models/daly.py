"""Daly's higher-order single-level checkpoint/restart model [11].

Traditional checkpoint/restart to the parallel file system: every failure,
of any severity, is recovered from the newest level-``L`` checkpoint.  For
exponential failures with MTBF ``M``, checkpoint cost ``delta`` and
restart cost ``R``, Daly's complete expected-execution-time model is

    T(tau) = M * exp(R / M) * (exp((tau + delta) / M) - 1) * T_B / tau,

which accounts for failures during computation, checkpoints *and* restarts
(the memoryless property folds them into one exponent) — this is why the
paper finds Daly "highly accurate at predicting application efficiency"
even on systems where the protocol itself is uncompetitive (Section IV-C).

Daly's higher-order closed-form optimum

    tau_opt = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / (2M))
                                   + (1/9) (delta / (2M))] - delta

(valid for ``delta < 2M``, else ``tau_opt = M``) is exposed for reference;
:meth:`DalyModel.optimize` refines it numerically against the exact cost
curve, matching the paper's sweep-everything procedure.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.interfaces import CheckpointModel, OptimizationResult, get_objective
from ..core.numerics import ModelDiagnostics, OptimizationCertificate, flag
from ..core.optimizer import golden_section
from ..core.plan import CheckpointPlan
from ..core.silent import SilentErrorSpec
from ..systems.spec import SystemSpec

__all__ = ["DalyModel", "YoungModel", "daly_optimum_interval", "young_optimum_interval"]

_EXP_OVERFLOW = 700.0


def young_optimum_interval(checkpoint_time: float, mtbf: float) -> float:
    """Young's first-order optimum ``tau = sqrt(2 delta M)`` [10]."""
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError("checkpoint time and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_time * mtbf)


def daly_optimum_interval(checkpoint_time: float, mtbf: float) -> float:
    """Daly's higher-order optimum checkpoint interval [11].

    ``sqrt(2 delta M) [1 + (1/3) sqrt(delta/2M) + (1/9)(delta/2M)] - delta``
    for ``delta < 2M``; degenerates to ``M`` otherwise (checkpoints as
    expensive as the failure horizon).
    """
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError("checkpoint time and MTBF must be positive")
    x = checkpoint_time / (2.0 * mtbf)
    if x >= 1.0:
        return mtbf
    return math.sqrt(2.0 * checkpoint_time * mtbf) * (
        1.0 + math.sqrt(x) / 3.0 + x / 9.0
    ) - checkpoint_time


class DalyModel(CheckpointModel):
    """Traditional single-level checkpoint/restart, optimized per Daly [11].

    On a multilevel system the protocol uses only the highest level (the
    PFS), as the paper prescribes for techniques supporting fewer levels
    than the system offers (Section IV-C).
    """

    name = "daly"
    supports_diagnostics = True
    #: Baselines only price the verification cost ``V`` (added to the
    #: checkpoint write); detection latency and recovery-level selection
    #: are outside their formulations.  Documented degradation — the
    #: Dauwe recursion is the "full"-fidelity silent-error model.
    silent_error_fidelity = "cost-only"

    def __init__(self, system: SystemSpec, silent_errors=None):
        super().__init__(system)
        self.silent_errors = SilentErrorSpec.resolve(silent_errors)
        self._level = system.num_levels
        self._delta = system.checkpoint_time(self._level)
        if self.silent_errors is not None:
            self._delta += self.silent_errors.verify_cost
        self._restart = system.restart_time(self._level)

    def candidate_level_subsets(self) -> list[tuple[int, ...]]:
        return [(self._level,)]

    # ------------------------------------------------------------------
    def predict_time(
        self,
        plan: CheckpointPlan,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> float:
        out = self.predict_time_batch(
            plan.levels, plan.counts, np.array([plan.tau0], dtype=float),
            diagnostics=diagnostics,
        )
        return float(out[0])

    def predict_time_batch(
        self,
        levels: tuple[int, ...],
        counts: tuple[int, ...],
        tau0: np.ndarray,
        *,
        diagnostics: ModelDiagnostics | None = None,
    ) -> np.ndarray:
        if tuple(levels) != (self._level,) or counts:
            raise ValueError(
                f"Daly models single-level plans on level {self._level}, "
                f"got levels={levels} counts={counts}"
            )
        tau0 = np.asarray(tau0, dtype=float)
        M = self.system.mtbf
        T_B = self.system.baseline_time
        exponent = (tau0 + self._delta) / M
        restart_exp = self._restart / M
        if restart_exp > _EXP_OVERFLOW:
            # exp(R/M) alone exceeds the representable range: recovery is
            # slower than the failure horizon at any interval, so every
            # plan is hopeless.  Without this guard math.exp raises
            # OverflowError and the sweep crashes.
            flag(
                diagnostics, f"{self.name}.restart", "clamp",
                np.ones(tau0.shape, dtype=bool),
                values=restart_exp, label="restart_over_mtbf",
            )
            return np.full(tau0.shape, np.inf)
        clamp = flag(
            diagnostics, f"{self.name}.exponent", "clamp",
            exponent > _EXP_OVERFLOW, values=exponent, label="exponent",
        )
        with np.errstate(over="ignore", invalid="ignore"):
            raw = M * math.exp(restart_exp) * np.expm1(exponent) / tau0
            per_work = np.where(clamp, np.inf, raw)
        # Organic overflow below the clamp threshold (huge M, tiny tau0)
        # and any NaN from degenerate inputs are recorded and pinned to
        # +inf — finite cells are bitwise identical to the bare formula.
        flag(
            diagnostics, f"{self.name}.total", "overflow",
            np.isinf(raw) & ~clamp, values=exponent, label="exponent",
        )
        nan_mask = flag(diagnostics, f"{self.name}.total", "nan", np.isnan(per_work))
        per_work = np.where(nan_mask, np.inf, per_work)
        # Underflow guard: for subnormal tau0 with a free checkpoint the
        # exponent underflows and expm1 returns 0, collapsing the per-work
        # cost below its analytic infimum of 1 (failure-free execution).
        # Pin to that floor — unreachable for any Table I system, whose
        # PFS cost keeps the exponent well above the underflow range.
        with np.errstate(invalid="ignore"):
            floor = flag(
                diagnostics, f"{self.name}.underflow", "clamp",
                per_work < 1.0, values=tau0, label="tau0",
            )
        per_work = np.where(floor, 1.0, per_work)
        # The final rescale by T_B can overflow on its own when per-work
        # cost is huge-but-finite and the application is long; that last
        # escape to +inf must be recorded too.
        with np.errstate(over="ignore"):
            total = per_work * T_B
        flag(
            diagnostics, f"{self.name}.total", "overflow",
            np.isinf(total) & np.isfinite(per_work),
            values=per_work, label="per_work_time",
        )
        return total

    # ------------------------------------------------------------------
    def optimize(self, objective="time", **sweep_options) -> OptimizationResult:
        """Daly's closed-form seed refined on the exact cost curve.

        The closed-form fast path serves the default time objective only;
        explicit sweep options or a non-time objective route through the
        generic sweep (whose availability fallback is ``T_B / T`` — for a
        single-level technique the two optima coincide).
        """
        if sweep_options or get_objective(objective).name != "time":
            return super().optimize(objective=objective, **sweep_options)
        T_B = self.system.baseline_time
        diag = ModelDiagnostics()
        seed = min(daly_optimum_interval(self._delta, self.system.mtbf), T_B)
        fn = lambda t: float(
            self.predict_time_batch(
                (self._level,), (), np.array([t]), diagnostics=diag
            )[0]
        )
        lo = max(T_B * 1e-6, seed / 16.0)
        hi = min(T_B, seed * 16.0)
        tau, best, evals = golden_section(fn, lo, hi, iterations=80, full_output=True)
        if not math.isfinite(best):
            raise RuntimeError(
                f"{type(self).__name__} found no feasible plan for "
                f"{self.system.name}; every candidate evaluated to infinite "
                "expected time"
            )
        plan = CheckpointPlan.single_level(self._level, tau)
        return OptimizationResult(
            plan=plan,
            predicted_time=best,
            predicted_efficiency=min(1.0, T_B / best),
            evaluations=evals,
            certificate=OptimizationCertificate.from_diagnostics(
                diag, evaluations=evals, refinement_moved=tau != seed
            ),
        )

    @property
    def closed_form_interval(self) -> float:
        """Daly's analytic ``tau_opt`` for this system (reference value)."""
        return daly_optimum_interval(self._delta, self.system.mtbf)


class YoungModel(DalyModel):
    """Young's first-order technique [10]: same cost curve, first-order tau.

    Included for completeness of the historical lineage the paper recounts
    (Section II-A); not part of the paper's Figure 2 comparison.
    """

    name = "young"

    def optimize(self, objective="time", **sweep_options) -> OptimizationResult:
        # Young's technique is a fixed formula, not a search: the first-
        # order interval is the plan under every objective, and its
        # fallback availability is the efficiency already reported.
        obj = get_objective(objective)
        T_B = self.system.baseline_time
        tau = min(young_optimum_interval(self._delta, self.system.mtbf), T_B)
        plan = CheckpointPlan.single_level(self._level, tau)
        diag = ModelDiagnostics()
        t = self.predict_time(plan, diagnostics=diag)
        if not math.isfinite(t):
            raise RuntimeError(
                f"{type(self).__name__} found no feasible plan for "
                f"{self.system.name}; the first-order interval evaluated to "
                "infinite expected time"
            )
        return OptimizationResult(
            plan=plan,
            predicted_time=t,
            predicted_efficiency=min(1.0, T_B / t),
            evaluations=1,
            certificate=OptimizationCertificate.from_diagnostics(
                diag, evaluations=1, objective=obj.name
            ),
            objective=obj.name,
        )
