"""The checkpoint-interval techniques the paper compares (Section IV-C).

==============  =====================================================
``DauweModel``  the paper's hierarchical model (Section III)
``MoodyModel``  SCR's Markov model, Moody et al. [5]
``DiModel``     two-level model, Di et al. [17]
``BenoitModel`` first-order multilevel model, Benoit et al. [18]
``DalyModel``   traditional single-level checkpoint/restart [11]
``YoungModel``  Young's first-order predecessor [10] (extra baseline)
==============  =====================================================

``TECHNIQUES`` maps the registry names used throughout the experiment
harness (and the paper's figure legends) to model factories.
"""

from ..core.dauwe import DauweModel
from ..systems.spec import SystemSpec
from .base import CheckpointModel, OptimizationResult
from .benoit import BenoitModel
from .daly import DalyModel, YoungModel, daly_optimum_interval, young_optimum_interval
from .di import DiModel
from .moody import MoodyModel

#: Registry name -> model factory, in the paper's figure-legend order.
TECHNIQUES: dict[str, type[CheckpointModel]] = {
    "dauwe": DauweModel,
    "di": DiModel,
    "moody": MoodyModel,
    "benoit": BenoitModel,
    "daly": DalyModel,
    "young": YoungModel,
}


def make_model(name: str, system: SystemSpec, **options) -> CheckpointModel:
    """Instantiate a technique from the registry by name."""
    key = name.lower()
    if key not in TECHNIQUES:
        known = ", ".join(TECHNIQUES)
        raise KeyError(f"unknown technique {name!r}; known: {known}")
    return TECHNIQUES[key](system, **options)


__all__ = [
    "BenoitModel",
    "CheckpointModel",
    "DalyModel",
    "DauweModel",
    "DiModel",
    "MoodyModel",
    "OptimizationResult",
    "TECHNIQUES",
    "YoungModel",
    "daly_optimum_interval",
    "make_model",
    "young_optimum_interval",
]
