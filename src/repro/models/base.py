"""Re-exports of the model interface for the baselines package.

The abstract interface lives in :mod:`repro.core.interfaces` (the core
package owns it because the paper's own model implements it); this module
exists so user code can uniformly import every technique from
:mod:`repro.models`.
"""

from ..core.interfaces import CheckpointModel, OptimizationResult

__all__ = ["CheckpointModel", "OptimizationResult"]
