"""Command-line front-end: regenerate the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro figure2 --trials 200 --seed 0
    python -m repro all --trials 100 --report EXPERIMENTS.md
    python -m repro figure4 --quick          # 25-trial smoke run
    python -m repro all --workers 4 --cache-dir .sweep-cache

``--report PATH`` additionally writes/updates the Markdown report; with
``all`` it contains every experiment.  Figure 6 is derived from Figure 4's
rows, so ``all`` runs Figure 4 once and reuses it.

``--workers`` fans independent (system, technique) scenarios across a
process pool (rows are identical to a serial run); ``--sim-workers``
instead parallelizes the trials *within* each scenario and only applies
when ``--workers`` is 1, so pools never nest.  An optimization cache is
active by default (in-memory; ``--cache-dir`` persists it across runs,
``--no-cache`` disables it); per-experiment stage wall-clock and cache
hit/miss counts go to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time

from .exec import (
    OptimizationCache,
    format_stage_report,
    get_active_cache,
    set_active_cache,
    stage_delta,
    stage_snapshot,
)
from .experiments import EXPERIMENTS, figure4, figure6, write_report

__all__ = ["main", "build_parser"]

_QUICK_TRIALS = 25


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables/figures of 'An Analysis of Multilevel "
            "Checkpoint Performance Models' (IPDPS 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="simulation trials per scenario (default: the paper's "
        "200, or 400 for figure5)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for independent scenarios "
        "(rows are identical to a serial run)",
    )
    parser.add_argument(
        "--sim-workers",
        type=int,
        default=1,
        help="process-pool workers for trials within one scenario; "
        "ignored when --workers > 1 (pools never nest)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist the optimization cache to PATH (JSON files), "
        "shared across runs and scenario workers",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the optimization cache entirely",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke mode: {_QUICK_TRIALS} trials per scenario",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write a Markdown report to PATH",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown"
    )
    return parser


def _run_one(name: str, args: argparse.Namespace, fig4_cache: dict):
    runner = EXPERIMENTS[name]
    if name == "table1":
        return runner()
    kwargs = {
        "seed": args.seed,
        "workers": args.workers,
        "sim_workers": args.sim_workers,
    }
    if args.quick:
        kwargs["trials"] = _QUICK_TRIALS
    elif args.trials is not None:
        kwargs["trials"] = args.trials
    if name == "figure6":
        if "figure4" not in fig4_cache:
            fig4_cache["figure4"] = figure4.run(**kwargs)
        return figure6.from_figure4(fig4_cache["figure4"])
    result = runner(**kwargs)
    if name == "figure4":
        fig4_cache["figure4"] = result
    return result


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_cache:
        previous_cache = set_active_cache(None)
    else:
        previous_cache = set_active_cache(OptimizationCache(args.cache_dir))
    names = list(EXPERIMENTS.keys()) if args.experiment == "all" else [args.experiment]
    fig4_cache: dict = {}
    results = []
    try:
        for name in names:
            t0 = time.time()
            stage_before = stage_snapshot()
            cache = get_active_cache()
            cache_before = cache.stats.snapshot() if cache is not None else None
            result = _run_one(name, args, fig4_cache)
            results.append(result)
            print(result.render(markdown=args.markdown))
            info = f"[{name} finished in {time.time() - t0:.1f}s"
            stages = format_stage_report(stage_delta(stage_before))
            if stages:
                info += f" | {stages}"
            if cache is not None:
                info += f" | cache: {cache.stats.delta(cache_before).describe()}"
            print(info + "]", file=sys.stderr)
            print()
        if args.report:
            path = write_report(results, args.report)
            print(f"report written to {path}", file=sys.stderr)
    finally:
        set_active_cache(previous_cache)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
