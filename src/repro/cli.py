"""Command-line front-end: regenerate the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro figure2 --trials 200 --seed 0
    python -m repro all --trials 100 --report EXPERIMENTS.md
    python -m repro figure4 --quick          # 25-trial smoke run
    python -m repro all --workers 4 --cache-dir .sweep-cache
    python -m repro figure2 --techniques dauwe,young
    python -m repro custom --study my_study.json
    python -m repro figure4 --engine scalar  # pin the trial engine
    python -m repro bench --quick            # perf baseline -> BENCH_simulator.json

``--report PATH`` additionally writes/updates the Markdown report; with
``all`` it contains every experiment.  Figure 6 is derived from Figure 4's
rows, so ``all`` runs Figure 4 once and reuses it.

``custom --study PATH`` executes a user-authored :class:`~repro.scenarios.
StudySpec` JSON through the same pipeline as the built-in figures and
prints a generic result table; see README's "define your own scenario"
walkthrough for the file format.  ``--techniques NAMES`` (comma-separated)
restricts any technique-parameterized experiment — including ``custom``
studies — to a subset, and is the way to reach registered techniques the
figures do not default to (e.g. ``young``).

Every run that writes a report (and every ``custom`` run) also emits a
JSON :class:`~repro.scenarios.RunManifest` next to it — study hashes,
derived per-scenario seeds, trial counts, cache hit/miss deltas,
per-stage wall-clock and package versions.  ``--manifest PATH`` picks the
location explicitly.

``--engine`` pins the trial engine for every simulation in the run
(``batch``/``scalar``/``auto``; the default ``auto`` uses the batched
struct-of-arrays engine whenever it is bitwise-equivalent to the scalar
loop, so results never depend on the flag).  ``bench`` runs the
benchmark trajectory instead of an experiment: the micro-benchmark core
cases plus a scalar-vs-batch comparison grid, written as JSON to
``--bench-out`` (default ``BENCH_simulator.json``; see
:mod:`repro.bench` for the schema).

``--workers`` fans independent scenarios across a process pool (rows are
identical to a serial run); ``--sim-workers`` instead parallelizes the
trials *within* each scenario and only applies when ``--workers`` is 1,
so pools never nest (a dropped request warns on stderr).  An optimization
cache is active by default (in-memory; ``--cache-dir`` persists it across
runs, ``--no-cache`` disables it); per-experiment stage wall-clock and
cache hit/miss counts go to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .exec import (
    OptimizationCache,
    format_stage_report,
    get_active_cache,
    set_active_cache,
    stage_delta,
    stage_snapshot,
)
from .experiments import EXPERIMENTS, figure4, figure6, write_report
from .models import TECHNIQUES
from .scenarios import RunManifest, StudySpec, execute_study, generic_result
from .simulator.run import ENGINES, set_default_engine

__all__ = ["main", "build_parser"]

_QUICK_TRIALS = 25

#: Experiments whose runner accepts a ``techniques`` tuple.
_TECHNIQUE_AWARE = frozenset(
    {"figure2", "figure3", "figure4", "figure5", "figure6"}
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables/figures of 'An Analysis of Multilevel "
            "Checkpoint Performance Models' (IPDPS 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all", "custom", "bench"],
        help="experiment id, 'all', 'custom' (requires --study), or "
        "'bench' (benchmark trajectory, writes BENCH_simulator.json)",
    )
    parser.add_argument(
        "--study",
        metavar="PATH",
        default=None,
        help="StudySpec JSON to execute (only with the 'custom' experiment)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="simulation trials per scenario (default: the paper's "
        "200, or 400 for figure5; a custom study's own values)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base RNG seed (default: 0, or a custom study's own seed)",
    )
    parser.add_argument(
        "--techniques",
        metavar="NAMES",
        default=None,
        help="comma-separated technique subset for technique-parameterized "
        f"experiments; registered: {', '.join(sorted(TECHNIQUES))}",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for independent scenarios "
        "(rows are identical to a serial run)",
    )
    parser.add_argument(
        "--sim-workers",
        type=int,
        default=1,
        help="process-pool workers for trials within one scenario; "
        "ignored when --workers > 1 (pools never nest)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist the optimization cache to PATH (JSON files), "
        "shared across runs and scenario workers",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the optimization cache entirely",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke mode: {_QUICK_TRIALS} trials per scenario",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write a Markdown report to PATH",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the run manifest JSON to PATH (default: next to "
        "--report, or next to --study for 'custom')",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=None,
        help="trial engine for all simulations: 'batch' (struct-of-arrays "
        "lockstep), 'scalar' (per-trial Python loop), or 'auto' (batch "
        "whenever bitwise-equivalent; the default)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help="where 'bench' writes its JSON (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown"
    )
    return parser


def _parse_techniques(
    value: str | None, parser: argparse.ArgumentParser
) -> tuple[str, ...] | None:
    if value is None:
        return None
    names = tuple(t.strip().lower() for t in value.split(",") if t.strip())
    if not names:
        parser.error("--techniques needs at least one technique name")
    unknown = [t for t in names if t not in TECHNIQUES]
    if unknown:
        parser.error(
            f"unknown technique(s) {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(TECHNIQUES))}"
        )
    return names


def _manifest_path(args: argparse.Namespace) -> Path | None:
    """Where this invocation's RunManifest goes (None: don't write one)."""
    if args.manifest:
        return Path(args.manifest)
    if args.report:
        report = Path(args.report)
        return report.with_name(report.stem + ".manifest.json")
    if args.experiment == "custom" and args.study:
        study = Path(args.study)
        return study.with_name(study.stem + ".manifest.json")
    return None


def _run_custom(args: argparse.Namespace):
    study = StudySpec.from_file(args.study)
    if args.techniques_tuple is not None:
        study = study.with_techniques(args.techniques_tuple)
    if args.quick:
        study = study.with_trials(_QUICK_TRIALS)
    elif args.trials is not None:
        study = study.with_trials(args.trials)
    if args.seed is not None:
        study = study.with_seed(args.seed)
    srun = execute_study(
        study, workers=args.workers, sim_workers=args.sim_workers
    )
    return generic_result(srun)


def _run_bench(args: argparse.Namespace) -> int:
    """The 'bench' experiment: benchmark trajectory to BENCH_simulator.json.

    The scalar/batch equality check is hard (mismatch exits non-zero);
    timings are recorded but never asserted — containers differ.
    """
    from .bench import format_bench, run_bench

    out = Path(args.bench_out) if args.bench_out else Path("BENCH_simulator.json")
    t0 = time.time()
    try:
        payload = run_bench(quick=args.quick, out=out)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_bench(payload))
    print(
        f"[bench finished in {time.time() - t0:.1f}s | written to {out}]",
        file=sys.stderr,
    )
    return 0


def _run_one(name: str, args: argparse.Namespace, fig4_cache: dict):
    if name == "custom":
        return _run_custom(args)
    if args.techniques_tuple is not None and name not in _TECHNIQUE_AWARE:
        print(
            f"warning: --techniques is ignored by {name} "
            "(not technique-parameterized)",
            file=sys.stderr,
        )
    runner = EXPERIMENTS[name]
    if name == "table1":
        return runner()
    kwargs = {
        "seed": args.seed if args.seed is not None else 0,
        "workers": args.workers,
        "sim_workers": args.sim_workers,
    }
    if args.quick:
        kwargs["trials"] = _QUICK_TRIALS
    elif args.trials is not None:
        kwargs["trials"] = args.trials
    if args.techniques_tuple is not None and name in _TECHNIQUE_AWARE:
        kwargs["techniques"] = args.techniques_tuple
    if name == "figure6":
        if "figure4" not in fig4_cache:
            fig4_cache["figure4"] = figure4.run(**kwargs)
        return figure6.from_figure4(fig4_cache["figure4"])
    result = runner(**kwargs)
    if name == "figure4":
        fig4_cache["figure4"] = result
    return result


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.techniques_tuple = _parse_techniques(args.techniques, parser)
    if args.experiment == "custom" and not args.study:
        parser.error("the 'custom' experiment requires --study PATH")
    if args.experiment != "custom" and args.study:
        parser.error("--study only applies to the 'custom' experiment")
    if args.engine is not None:
        set_default_engine(args.engine)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.no_cache:
        previous_cache = set_active_cache(None)
    else:
        previous_cache = set_active_cache(OptimizationCache(args.cache_dir))
    names = list(EXPERIMENTS.keys()) if args.experiment == "all" else [args.experiment]
    fig4_cache: dict = {}
    results = []
    manifest = RunManifest(workers=args.workers, sim_workers=args.sim_workers)
    seen_records: set[int] = set()
    try:
        for name in names:
            t0 = time.time()
            stage_before = stage_snapshot()
            cache = get_active_cache()
            cache_before = cache.stats.snapshot() if cache is not None else None
            try:
                result = _run_one(name, args, fig4_cache)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            results.append(result)
            print(result.render(markdown=args.markdown))
            info = f"[{name} finished in {time.time() - t0:.1f}s"
            stages = format_stage_report(stage_delta(stage_before))
            if stages:
                info += f" | {stages}"
            if cache is not None:
                info += f" | cache: {cache.stats.delta(cache_before).describe()}"
            print(info + "]", file=sys.stderr)
            print()
            if result.manifest is not None and id(result.manifest) not in seen_records:
                # Figure 6 carries Figure 4's record; dedupe the shared dict.
                seen_records.add(id(result.manifest))
                manifest.add(result.manifest)
        if args.report:
            path = write_report(results, args.report)
            print(f"report written to {path}", file=sys.stderr)
        manifest_path = _manifest_path(args)
        if manifest_path is not None:
            manifest.write(manifest_path)
            print(f"manifest written to {manifest_path}", file=sys.stderr)
    finally:
        set_active_cache(previous_cache)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
