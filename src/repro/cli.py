"""Command-line front-end: regenerate the paper's tables and figures.

Usage::

    python -m repro table1
    python -m repro figure2 --trials 200 --seed 0
    python -m repro all --trials 100 --report EXPERIMENTS.md
    python -m repro figure4 --quick          # 25-trial smoke run
    python -m repro all --workers 4 --cache-dir .sweep-cache
    python -m repro figure2 --techniques dauwe,young
    python -m repro custom --study my_study.json
    python -m repro figure4 --engine scalar  # pin the trial engine
    python -m repro bench --quick            # perf baseline -> BENCH_simulator.json
    python -m repro figure2 --objective availability
    python -m repro figure4 --silent-mtbf 2000 --silent-verify 0.2 --silent-latency 10

``--report PATH`` additionally writes/updates the Markdown report; with
``all`` it contains every experiment.  Figure 6 is derived from Figure 4's
rows, so ``all`` runs Figure 4 once and reuses it.

``custom --study PATH`` executes a user-authored :class:`~repro.scenarios.
StudySpec` JSON through the same pipeline as the built-in figures and
prints a generic result table; see README's "define your own scenario"
walkthrough for the file format.  ``--techniques NAMES`` (comma-separated)
restricts any technique-parameterized experiment — including ``custom``
studies — to a subset, and is the way to reach registered techniques the
figures do not default to (e.g. ``young``).

Every run that writes a report (and every ``custom`` run) also emits a
JSON :class:`~repro.scenarios.RunManifest` next to it — study hashes,
derived per-scenario seeds, trial counts, cache hit/miss deltas,
per-stage wall-clock and package versions.  ``--manifest PATH`` picks the
location explicitly.

``--engine`` pins the trial engine for every simulation in the run
(``batch``/``scalar``/``auto``; the default ``auto`` uses the batched
struct-of-arrays engine whenever it is bitwise-equivalent to the scalar
loop, so results never depend on the flag).  ``bench`` runs the
benchmark trajectory instead of an experiment: the micro-benchmark core
cases plus a scalar-vs-batch comparison grid (exponential, Weibull and
trace cells), written as JSON to ``--bench-out`` (default
``BENCH_simulator.json``; see :mod:`repro.bench` for the schema).
``bench --crossover`` additionally sweeps a trial-count ladder on both
engines and prints the recommended ``engine="auto"`` width threshold
for this machine (``REPRO_AUTO_MIN_TRIALS`` adopts it).

``--objective`` re-optimizes every technique-parameterized experiment
(figure2-figure6) for a different goal (``availability``: steady-state
useful-work fraction); ``--silent-mtbf``/``--silent-verify``/
``--silent-latency`` overlay a silent-error (SDC) process on both the
models and the simulator.  Omitting them reproduces the paper's
fail-stop, minimum-time setting byte for byte.

``--workers`` fans independent scenarios across a process pool (rows are
identical to a serial run); ``--sim-workers`` instead parallelizes the
trials *within* each scenario and only applies when ``--workers`` is 1,
so pools never nest (a dropped request warns on stderr).  An optimization
cache is active by default (in-memory; ``--cache-dir`` persists it across
runs, ``--no-cache`` disables it); per-experiment stage wall-clock and
cache hit/miss counts go to stderr.

Resilience: every run that writes a report also keeps an append-only
*run journal* next to it (``<report>.journal.jsonl``) of completed
scenarios, so an interrupted invocation — worker crash, Ctrl-C, SIGKILL
— resumes where it left off when re-run (``--resume PATH`` names a
journal explicitly, ``--no-resume`` starts fresh).  Transient scenario
failures are retried ``--max-retries`` times with deterministic backoff,
dead process pools are rebuilt and ultimately degraded to serial
execution (all recorded in the manifest), and an aborted run still
writes its partial report and a ``status: "aborted"`` manifest.

``journal --journal PATH`` audits a run journal without executing
anything: every line is checksum-verified, each study section is
summarized (completed vs pending scenarios, superseded sections), and a
torn final line — the expected artifact of a killed process — is
reported separately from real corruption.

Exit codes: 0 success; 1 configuration/input error; 2 usage error
(argparse); 3 study execution failed after retries; 4 journal/spec
mismatch under explicit ``--resume`` or corruption found by the
``journal`` audit; 130 interrupted (SIGINT).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from .exec import (
    JournalMismatchError,
    OptimizationCache,
    RetryPolicy,
    StudyExecutionError,
    StudyInterrupted,
    format_stage_report,
    get_active_cache,
    set_active_cache,
    stage_delta,
    stage_snapshot,
)
from .core.interfaces import OBJECTIVES
from .core.silent import SilentErrorSpec
from .experiments import EXPERIMENTS, figure4, figure6, write_report
from .experiments.runner import DEFAULT_TECHNIQUES
from .models import TECHNIQUES
from .scenarios import RunManifest, StudySpec, execute_study, generic_result
from .simulator.run import ENGINES, set_default_engine

__all__ = ["main", "build_parser"]

_QUICK_TRIALS = 25

# Distinct exit codes so scripted callers can tell failure modes apart
# (tested via subprocess in tests/test_cli.py / tests/test_chaos.py).
EXIT_OK = 0
EXIT_ERROR = 1  # bad input/configuration (study file, option values)
EXIT_USAGE = 2  # argparse usage errors
EXIT_EXECUTION = 3  # study failed after retries/degradation
EXIT_JOURNAL = 4  # journal rejected under explicit --resume
EXIT_INTERRUPTED = 130  # SIGINT (128 + signal number)

#: Experiments whose runner accepts a ``techniques`` tuple.
_TECHNIQUE_AWARE = frozenset(
    {"figure2", "figure3", "figure4", "figure5", "figure6"}
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate tables/figures of 'An Analysis of Multilevel "
            "Checkpoint Performance Models' (IPDPS 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            *EXPERIMENTS.keys(), "all", "custom", "bench", "validate",
            "serve", "journal",
        ],
        help="experiment id, 'all', 'custom' (requires --study), "
        "'bench' (benchmark trajectory, writes BENCH_simulator.json), "
        "'validate' (numerics-guard cross-check of every model; "
        "--stress swaps in the adversarial catalog), 'serve' (HTTP "
        "planning service: POST /plan, POST /study, GET /health), or "
        "'journal' (audit a run journal: per-line checksums, section "
        "summaries, pending scenarios, torn-tail detection; requires "
        "--journal PATH)",
    )
    parser.add_argument(
        "--study",
        metavar="PATH",
        default=None,
        help="StudySpec JSON to execute (only with the 'custom' experiment)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="simulation trials per scenario (default: the paper's "
        "200, or 400 for figure5; a custom study's own values)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base RNG seed (default: 0, or a custom study's own seed)",
    )
    parser.add_argument(
        "--techniques",
        metavar="NAMES",
        default=None,
        help="comma-separated technique subset for technique-parameterized "
        f"experiments; registered: {', '.join(sorted(TECHNIQUES))}",
    )
    parser.add_argument(
        "--objective",
        choices=sorted(OBJECTIVES),
        default=None,
        help="optimization objective for technique-parameterized "
        "experiments (figure2-figure6): 'time' (the paper's expected "
        "completion time, default) or 'availability' (steady-state "
        "useful-work fraction)",
    )
    parser.add_argument(
        "--silent-mtbf",
        type=float,
        default=None,
        metavar="MIN",
        help="overlay a silent-error (SDC) process with this mean time "
        "between strikes (minutes) on technique-parameterized experiments",
    )
    parser.add_argument(
        "--silent-verify",
        type=float,
        default=None,
        metavar="MIN",
        help="verification time appended to every checkpoint write "
        "(minutes; requires --silent-mtbf; default 0)",
    )
    parser.add_argument(
        "--silent-latency",
        type=float,
        default=None,
        metavar="MIN",
        help="strike-to-detection latency (minutes; requires "
        "--silent-mtbf; default 0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for independent scenarios "
        "(rows are identical to a serial run)",
    )
    parser.add_argument(
        "--sim-workers",
        type=int,
        default=1,
        help="process-pool workers for trials within one scenario; "
        "ignored when --workers > 1 (pools never nest)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist the optimization cache to PATH (JSON files), "
        "shared across runs and scenario workers",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the optimization cache entirely",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke mode: {_QUICK_TRIALS} trials per scenario",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write a Markdown report to PATH",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the run manifest JSON to PATH (default: next to "
        "--report, or next to --study for 'custom')",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume from (and append to) the run journal at PATH; a "
        "journal written by a different study configuration is an error",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore any existing journal entries and start fresh "
        "(the journal is still written)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per scenario after a transient failure "
        "(exponential backoff, jitter derived from --seed; default: 2)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-scenario watchdog deadline in seconds: a hung scenario "
        "is cancelled into the retry ladder instead of stalling the run "
        "(default: no deadline; also disables the packed fast path)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=None,
        help="trial engine for all simulations: 'batch' (struct-of-arrays "
        "lockstep), 'scalar' (per-trial Python loop), or 'auto' (batch "
        "whenever bitwise-equivalent; the default)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help="where 'bench' writes its JSON (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--check-baseline",
        nargs="?",
        const="BENCH_simulator.json",
        default=None,
        metavar="PATH",
        help="with 'bench': compare throughput against the recorded "
        "baseline JSON (default: BENCH_simulator.json) and exit non-zero "
        "on a regression beyond 5%%",
    )
    parser.add_argument(
        "--baseline-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="with 'bench --check-baseline': relative throughput tolerance "
        "before a cell counts as a regression (default: REPRO_BENCH_TOL "
        "env var, else 0.05)",
    )
    parser.add_argument(
        "--baseline-repeats",
        type=int,
        default=3,
        metavar="N",
        help="with 'bench --check-baseline': run the timed cells N times "
        "and compare the median against the baseline, defeating container "
        "timing jitter (default: 3; plain 'bench' runs once)",
    )
    parser.add_argument(
        "--crossover",
        action="store_true",
        help="with 'bench': re-measure the batch/scalar crossover width "
        "on this machine and print the recommended engine='auto' "
        "threshold (adopt it via REPRO_AUTO_MIN_TRIALS)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="with 'journal': the run-journal file to audit "
        "(e.g. EXPERIMENTS.journal.jsonl or a service-dir journal)",
    )
    parser.add_argument(
        "--validate-out",
        metavar="PATH",
        default=None,
        help="with 'validate': also write the full validation report "
        "as JSON to PATH (the CI stress-validation artifact)",
    )
    parser.add_argument(
        "--stress",
        action="store_true",
        help="with 'validate': use the adversarial stress catalog "
        "(extreme MTBFs, free/mammoth checkpoints, 1e6-node variants) "
        "instead of the paper's Table I systems",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown"
    )
    service = parser.add_argument_group(
        "serve", "options for the 'serve' experiment (see README: Serving plans)"
    )
    service.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    service.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = ephemeral; the chosen port is "
        "announced on stdout as 'SERVE http://HOST:PORT')",
    )
    service.add_argument(
        "--service-workers",
        type=int,
        default=1,
        metavar="N",
        help="plan-computation worker processes (default: 1)",
    )
    service.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="admission queue depth before requests are shed with 429 "
        "(default: 8)",
    )
    service.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        metavar="SEC",
        help="per-request deadline when the client sends none "
        "(X-Deadline-Ms header or deadline_ms query override; default: 30)",
    )
    service.add_argument(
        "--service-dir",
        metavar="PATH",
        default=".repro-service",
        help="directory for study journals (default: .repro-service); "
        "re-POSTing a spec resumes from its journal here",
    )
    service.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SEC",
        help="SIGTERM grace period for in-flight requests and studies "
        "(default: 10; journaled studies abandoned past it exit 75)",
    )
    service.add_argument(
        "--max-studies",
        type=int,
        default=1,
        metavar="N",
        help="concurrent background study runs (default: 1)",
    )
    return parser


def _parse_techniques(
    value: str | None, parser: argparse.ArgumentParser
) -> tuple[str, ...] | None:
    if value is None:
        return None
    names = tuple(t.strip().lower() for t in value.split(",") if t.strip())
    if not names:
        parser.error("--techniques needs at least one technique name")
    unknown = [t for t in names if t not in TECHNIQUES]
    if unknown:
        parser.error(
            f"unknown technique(s) {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(TECHNIQUES))}"
        )
    return names


def _parse_silent(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> SilentErrorSpec | None:
    """Fold the three --silent-* flags into one validated spec (or None)."""
    if args.silent_mtbf is None:
        if args.silent_verify is not None or args.silent_latency is not None:
            parser.error(
                "--silent-verify/--silent-latency require --silent-mtbf"
            )
        return None
    try:
        return SilentErrorSpec(
            mtbf=args.silent_mtbf,
            verify_cost=args.silent_verify or 0.0,
            detection_latency=args.silent_latency or 0.0,
        )
    except ValueError as exc:
        parser.error(str(exc))


def _manifest_path(args: argparse.Namespace) -> Path | None:
    """Where this invocation's RunManifest goes (None: don't write one)."""
    if args.manifest:
        return Path(args.manifest)
    if args.report:
        report = Path(args.report)
        return report.with_name(report.stem + ".manifest.json")
    if args.experiment == "custom" and args.study:
        study = Path(args.study)
        return study.with_name(study.stem + ".manifest.json")
    return None


def _journal_path(args: argparse.Namespace) -> Path | None:
    """Where this invocation's run journal lives (None: no journaling).

    ``--resume PATH`` names it explicitly; otherwise a report-writing run
    auto-journals next to the report, so a crashed ``--report`` run is
    resumable simply by re-running the same command line.
    """
    if args.resume:
        return Path(args.resume)
    if args.report:
        report = Path(args.report)
        return report.with_name(report.stem + ".journal.jsonl")
    return None


def _exec_options(args: argparse.Namespace) -> dict:
    """The resilience keywords threaded into every ``execute_study`` call."""
    options: dict = {
        "retry": RetryPolicy(
            max_attempts=args.max_retries + 1,
            seed=args.seed if args.seed is not None else 0,
        )
    }
    if args.task_timeout is not None:
        options["task_timeout"] = args.task_timeout
    journal = _journal_path(args)
    if journal is not None:
        options["journal"] = journal
        # Explicit --resume demands the journal match; the auto-detected
        # journal quietly starts fresh when the spec changed.
        options["resume"] = (
            "never" if args.no_resume else ("require" if args.resume else "auto")
        )
    return options


def _run_custom(args: argparse.Namespace):
    study = StudySpec.from_file(args.study)
    if args.techniques_tuple is not None:
        study = study.with_techniques(args.techniques_tuple)
    if args.quick:
        study = study.with_trials(_QUICK_TRIALS)
    elif args.trials is not None:
        study = study.with_trials(args.trials)
    if args.seed is not None:
        study = study.with_seed(args.seed)
    srun = execute_study(
        study, workers=args.workers, sim_workers=args.sim_workers,
        **_exec_options(args),
    )
    return generic_result(srun)


def _run_bench(args: argparse.Namespace) -> int:
    """The 'bench' experiment: benchmark trajectory to BENCH_simulator.json.

    The scalar/batch equality check is hard (mismatch exits non-zero);
    timings are recorded but never asserted — containers differ.
    """
    import json
    import os

    from .bench import SCHEMA, compare_to_baseline, format_bench, run_bench

    out = Path(args.bench_out) if args.bench_out else Path("BENCH_simulator.json")
    baseline = None
    if args.check_baseline is not None:
        # Read before running: the run may overwrite the baseline file.
        baseline_path = Path(args.check_baseline)
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot read bench baseline {baseline_path}: {exc}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        if baseline.get("schema") != SCHEMA:
            # A silent cross-schema comparison would report nonsense
            # regressions (or mask real ones); refuse loudly instead.
            print(
                f"error: bench baseline {baseline_path} has schema "
                f"{baseline.get('schema')!r} but this build writes "
                f"{SCHEMA!r}; re-record the baseline "
                "(python -m repro bench) before gating on it",
                file=sys.stderr,
            )
            return EXIT_ERROR
    tolerance = args.baseline_tol
    if tolerance is None:
        env_tol = os.environ.get("REPRO_BENCH_TOL", "")
        try:
            tolerance = float(env_tol) if env_tol else 0.05
        except ValueError:
            print(
                f"error: REPRO_BENCH_TOL={env_tol!r} is not a number",
                file=sys.stderr,
            )
            return EXIT_ERROR
    if not 0 < tolerance < 1:
        print(
            f"error: baseline tolerance must be in (0, 1), got {tolerance}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    if args.baseline_repeats < 1:
        print("error: --baseline-repeats must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    # Gated runs repeat the timed cells and keep per-cell medians; a
    # single sample in a noisy container flakes any honest tolerance.
    repeats = args.baseline_repeats if baseline is not None else 1
    t0 = time.time()
    try:
        payload = run_bench(
            quick=args.quick, out=out, crossover=args.crossover,
            repeats=repeats,
        )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(format_bench(payload))
    print(
        f"[bench finished in {time.time() - t0:.1f}s | written to {out}]",
        file=sys.stderr,
    )
    if baseline is not None:
        findings = compare_to_baseline(payload, baseline, tolerance=tolerance)
        if findings:
            print("bench baseline regressions:", file=sys.stderr)
            for finding in findings:
                print(f"  {finding}", file=sys.stderr)
            return EXIT_EXECUTION
        print(
            f"bench baseline check: within tolerance ({tolerance:.0%}, "
            f"median of {repeats})",
            file=sys.stderr,
        )
    return EXIT_OK


def _run_serve(args: argparse.Namespace) -> int:
    """The 'serve' experiment: block in the asyncio planning service."""
    from .service import ServiceConfig, serve

    if args.service_workers < 1:
        print("error: --service-workers must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    if args.default_deadline <= 0:
        print("error: --default-deadline must be positive", file=sys.stderr)
        return EXIT_ERROR
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.service_workers,
        queue_limit=args.queue_limit,
        default_deadline=args.default_deadline,
        task_timeout=args.task_timeout,
        service_dir=args.service_dir,
        max_studies=args.max_studies,
        drain_timeout=args.drain_timeout,
    )
    try:
        return serve(config)
    except OSError as exc:  # bind failure: port taken, bad host
        print(f"error: cannot start service: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _run_validate(args: argparse.Namespace) -> int:
    """The 'validate' experiment: numerics-guard cross-check (see repro.validate).

    Exits :data:`EXIT_OK` when every invariant holds (predictions finite
    or ``+inf``, never NaN; every ``+inf`` loud; no crashes) and
    :data:`EXIT_EXECUTION` when any violation is found.  Deviation bands
    and event totals are informational output either way.
    """
    from .validate import format_validation, run_validation

    t0 = time.time()
    report = run_validation(
        stress=args.stress,
        quick=args.quick,
        techniques=args.techniques_tuple or DEFAULT_TECHNIQUES,
        trials=args.trials,
        seed=args.seed if args.seed is not None else 0,
    )
    print(format_validation(report))
    if args.validate_out:
        import json

        from .exec.resilience import atomic_write_text

        out = Path(args.validate_out)
        atomic_write_text(out, json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"validation report written to {out}", file=sys.stderr)
    print(
        f"[validate finished in {time.time() - t0:.1f}s | "
        f"{'OK' if report.ok else 'VIOLATIONS FOUND'}]",
        file=sys.stderr,
    )
    return EXIT_OK if report.ok else EXIT_EXECUTION


def _run_journal(args: argparse.Namespace) -> int:
    """The 'journal' experiment: checksum audit of a run journal.

    Prints the per-section summary (completed vs pending scenarios,
    superseded sections, torn tail) and exits :data:`EXIT_JOURNAL` when
    any *terminated* line fails its checksum or any scenario entry is
    orphaned — the journal holds entries resume would silently drop.  A
    torn final line (the expected artifact of a killed process) is
    reported but does not fail the audit.
    """
    from .exec.resilience import audit_journal, format_audit

    try:
        audit = audit_journal(args.journal)
    except OSError as exc:
        print(f"error: cannot read journal {args.journal}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(format_audit(audit))
    return EXIT_OK if audit.ok else EXIT_JOURNAL


def _run_one(name: str, args: argparse.Namespace, fig4_cache: dict):
    if name == "custom":
        return _run_custom(args)
    if args.techniques_tuple is not None and name not in _TECHNIQUE_AWARE:
        print(
            f"warning: --techniques is ignored by {name} "
            "(not technique-parameterized)",
            file=sys.stderr,
        )
    runner = EXPERIMENTS[name]
    if name == "table1":
        return runner()
    kwargs = {
        "seed": args.seed if args.seed is not None else 0,
        "workers": args.workers,
        "sim_workers": args.sim_workers,
        **_exec_options(args),
    }
    if args.quick:
        kwargs["trials"] = _QUICK_TRIALS
    elif args.trials is not None:
        kwargs["trials"] = args.trials
    if args.techniques_tuple is not None and name in _TECHNIQUE_AWARE:
        kwargs["techniques"] = args.techniques_tuple
    if name in _TECHNIQUE_AWARE:
        if args.objective is not None:
            kwargs["objective"] = args.objective
        if args.silent_spec is not None:
            kwargs["silent_errors"] = args.silent_spec
    if name == "figure6":
        if "figure4" not in fig4_cache:
            fig4_cache["figure4"] = figure4.run(**kwargs)
        return figure6.from_figure4(fig4_cache["figure4"])
    result = runner(**kwargs)
    if name == "figure4":
        fig4_cache["figure4"] = result
    return result


def _install_sigint_handler():
    """Make the first Ctrl-C a graceful abort and the second immediate.

    The first SIGINT raises :class:`KeyboardInterrupt` in the main
    thread (so the journal, partial report and aborted manifest get
    flushed on the way out); a second one gives up on cleanup and exits
    130 on the spot.  Returns the previous handler (restore it in a
    ``finally``), or ``None`` when handlers cannot be installed here
    (non-main thread, e.g. under some test runners).
    """
    state = {"interrupts": 0}

    def handler(signum, frame):
        state["interrupts"] += 1
        if state["interrupts"] >= 2:
            import os

            print("interrupted twice; exiting immediately", file=sys.stderr)
            os._exit(EXIT_INTERRUPTED)
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGINT, handler)
    except ValueError:
        return None


def _write_abort_artifacts(args, results, manifest, error: str) -> None:
    """Flush partial report + ``status: "aborted"`` manifest on the way out.

    Both writes are atomic (temp + rename), so an abort can only leave
    complete artifacts behind — the same contract the run journal keeps
    per line.  Failed runs stay diagnosable without scrollback.
    """
    manifest.status = "aborted"
    manifest.error = error
    if args.report and results:
        try:
            path = write_report(results, args.report)
            print(f"partial report written to {path}", file=sys.stderr)
        except OSError as exc:  # never mask the abort itself
            print(f"warning: could not write partial report: {exc}", file=sys.stderr)
    manifest_path = _manifest_path(args)
    if manifest_path is not None:
        try:
            manifest.write(manifest_path)
            print(f"aborted-run manifest written to {manifest_path}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: could not write manifest: {exc}", file=sys.stderr)
    journal = _journal_path(args)
    if journal is not None and journal.exists():
        print(
            f"run journal at {journal} — re-run the same command to resume",
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.techniques_tuple = _parse_techniques(args.techniques, parser)
    args.silent_spec = _parse_silent(args, parser)
    if (
        args.objective is not None or args.silent_spec is not None
    ) and args.experiment not in _TECHNIQUE_AWARE:
        parser.error(
            "--objective/--silent-* apply only to "
            f"{', '.join(sorted(_TECHNIQUE_AWARE))} (a custom study sets "
            "them per scenario in its JSON)"
        )
    if args.experiment == "custom" and not args.study:
        parser.error("the 'custom' experiment requires --study PATH")
    if args.experiment != "custom" and args.study:
        parser.error("--study only applies to the 'custom' experiment")
    if args.resume and args.no_resume:
        parser.error("--resume and --no-resume are mutually exclusive")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if args.engine is not None:
        set_default_engine(args.engine)
    if args.stress and args.experiment != "validate":
        parser.error("--stress only applies to the 'validate' experiment")
    if args.validate_out and args.experiment != "validate":
        parser.error("--validate-out only applies to the 'validate' experiment")
    if args.journal and args.experiment != "journal":
        parser.error("--journal only applies to the 'journal' experiment")
    if args.experiment == "journal" and not args.journal:
        parser.error("the 'journal' experiment requires --journal PATH")
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "validate":
        return _run_validate(args)
    if args.experiment == "journal":
        return _run_journal(args)
    if args.no_cache:
        previous_cache = set_active_cache(None)
    else:
        previous_cache = set_active_cache(OptimizationCache(args.cache_dir))
    if args.experiment == "serve":
        # The service shares the CLI's cache installation (hits show up
        # in /health) and owns its own signal handling for drain.
        try:
            return _run_serve(args)
        finally:
            set_active_cache(previous_cache)
    names = list(EXPERIMENTS.keys()) if args.experiment == "all" else [args.experiment]
    fig4_cache: dict = {}
    results = []
    manifest = RunManifest(workers=args.workers, sim_workers=args.sim_workers)
    seen_records: set[int] = set()
    previous_handler = _install_sigint_handler()
    try:
        for name in names:
            t0 = time.time()
            stage_before = stage_snapshot()
            cache = get_active_cache()
            cache_before = cache.stats.snapshot() if cache is not None else None
            try:
                result = _run_one(name, args, fig4_cache)
            except JournalMismatchError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_JOURNAL
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_ERROR
            results.append(result)
            print(result.render(markdown=args.markdown))
            info = f"[{name} finished in {time.time() - t0:.1f}s"
            stages = format_stage_report(stage_delta(stage_before))
            if stages:
                info += f" | {stages}"
            if cache is not None:
                info += f" | cache: {cache.stats.delta(cache_before).describe()}"
            resumed = None
            if result.manifest is not None:
                resumed = result.manifest.get("resilience", {}).get("resumed")
            if resumed:
                info += f" | resumed {resumed} scenario(s) from journal"
            print(info + "]", file=sys.stderr)
            print()
            if result.manifest is not None and id(result.manifest) not in seen_records:
                # Figure 6 carries Figure 4's record; dedupe the shared dict.
                seen_records.add(id(result.manifest))
                manifest.add(result.manifest)
        if args.report:
            path = write_report(results, args.report)
            print(f"report written to {path}", file=sys.stderr)
        manifest_path = _manifest_path(args)
        if manifest_path is not None:
            manifest.write(manifest_path)
            print(f"manifest written to {manifest_path}", file=sys.stderr)
    except StudyExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.record is not None:
            manifest.add(exc.record)
        _write_abort_artifacts(args, results, manifest, f"StudyExecutionError: {exc}")
        return EXIT_EXECUTION
    except KeyboardInterrupt as exc:  # includes StudyInterrupted
        print("interrupted", file=sys.stderr)
        if isinstance(exc, StudyInterrupted) and exc.record is not None:
            manifest.add(exc.record)
        _write_abort_artifacts(args, results, manifest, "interrupted (SIGINT)")
        return EXIT_INTERRUPTED
    finally:
        set_active_cache(previous_cache)
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
