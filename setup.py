"""Legacy setuptools shim.

Kept so the package installs editable on environments whose setuptools
cannot build PEP-660 wheels offline (``pip install -e . --no-use-pep517``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
