"""The declarative pipeline reproduces the pre-refactor paths bit for bit.

Each test re-implements one pre-refactor experiment module's computation
inline (the direct ``evaluate_technique`` / ``simulate_many`` /
``IntervalModel`` calls those modules made before they became StudySpec
builders) and asserts the rewritten ``run()`` produces **equal** rows —
dict equality, so every float must match to the last bit at the same
seed and trial count.
"""

from __future__ import annotations

from math import gamma

import pytest

from repro.exec import OptimizationCache, set_active_cache
from repro.experiments import (
    ablations,
    figure2,
    figure3,
    figure4,
    figure5,
    interval_study,
    weibull,
)
from repro.experiments.runner import evaluate_technique, optimize_technique
from repro.failures.sources import WeibullFailureSource
from repro.interval import IntervalModel, simulate_schedule_many
from repro.simulator import simulate_many
from repro.systems import TEST_SYSTEMS, exascale_grid

TRIALS = 4
SEED = 11

_FIG3_CATS = (
    "work",
    "checkpoint",
    "failed_checkpoint",
    "restart",
    "failed_restart",
    "rework_compute",
    "rework_checkpoint",
    "rework_restart",
)


@pytest.fixture(autouse=True)
def shared_cache():
    """One in-memory cache for both paths: sweeps are computed once."""
    previous = set_active_cache(OptimizationCache())
    yield
    set_active_cache(previous)


def test_figure2_rows_match_legacy_path():
    systems = ("M", "D5")
    techniques = ("dauwe", "di", "moody", "benoit", "daly")
    new = figure2.run(
        trials=TRIALS, seed=SEED, systems=systems, techniques=techniques
    )
    legacy = []
    for name in systems:
        for tech in techniques:
            out = evaluate_technique(
                TEST_SYSTEMS[name], tech, trials=TRIALS, seed=SEED
            )
            legacy.append(
                {
                    "system": out.system,
                    "technique": out.technique,
                    "sim efficiency": out.simulated_efficiency,
                    "std": out.simulated_std,
                    "predicted": out.predicted_efficiency,
                    "error": out.prediction_error,
                    "plan": out.plan,
                }
            )
    assert new.rows == legacy


def test_figure3_rows_match_legacy_path():
    systems = ("D7",)
    new = figure3.run(trials=TRIALS, seed=SEED, systems=systems)
    legacy = []
    for name in systems:
        for tech in ("dauwe", "di", "moody"):
            out = evaluate_technique(
                TEST_SYSTEMS[name], tech, trials=TRIALS, seed=SEED
            )
            fr = out.breakdown_fractions
            row = {"system": out.system, "technique": out.technique}
            for cat in _FIG3_CATS:
                row[cat] = 100.0 * fr.get(cat, 0.0)
            row["failed C/R total"] = (
                row["failed_checkpoint"] + row["failed_restart"]
            )
            legacy.append(row)
    assert new.rows == legacy


def test_figure4_rows_match_legacy_path():
    techniques = ("dauwe",)
    new = figure4.run(trials=TRIALS, seed=SEED, techniques=techniques)
    legacy = []
    for spec in exascale_grid(short_application=False):
        for tech in techniques:
            out = evaluate_technique(spec, tech, trials=TRIALS, seed=SEED)
            legacy.append(
                {
                    "cL (min)": spec.checkpoint_times[-1],
                    "MTBF (min)": spec.mtbf,
                    "technique": tech,
                    "sim efficiency": out.simulated_efficiency,
                    "std": out.simulated_std,
                    "predicted": out.predicted_efficiency,
                    "error": out.prediction_error,
                    "plan": out.plan,
                    "completed": out.completed_fraction,
                }
            )
    assert new.rows == legacy


def test_figure5_rows_match_legacy_path():
    techniques = ("moody",)
    new = figure5.run(trials=TRIALS, seed=SEED, techniques=techniques)
    legacy = []
    for spec in exascale_grid(short_application=True):
        for tech in techniques:
            out = evaluate_technique(spec, tech, trials=TRIALS, seed=SEED)
            legacy.append(
                {
                    "cL (min)": spec.checkpoint_times[-1],
                    "MTBF (min)": spec.mtbf,
                    "technique": tech,
                    "sim efficiency": out.simulated_efficiency,
                    "std": out.simulated_std,
                    "predicted": out.predicted_efficiency,
                    "skips level-L": (
                        "no" if f"L{spec.num_levels}" in out.plan else "yes"
                    ),
                    "plan": out.plan,
                }
            )
    assert new.rows == legacy


def test_ablations_rows_match_legacy_path():
    new = ablations.run(trials=TRIALS, seed=SEED)
    no_failed_cr = {
        "include_checkpoint_failures": False,
        "include_restart_failures": False,
    }

    def legacy_row(study, name, variant, res, show_pred=True, **simulate):
        spec = TEST_SYSTEMS[name]
        stats = simulate_many(
            spec, res.plan, trials=TRIALS, seed=SEED, **simulate
        )
        sim = stats.mean_efficiency
        pred = res.predicted_efficiency if show_pred else None
        return {
            "study": study,
            "system": name,
            "variant": variant,
            "sim efficiency": sim,
            "predicted": pred,
            "error": None if pred is None else pred - sim,
            "plan": res.plan.describe(),
        }

    legacy = []
    for name in ("D1", "D5", "D8"):
        res = optimize_technique(TEST_SYSTEMS[name], "dauwe")
        legacy.append(legacy_row("model-terms", name, "full model", res))
        res = optimize_technique(
            TEST_SYSTEMS[name], "dauwe", model_options=no_failed_cr
        )
        legacy.append(
            legacy_row("model-terms", name, "no failed-C/R terms", res)
        )
    for name in ("D5", "D8"):
        res = optimize_technique(TEST_SYSTEMS[name], "dauwe")
        for semantics in ("retry", "escalate"):
            legacy.append(
                legacy_row(
                    "restart-semantics", name, semantics, res,
                    show_pred=False, restart_semantics=semantics,
                )
            )
    for name in ("D5", "D8"):
        res = optimize_technique(TEST_SYSTEMS[name], "dauwe")
        for policy in ("free", "paid", "skip"):
            legacy.append(
                legacy_row("recheckpoint", name, policy, res,
                           recheckpoint=policy)
            )
    for label, flag in (("N_L (corrected)", False), ("N_L + 1 (literal)", True)):
        res = optimize_technique(
            TEST_SYSTEMS["B"], "dauwe",
            model_options={"final_interval_plus_one": flag},
        )
        legacy.append(legacy_row("eqn4-top", "B", label, res))
    assert new.rows == legacy


def test_weibull_rows_match_legacy_path():
    systems = ("D2",)
    new = weibull.run(trials=TRIALS, seed=SEED, systems=systems)
    legacy = []
    for name in systems:
        spec = TEST_SYSTEMS[name]
        res = optimize_technique(spec, "dauwe")
        for shape in (1.0, 0.8, 0.6):
            kwargs = {}
            if shape != 1.0:
                scale = spec.mtbf / gamma(1.0 + 1.0 / shape)

                def factory(rng, _shape=shape, _scale=scale):
                    return WeibullFailureSource(
                        _shape, _scale, spec.severity_probabilities, rng
                    )

                kwargs["source_factory"] = factory
            stats = simulate_many(
                spec, res.plan, trials=TRIALS, seed=SEED, **kwargs
            )
            legacy.append(
                {
                    "system": name,
                    "weibull shape": shape,
                    "sim efficiency": stats.mean_efficiency,
                    "std": stats.std_efficiency,
                    "predicted (exp model)": res.predicted_efficiency,
                    "error": res.predicted_efficiency - stats.mean_efficiency,
                    "plan": res.plan.describe(),
                }
            )
    assert new.rows == legacy


def test_interval_study_rows_match_legacy_path():
    systems = ("M", "D1")
    new = interval_study.run(trials=TRIALS, seed=SEED, systems=systems)
    legacy = []
    for name in systems:
        spec = TEST_SYSTEMS[name]
        pat = optimize_technique(spec, "dauwe")
        pat_stats = simulate_many(spec, pat.plan, trials=TRIALS, seed=SEED)
        legacy.append(
            {
                "system": spec.name,
                "mode": "pattern (dauwe)",
                "sim efficiency": pat_stats.mean_efficiency,
                "std": pat_stats.std_efficiency,
                "predicted": pat.predicted_efficiency,
                "schedule": pat.plan.describe(),
            }
        )
        itv = IntervalModel(spec).optimize()
        itv_stats = simulate_schedule_many(
            spec, itv.schedule, trials=TRIALS, seed=SEED
        )
        legacy.append(
            {
                "system": spec.name,
                "mode": "interval (di-style)",
                "sim efficiency": itv_stats.mean_efficiency,
                "std": itv_stats.std_efficiency,
                "predicted": itv.predicted_efficiency,
                "schedule": itv.schedule.describe(),
            }
        )
    assert new.rows == legacy


def test_pipeline_rows_identical_across_worker_counts():
    """Scenario fan-out must not change a single byte of any row."""
    serial = figure2.run(
        trials=TRIALS, seed=SEED, systems=("M", "D2"),
        techniques=("dauwe", "daly"),
    )
    fanned = figure2.run(
        trials=TRIALS, seed=SEED, systems=("M", "D2"),
        techniques=("dauwe", "daly"), workers=2,
    )
    assert serial.rows == fanned.rows
