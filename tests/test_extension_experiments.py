"""Smoke + shape tests for the extension experiments (ablations, weibull)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, ablations, weibull


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run(trials=8, seed=3)

    def test_registered(self):
        assert EXPERIMENTS["ablations"] is ablations.run

    def test_all_studies_present(self, result):
        studies = {r["study"] for r in result.rows}
        assert studies == {
            "model-terms",
            "restart-semantics",
            "recheckpoint",
            "eqn4-top",
        }

    def test_dropping_terms_inflates_error(self, result):
        rows = [r for r in result.rows if r["study"] == "model-terms" and r["system"] == "D8"]
        full = next(r for r in rows if r["variant"] == "full model")
        ablated = next(r for r in rows if "no failed" in r["variant"])
        assert ablated["error"] > full["error"] + 0.05

    def test_escalation_never_helps(self, result):
        for system in ("D5", "D8"):
            rows = {
                r["variant"]: r["sim efficiency"]
                for r in result.rows
                if r["study"] == "restart-semantics" and r["system"] == system
            }
            assert rows["escalate"] <= rows["retry"] + 0.02

    def test_free_policy_at_least_as_efficient(self, result):
        for system in ("D5", "D8"):
            rows = {
                r["variant"]: r["sim efficiency"]
                for r in result.rows
                if r["study"] == "recheckpoint" and r["system"] == system
            }
            assert rows["paid"] <= rows["free"] + 0.02
            assert rows["skip"] <= rows["free"] + 0.02

    def test_literal_eqn4_denser_pattern(self, result):
        rows = {r["variant"]: r for r in result.rows if r["study"] == "eqn4-top"}
        literal = rows["N_L + 1 (literal)"]
        corrected = rows["N_L (corrected)"]
        # literal reading predicts lower efficiency for its own plan
        assert literal["predicted"] < corrected["predicted"]

    def test_render(self, result):
        text = result.render()
        assert "model-terms" in text and "eqn4-top" in text


class TestWeibull:
    @pytest.fixture(scope="class")
    def result(self):
        return weibull.run(trials=20, seed=1, systems=("D5", "D8"))

    def test_registered(self):
        assert EXPERIMENTS["weibull"] is weibull.run

    def test_grid_complete(self, result):
        assert len(result.rows) == 2 * len(weibull.SHAPES)
        assert {r["weibull shape"] for r in result.rows} == set(weibull.SHAPES)

    def test_burstiness_helps_at_fixed_mtbf(self, result):
        for system in ("D5", "D8"):
            effs = {
                r["weibull shape"]: r["sim efficiency"]
                for r in result.rows
                if r["system"] == system
            }
            assert effs[0.6] > effs[1.0] - 0.02

    def test_exponential_baseline_matches_model(self, result):
        for r in result.rows:
            if r["weibull shape"] == 1.0 and r["system"] == "D5":
                assert abs(r["error"]) < 0.05

    def test_plan_constant_across_shapes(self, result):
        for system in ("D5", "D8"):
            plans = {r["plan"] for r in result.rows if r["system"] == system}
            assert len(plans) == 1  # the model only sees rates, not shape
