"""Tests for the paper's hierarchical execution-time model (Section III)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckpointPlan, DauweModel
from repro.core.truncated import expected_failures, truncated_mean
from repro.systems import SystemSpec


@pytest.fixture
def quiet2():
    """Two levels, failures so rare the model must reduce to T_B + ckpts."""
    return SystemSpec(
        name="quiet",
        mtbf=1e9,
        level_probabilities=(0.5, 0.5),
        checkpoint_times=(1.0, 4.0),
        baseline_time=120.0,
    )


class TestLimits:
    def test_no_failures_reduces_to_checkpoint_overhead(self, quiet2):
        model = DauweModel(quiet2)
        plan = CheckpointPlan((1, 2), tau0=10.0, counts=(2,))
        # 120/10 = 12 positions; pattern of 3 -> 8 level-1, 4 level-2 ckpts.
        expected = 120.0 + 8 * 1.0 + 4 * 4.0
        assert model.predict_time(plan) == pytest.approx(expected, rel=1e-6)

    def test_single_level_no_failures(self, quiet2):
        model = DauweModel(quiet2)
        plan = CheckpointPlan.single_level(2, 12.0)
        assert model.predict_time(plan) == pytest.approx(120.0 + 10 * 4.0, rel=1e-6)

    def test_time_exceeds_baseline(self, tiny2):
        model = DauweModel(tiny2)
        plan = CheckpointPlan((1, 2), tau0=10.0, counts=(3,))
        assert model.predict_time(plan) > tiny2.baseline_time

    def test_hopeless_plan_is_infinite(self):
        spec = SystemSpec(
            name="doom",
            mtbf=1.0,
            level_probabilities=(0.5, 0.5),
            checkpoint_times=(1.0, 2000.0),
            baseline_time=100.0,
        )
        plan = CheckpointPlan((1, 2), tau0=10.0, counts=(1,))
        assert math.isinf(DauweModel(spec).predict_time(plan))


class TestEquationFidelity:
    def test_single_level_recursion_by_hand(self, tiny2):
        """Replicate Eqns. 3-14 by hand for a single-level plan."""
        model = DauweModel(tiny2, allow_level_skipping=False)
        tau0 = 12.0
        plan = CheckpointPlan.single_level(2, tau0)
        lam = tiny2.failure_rate  # single used level absorbs both severities
        delta = R = 5.0
        T_B = tiny2.baseline_time
        n_top = T_B / tau0  # Eqn. 3
        gamma = expected_failures(tau0, lam)  # Eqn. 5
        T_Wtau = gamma * truncated_mean(tau0, lam) * n_top  # Eqn. 6 (top: m=N_L)
        T_d = n_top * delta  # Eqn. 7
        alpha = n_top * expected_failures(delta, lam)  # Eqn. 8
        T_df = alpha * truncated_mean(delta, lam)  # Eqn. 9
        T_Wd = alpha * (tau0 + gamma * truncated_mean(tau0, lam)) * 1.0  # Eqn. 10
        beta = alpha + gamma * (alpha + n_top)  # Eqn. 11 (S=1)
        zeta = beta * expected_failures(R, lam)  # Eqn. 12
        T_r = beta * R  # Eqn. 13
        T_rf = zeta * truncated_mean(R, lam)  # Eqn. 14
        expected = tau0 * n_top + T_d + T_df + T_r + T_rf + T_Wtau + T_Wd
        assert model.predict_time(plan) == pytest.approx(expected, rel=1e-9)

    def test_final_interval_plus_one_ablation_adds_one_interval(self, tiny2):
        plan = CheckpointPlan.single_level(2, 12.0)
        base = DauweModel(tiny2, final_interval_plus_one=False).predict_time(plan)
        plus = DauweModel(tiny2, final_interval_plus_one=True).predict_time(plan)
        assert plus > base
        # the literal printed form prices one extra top interval
        assert plus - base == pytest.approx(12.0, rel=0.35)


class TestBreakdown:
    def test_parts_sum_to_total(self, tiny3):
        model = DauweModel(tiny3)
        for plan in (
            CheckpointPlan((1, 2, 3), 5.0, (2, 3)),
            CheckpointPlan((1, 2), 4.0, (3,)),
            CheckpointPlan((3,), 20.0),
        ):
            bd = model.predict_breakdown(plan)
            parts = sum(v for k, v in bd.items() if k != "total")
            assert parts == pytest.approx(bd["total"], rel=1e-9)

    def test_work_part_is_baseline_without_plus_one(self, tiny3):
        model = DauweModel(tiny3, final_interval_plus_one=False)
        bd = model.predict_breakdown(CheckpointPlan((1, 2, 3), 5.0, (1, 1)))
        assert bd["work"] == pytest.approx(tiny3.baseline_time, rel=1e-9)

    def test_unprotected_part_for_prefix_plans(self, tiny3):
        model = DauweModel(tiny3)
        bd = model.predict_breakdown(CheckpointPlan((1, 2), 5.0, (2,)))
        assert bd["unprotected"] > 0.0

    def test_no_unprotected_for_full_plans(self, tiny3):
        model = DauweModel(tiny3)
        bd = model.predict_breakdown(CheckpointPlan((1, 2, 3), 5.0, (1, 1)))
        assert bd["unprotected"] == 0.0


class TestAblationFlags:
    def test_ignoring_checkpoint_failures_is_optimistic(self, tiny3):
        plan = CheckpointPlan((1, 2, 3), 5.0, (2, 2))
        full = DauweModel(tiny3).predict_time(plan)
        noc = DauweModel(tiny3, include_checkpoint_failures=False).predict_time(plan)
        assert noc < full

    def test_ignoring_restart_failures_is_optimistic(self, tiny3):
        plan = CheckpointPlan((1, 2, 3), 5.0, (2, 2))
        full = DauweModel(tiny3).predict_time(plan)
        nor = DauweModel(tiny3, include_restart_failures=False).predict_time(plan)
        assert nor < full

    def test_flags_matter_more_on_harder_systems(self, tiny3, system_d9):
        """The paper's core argument: failed C/R dominates at extreme scale."""

        def gap(spec, plan):
            full = DauweModel(spec).predict_time(plan)
            none = DauweModel(
                spec,
                include_checkpoint_failures=False,
                include_restart_failures=False,
            ).predict_time(plan)
            return (full - none) / full

        easy_plan = CheckpointPlan((1, 2), 5.0, (3,))
        assert gap(system_d9, easy_plan) > gap(tiny3, easy_plan)


class TestLevelSubsets:
    def test_prefix_subsets_offered(self, tiny3):
        model = DauweModel(tiny3)
        assert model.candidate_level_subsets() == [(1, 2, 3), (1, 2), (1,)]

    def test_no_skipping_offers_full_only(self, tiny3):
        model = DauweModel(tiny3, allow_level_skipping=False)
        assert model.candidate_level_subsets() == [(1, 2, 3)]

    def test_short_app_skips_top_level(self):
        # T_B far below the top-severity MTBF and expensive delta_L:
        # skipping level 2 must win (Section IV-F).
        spec = SystemSpec(
            name="short",
            mtbf=10.0,
            level_probabilities=(0.99, 0.01),
            checkpoint_times=(0.1, 30.0),
            baseline_time=30.0,
        )
        res = DauweModel(spec).optimize()
        assert res.plan.levels == (1,)

    def test_long_app_keeps_top_level(self, system_b):
        res = DauweModel(system_b).optimize()
        assert res.plan.top_level == 4


class TestVectorization:
    def test_batch_matches_scalar(self, tiny3):
        model = DauweModel(tiny3)
        taus = np.geomspace(0.5, 100.0, 17)
        batch = model.predict_time_batch((1, 2, 3), (2, 1), taus)
        for i, t in enumerate(taus):
            scalar = model.predict_time(CheckpointPlan((1, 2, 3), float(t), (2, 1)))
            if math.isinf(scalar):
                assert math.isinf(batch[i])
            else:
                assert batch[i] == pytest.approx(scalar, rel=1e-12)

    def test_wrong_counts_length_raises(self, tiny3):
        model = DauweModel(tiny3)
        with pytest.raises(ValueError, match="counts"):
            model.predict_time_batch((1, 2, 3), (1,), np.array([1.0]))


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(scale=st.floats(min_value=1.1, max_value=5.0))
    def test_higher_failure_rate_never_faster(self, scale):
        base = SystemSpec(
            name="m0",
            mtbf=200.0,
            level_probabilities=(0.7, 0.3),
            checkpoint_times=(0.5, 3.0),
            baseline_time=300.0,
        )
        worse = base.with_mtbf(base.mtbf / scale)
        plan = CheckpointPlan((1, 2), 8.0, (3,))
        assert DauweModel(worse).predict_time(plan) >= DauweModel(base).predict_time(
            plan
        )

    def test_efficiency_metric_inverse_of_time(self, tiny2):
        model = DauweModel(tiny2)
        plan = CheckpointPlan((1, 2), 8.0, (3,))
        t = model.predict_time(plan)
        assert model.predict_efficiency(plan) == pytest.approx(
            tiny2.baseline_time / t
        )
