"""Statistical tests: the simulator agrees with the analytic models.

These are the package's Figure-2-style validation in miniature: on
moderately difficult systems, the Dauwe model's expected execution time
must sit within the Monte-Carlo confidence band of the simulator, and
known comparative facts (Daly accuracy, multilevel superiority) must
reproduce.  Trial counts are kept small enough for CI; tolerances are
set accordingly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.models import DalyModel
from repro.simulator import SimulationStats, simulate_many, simulate_trial
from repro.systems import get_system


class TestAgainstDauweModel:
    @pytest.mark.parametrize("name", ["B", "D1", "D4"])
    def test_prediction_within_band(self, name):
        spec = get_system(name)
        model = DauweModel(spec)
        res = model.optimize()
        stats = simulate_many(spec, res.plan, trials=60, seed=11)
        assert res.predicted_efficiency == pytest.approx(
            stats.mean_efficiency, abs=0.03
        )

    def test_breakdown_matches_model_scale(self):
        # Per-category times from simulation should be the same order as
        # the model's term totals on a mid-difficulty system.
        spec = get_system("D4")
        model = DauweModel(spec)
        res = model.optimize()
        stats = simulate_many(spec, res.plan, trials=60, seed=13)
        bd_model = model.predict_breakdown(res.plan)
        bd_sim = stats.mean_breakdown
        assert bd_sim.checkpoint == pytest.approx(bd_model["checkpoint"], rel=0.25)
        assert bd_sim.restart == pytest.approx(bd_model["restart"], rel=0.35)


class TestAgainstDalyModel:
    @pytest.mark.parametrize("name", ["D2", "D4"])
    def test_daly_prediction_accurate(self, name):
        # The paper: "Daly's equations ... are highly accurate at
        # predicting application efficiency."
        spec = get_system(name)
        res = DalyModel(spec).optimize()
        stats = simulate_many(spec, res.plan, trials=60, seed=17)
        assert res.predicted_efficiency == pytest.approx(
            stats.mean_efficiency, abs=0.03
        )

    def test_multilevel_beats_daly_on_hard_system(self):
        spec = get_system("D7")
        daly = DalyModel(spec).optimize()
        dauwe = DauweModel(spec).optimize()
        s_daly = simulate_many(spec, daly.plan, trials=50, seed=19)
        s_dauwe = simulate_many(spec, dauwe.plan, trials=50, seed=19)
        assert s_dauwe.mean_efficiency > 1.5 * s_daly.mean_efficiency


class TestSimulateMany:
    def test_reproducible(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        a = simulate_many(spec, plan, trials=10, seed=3)
        b = simulate_many(spec, plan, trials=10, seed=3)
        assert np.array_equal(a.efficiencies, b.efficiencies)

    def test_different_seeds_differ(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        a = simulate_many(spec, plan, trials=10, seed=3)
        b = simulate_many(spec, plan, trials=10, seed=4)
        assert not np.array_equal(a.efficiencies, b.efficiencies)

    def test_trial_count_respected(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        stats = simulate_many(spec, plan, trials=7, seed=0)
        assert stats.trials == 7
        assert stats.efficiencies.shape == (7,)

    def test_zero_trials_rejected(self):
        spec = get_system("D1")
        with pytest.raises(ValueError):
            simulate_many(spec, CheckpointPlan((1, 2), 5.0, (2,)), trials=0)

    def test_return_trials(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        stats, trials = simulate_many(
            spec, plan, trials=5, seed=0, return_trials=True
        )
        assert len(trials) == 5
        assert stats.mean_efficiency == pytest.approx(
            np.mean([t.efficiency for t in trials])
        )

    def test_confidence_interval_contains_mean(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        stats = simulate_many(spec, plan, trials=20, seed=5)
        lo, hi = stats.confidence_interval()
        assert lo <= stats.mean_efficiency <= hi

    def test_aggregate_requires_results(self):
        with pytest.raises(ValueError):
            SimulationStats.from_trials([])


class TestCapBehaviour:
    def test_capped_trials_report_utilization(self):
        spec = get_system("D9").with_mtbf(0.5)  # hopeless
        plan = CheckpointPlan((1, 2), 1.0, (3,))
        r = simulate_trial(spec, plan, rng=1, max_time=500.0)
        assert not r.completed
        assert r.total_time >= 500.0
        assert 0.0 <= r.efficiency < 0.5

    def test_invariants_hold_when_capped(self):
        spec = get_system("D9").with_mtbf(0.5)
        plan = CheckpointPlan((1, 2), 1.0, (3,))
        r = simulate_trial(spec, plan, rng=2, max_time=300.0)
        assert r.times.total() == pytest.approx(r.total_time, rel=1e-9)


class TestSeverityCounts:
    def test_failure_severity_distribution(self):
        spec = get_system("D4")  # (0.833, 0.167)
        plan = CheckpointPlan((1, 2), 2.0, (3,))
        _, trials = simulate_many(spec, plan, trials=40, seed=21, return_trials=True)
        sev = np.sum([t.failures_by_severity for t in trials], axis=0)
        frac = sev[0] / sev.sum()
        assert frac == pytest.approx(0.833, abs=0.03)

    def test_failure_rate_matches_mtbf(self):
        spec = get_system("D2")
        plan = CheckpointPlan((1, 2), 3.0, (2,))
        _, trials = simulate_many(spec, plan, trials=40, seed=23, return_trials=True)
        total_time = sum(t.total_time for t in trials)
        total_failures = sum(t.total_failures for t in trials)
        assert total_time / total_failures == pytest.approx(spec.mtbf, rel=0.1)
