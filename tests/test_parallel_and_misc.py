"""Cross-cutting tests: parallel trial dispatch, package surface, misc."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import CheckpointPlan
from repro.simulator import simulate_many
from repro.systems import get_system


class TestParallelDispatch:
    def test_workers_match_serial(self):
        # Seed spawning is chunk-independent, so a 2-worker run must give
        # byte-identical efficiencies to the serial run.
        spec = get_system("D1").with_baseline_time(120.0)
        plan = CheckpointPlan((1, 2), 6.0, (2,))
        serial = simulate_many(spec, plan, trials=8, seed=13, workers=1)
        parallel = simulate_many(spec, plan, trials=8, seed=13, workers=2)
        assert np.array_equal(serial.efficiencies, parallel.efficiencies)

    def test_small_trial_counts_stay_serial(self):
        spec = get_system("D1").with_baseline_time(60.0)
        plan = CheckpointPlan((1, 2), 6.0, (2,))
        stats = simulate_many(spec, plan, trials=2, seed=1, workers=8)
        assert stats.trials == 2

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_chunked_trials_equal_serial(self, engine):
        # Chunks ship only seed lists (the shared context travels once per
        # worker via the pool initializer); the reassembled TrialResult
        # list must equal the serial run's, trial for trial, on either
        # engine.
        spec = get_system("D1").with_baseline_time(120.0)
        plan = CheckpointPlan((1, 2), 6.0, (2,))
        _, serial = simulate_many(
            spec, plan, trials=9, seed=13, workers=1,
            engine=engine, return_trials=True,
        )
        _, chunked = simulate_many(
            spec, plan, trials=9, seed=13, workers=3,
            engine=engine, return_trials=True,
        )
        assert chunked == serial


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_lazy_simulator_exports(self):
        assert callable(repro.simulate_trial)
        assert callable(repro.simulate_many)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_top_level_all_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import repro.des
        import repro.experiments
        import repro.failures
        import repro.interval
        import repro.models
        import repro.simulator
        import repro.storage
        import repro.systems

    def test_public_api_docstrings(self):
        # Every public module and top-level callable documents itself.
        import repro.core.dauwe
        import repro.core.optimizer
        import repro.simulator.engine

        for obj in (
            repro.core.dauwe,
            repro.core.dauwe.DauweModel,
            repro.core.optimizer.sweep_plans,
            repro.simulator.engine.simulate_trial,
            repro.DauweModel.predict_time,
            repro.SystemSpec,
            repro.CheckpointPlan,
        ):
            assert obj.__doc__ and obj.__doc__.strip()


class TestSeedDiscipline:
    def test_trial_seeds_stable(self):
        from repro.simulator import trial_seeds

        a = [s.spawn_key for s in trial_seeds(5, 4)]
        b = [s.spawn_key for s in trial_seeds(5, 4)]
        assert a == b

    def test_trial_seeds_distinct(self):
        from repro.simulator import trial_seeds

        keys = {s.spawn_key for s in trial_seeds(5, 16)}
        assert len(keys) == 16
