"""Tests for the ``python -m repro`` command-line front-end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure2"])
        assert args.experiment == "figure2"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.trials is None
        assert args.seed == 0
        assert args.quick is False


class TestMain:
    def test_table1_prints_systems(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "D9" in out and "BlueGene" in out

    def test_markdown_flag(self, capsys):
        main(["table1", "--markdown"])
        out = capsys.readouterr().out
        assert "| system" in out

    def test_small_run_with_report(self, tmp_path, capsys):
        report = tmp_path / "EXP.md"
        assert main(["figure2", "--trials", "2", "--report", str(report)]) == 0
        assert report.exists()
        assert "figure2" in report.read_text()

    def test_quick_flag_overrides_trials(self, capsys):
        # --quick uses the fixed smoke count; just verify it runs end to
        # end on the cheapest figure path.
        assert main(["table1", "--quick"]) == 0
