"""Tests for the ``python -m repro`` command-line front-end."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure2"])
        assert args.experiment == "figure2"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.trials is None
        # None means "0, or a custom study's own seed" — resolved in main().
        assert args.seed is None
        assert args.quick is False
        assert args.techniques is None
        assert args.study is None


class TestMain:
    def test_table1_prints_systems(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "D9" in out and "BlueGene" in out

    def test_markdown_flag(self, capsys):
        main(["table1", "--markdown"])
        out = capsys.readouterr().out
        assert "| system" in out

    def test_small_run_with_report(self, tmp_path, capsys):
        report = tmp_path / "EXP.md"
        assert main(["figure2", "--trials", "2", "--report", str(report)]) == 0
        assert report.exists()
        assert "figure2" in report.read_text()

    def test_quick_flag_overrides_trials(self, capsys):
        # --quick uses the fixed smoke count; just verify it runs end to
        # end on the cheapest figure path.
        assert main(["table1", "--quick"]) == 0


class TestTechniquesFlag:
    def test_rejects_unknown_technique(self):
        with pytest.raises(SystemExit):
            main(["figure2", "--techniques", "dauwe,chandy"])

    def test_warns_when_not_applicable(self, capsys):
        assert main(["table1", "--techniques", "dauwe"]) == 0
        assert "--techniques is ignored by table1" in capsys.readouterr().err

    def test_young_baseline_reachable_figure2_style(self, capsys):
        # Satellite: the young baseline is registered but not in any
        # figure's default set; --techniques is the way in.  A real
        # figure2-style run: both techniques optimize and simulate on a
        # Table-I system and land in the same table.
        assert main(
            ["figure2", "--trials", "2", "--techniques", "daly,young"]
        ) == 0
        out = capsys.readouterr().out
        young_rows = [l for l in out.splitlines() if " young " in f" {l} "]
        assert len(young_rows) == 11  # one per Table-I system
        assert any(" daly " in f" {l} " for l in out.splitlines())


class TestCustomStudy:
    def _write_study(self, tmp_path, **overrides):
        system = {
            "name": "TOY",
            "mtbf": 40.0,
            "level_probabilities": [0.8, 0.2],
            "checkpoint_times": [0.5, 2.0],
            "baseline_time": 60.0,
        }
        study = {
            "study": "toy-study",
            "title": "Toy custom study",
            "seed": 12,
            "trials": 3,
            "systems": [system, "M"],
            "techniques": ["dauwe", "daly"],
            "failure": {"kind": "weibull", "shape": 0.7},
            "seed_policy": "fixed",
        }
        study.update(overrides)
        path = tmp_path / "study.json"
        path.write_text(json.dumps(study))
        return path

    def test_requires_study_flag(self):
        with pytest.raises(SystemExit):
            main(["custom"])

    def test_study_flag_only_for_custom(self, tmp_path):
        path = self._write_study(tmp_path)
        with pytest.raises(SystemExit):
            main(["figure2", "--study", str(path)])

    def test_bad_study_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"study": "x", "systems": ["M"]}')  # no trials
        assert main(["custom", "--study", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_end_to_end_with_manifest(self, tmp_path, capsys):
        from repro.scenarios import StudySpec

        path = self._write_study(tmp_path)
        assert main(["custom", "--study", str(path)]) == 0
        captured = capsys.readouterr()
        # the result table: cross product of 2 systems x 2 techniques
        assert "Toy custom study" in captured.out
        for token in ("TOY", "M", "dauwe", "daly"):
            assert token in captured.out

        manifest_path = tmp_path / "study.manifest.json"
        assert f"manifest written to {manifest_path}" in captured.err
        data = json.loads(manifest_path.read_text())
        assert data["manifest_version"] == 1
        (record,) = data["studies"]
        # hash matches an independent load of the study file
        assert record["study_hash"] == StudySpec.from_file(path).study_hash()
        # the study's own seed applied (no --seed given), fixed policy
        assert record["seed"] == 12
        assert [s["seed"] for s in record["scenarios"]] == [12, 12, 12, 12]
        assert [s["trials"] for s in record["scenarios"]] == [3, 3, 3, 3]
        assert record["study"] == "toy-study"
        # 4 distinct (system, technique) sweeps: all cache misses, stored
        assert record["cache"]["misses"] == 4
        assert record["cache"]["stores"] == 4
        assert record["cache"]["hits"] == 0
        assert set(record["stages"]) >= {"optimize", "simulate"}

    def test_overrides_seed_trials_techniques(self, tmp_path, capsys):
        path = self._write_study(tmp_path, seed_policy="pair")
        manifest_path = tmp_path / "m.json"
        assert main(
            ["custom", "--study", str(path), "--seed", "5", "--trials", "2",
             "--techniques", "daly", "--manifest", str(manifest_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "dauwe" not in out
        from repro.experiments.runner import pair_seed

        (record,) = json.loads(manifest_path.read_text())["studies"]
        assert record["seed"] == 5
        assert [s["technique"] for s in record["scenarios"]] == ["daly", "daly"]
        assert [s["trials"] for s in record["scenarios"]] == [2, 2]
        assert [s["seed"] for s in record["scenarios"]] == [
            pair_seed(5, "TOY", "daly"), pair_seed(5, "M", "daly"),
        ]


class TestManifestNextToReport:
    def test_report_run_emits_manifest(self, tmp_path, capsys):
        report = tmp_path / "EXP.md"
        assert main(
            ["figure2", "--trials", "2", "--report", str(report)]
        ) == 0
        manifest_path = tmp_path / "EXP.manifest.json"
        assert manifest_path.exists()
        data = json.loads(manifest_path.read_text())
        assert data["status"] == "complete"
        (record,) = data["studies"]
        assert record["study"] == "figure2"
        assert record["seed"] == 0
        assert len(record["scenarios"]) == 55
        assert {"repro", "numpy", "python"} <= set(data["versions"])


class TestResumeFlagsAndExitCodes:
    """The resilience surface of the CLI: journals, resume, exit codes."""

    def _study_file(self, tmp_path):
        study = {
            "study": "toy",
            "seed": 12,
            "trials": 2,
            "systems": ["M"],
            "techniques": ["dauwe", "daly"],
            "seed_policy": "fixed",
        }
        path = tmp_path / "study.json"
        path.write_text(json.dumps(study))
        return path

    def test_resume_and_no_resume_conflict_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["figure2", "--resume", "j.jsonl", "--no-resume"])
        assert info.value.code == 2

    def test_negative_max_retries_is_usage_error(self):
        with pytest.raises(SystemExit) as info:
            main(["figure2", "--max-retries", "-1"])
        assert info.value.code == 2

    def test_report_run_journals_and_resumes(self, tmp_path, capsys):
        path = self._study_file(tmp_path)
        report = tmp_path / "out.md"
        args = ["custom", "--study", str(path), "--report", str(report)]
        assert main(args) == 0
        journal = tmp_path / "out.journal.jsonl"
        assert journal.exists()
        assert journal.read_text().count('"kind":"scenario"') == 2
        capsys.readouterr()

        assert main(args) == 0
        assert "resumed 2 scenario(s) from journal" in capsys.readouterr().err
        (record,) = json.loads(
            (tmp_path / "out.manifest.json").read_text()
        )["studies"]
        assert record["resilience"]["resumed"] == 2
        assert record["resilience"]["executed"] == 0

    def test_explicit_resume_mismatch_exits_4(self, tmp_path, capsys):
        path = self._study_file(tmp_path)
        journal = tmp_path / "j.jsonl"
        assert main(
            ["custom", "--study", str(path), "--resume", str(journal)]
        ) == 0
        capsys.readouterr()
        # same journal, different seed -> different study_hash
        assert main(
            ["custom", "--study", str(path), "--seed", "5",
             "--resume", str(journal)]
        ) == 4
        assert "study definition changed" in capsys.readouterr().err

    def test_auto_detected_mismatch_warns_and_runs_fresh(self, tmp_path, capsys):
        path = self._study_file(tmp_path)
        report = tmp_path / "out.md"
        base = ["custom", "--study", str(path), "--report", str(report)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "5"]) == 0
        err = capsys.readouterr().err
        assert "different configuration" in err
        assert "starting this study fresh" in err

    def test_no_resume_recomputes(self, tmp_path, capsys):
        path = self._study_file(tmp_path)
        report = tmp_path / "out.md"
        base = ["custom", "--study", str(path), "--report", str(report)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--no-resume"]) == 0
        assert "resumed" not in capsys.readouterr().err

    def test_bad_study_file_still_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"study": "x", "systems": ["M"]}')
        assert main(["custom", "--study", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestJournalCommand:
    """The `repro journal` audit subcommand and its exit codes."""

    def _journal_from_run(self, tmp_path):
        study = {
            "study": "toy",
            "seed": 12,
            "trials": 2,
            "systems": ["M"],
            "techniques": ["dauwe", "daly"],
            "seed_policy": "fixed",
        }
        path = tmp_path / "study.json"
        path.write_text(json.dumps(study))
        report = tmp_path / "out.md"
        assert main(
            ["custom", "--study", str(path), "--report", str(report)]
        ) == 0
        return tmp_path / "out.journal.jsonl"

    def test_clean_journal_exits_zero(self, tmp_path, capsys):
        journal = self._journal_from_run(tmp_path)
        capsys.readouterr()
        assert main(["journal", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "clean" in out

    def test_corrupt_journal_exits_4(self, tmp_path, capsys):
        journal = self._journal_from_run(tmp_path)
        lines = journal.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace('"index"', '"indxe"', 1)
        journal.write_text("".join(lines))
        capsys.readouterr()
        assert main(["journal", "--journal", str(journal)]) == 4
        assert "CORRUPT" in capsys.readouterr().out

    def test_torn_tail_still_exits_zero(self, tmp_path, capsys):
        journal = self._journal_from_run(tmp_path)
        journal.write_text(journal.read_text()[:-30])
        capsys.readouterr()
        assert main(["journal", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "torn tail" in out and "usable" in out

    def test_missing_journal_exits_1(self, tmp_path, capsys):
        assert main(
            ["journal", "--journal", str(tmp_path / "nope.jsonl")]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_journal_requires_the_flag(self):
        with pytest.raises(SystemExit) as info:
            main(["journal"])
        assert info.value.code == 2

    def test_journal_flag_rejected_elsewhere(self):
        with pytest.raises(SystemExit) as info:
            main(["figure2", "--journal", "j.jsonl"])
        assert info.value.code == 2

    def test_validate_out_rejected_outside_validate(self):
        with pytest.raises(SystemExit) as info:
            main(["figure2", "--validate-out", "v.json"])
        assert info.value.code == 2

    def test_validate_out_writes_report_artifact(self, tmp_path, capsys):
        out = tmp_path / "v.json"
        code = main(
            [
                "validate", "--quick", "--techniques", "daly",
                "--trials", "2", "--validate-out", str(out),
            ]
        )
        capsys.readouterr()
        assert code == 0
        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert data["catalog"] == "standard"
        assert len(data["pairs"]) > 0


class TestTaskTimeoutFlag:
    def test_negative_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure2", "--task-timeout", "-1"])
        assert "--task-timeout must be positive" in capsys.readouterr().err

    def test_zero_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["custom", "--study", "x.json", "--task-timeout", "0"])
        assert "--task-timeout must be positive" in capsys.readouterr().err

    def test_watchdogged_run_matches_plain(self, tmp_path, capsys):
        """--task-timeout threads through to execute_study and, when no
        task hangs, changes nothing about the results."""
        report_a = tmp_path / "a.md"
        report_b = tmp_path / "b.md"
        base = ["figure2", "--trials", "2", "--seed", "1",
                "--techniques", "dauwe", "--no-cache"]
        assert main(base + ["--report", str(report_a)]) == 0
        assert main(
            base + ["--report", str(report_b), "--task-timeout", "600"]
        ) == 0
        capsys.readouterr()
        strip = lambda text: "\n".join(
            line for line in text.splitlines()
            if not line.startswith("*Generated ")
        )
        assert strip(report_a.read_text()) == strip(report_b.read_text())


class TestServeFlags:
    def test_serve_flag_validation(self, capsys):
        assert main(["serve", "--service-workers", "0"]) == 1
        assert "--service-workers must be >= 1" in capsys.readouterr().err
        assert main(["serve", "--default-deadline", "-5"]) == 1
        assert "--default-deadline must be positive" in capsys.readouterr().err

    def test_study_flag_still_custom_only(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--study", "x.json"])
        assert "--study only applies" in capsys.readouterr().err
