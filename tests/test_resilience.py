"""Tests for fault-tolerant execution: retries, run journal, resume.

The chaos-injection tests that exercise the *real* process-pool path
(worker kills, pool rebuilds, driver SIGKILL) live in ``test_chaos.py``;
this module covers the resilience building blocks and the journal/resume
contract in-process.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    JournalMismatchError,
    OptimizationCache,
    RetryPolicy,
    RunJournal,
    ScenarioTask,
    StudyExecutionError,
    StudyInterrupted,
    atomic_write_text,
    run_scenarios,
    set_active_cache,
)
from repro.exec import chaos
from repro.exec.resilience import JOURNAL_FORMAT
from repro.experiments.records import TechniqueOutcome
from repro.scenarios import ScenarioSpec, StudySpec, execute_study
from repro.simulator.run import set_default_engine
from repro.systems import TEST_SYSTEMS


@pytest.fixture(autouse=True)
def _no_active_cache():
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


def _outcome(i: int = 0) -> TechniqueOutcome:
    """An outcome with repr-unfriendly floats (round-trip stress)."""
    return TechniqueOutcome(
        system=f"S{i}",
        technique="dauwe",
        plan="L1 x3 / L2",
        predicted_efficiency=0.1 + 0.2 + i,
        simulated_efficiency=1.0 / 3.0,
        simulated_std=2.0**-40,
        trials=7 + i,
        predicted_time=123.456789e-7,
        mean_time=9.999999999999998,
        completed_fraction=1.0,
        breakdown_fractions={"checkpoint": 0.125, "rework": 1e-17},
        mean_failures=1.5,
    )


def _study(seed: int = 3, trials: int = 4, systems=("M",)) -> StudySpec:
    scenarios = tuple(
        ScenarioSpec(system=TEST_SYSTEMS[name], technique=t, trials=trials)
        for name in systems
        for t in ("dauwe", "daly")
    )
    return StudySpec(study_id="mini", seed=seed, scenarios=scenarios)


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        assert atomic_write_text(target, "one") == target
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        # no temp droppings left behind
        assert list(tmp_path.iterdir()) == [target]


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.delay(1, key="x") == b.delay(1, key="x")
        assert a.delay(2, key="x") == b.delay(2, key="x")
        # seed, key and attempt all perturb the jitter stream
        assert a.delay(1, key="x") != RetryPolicy(seed=8).delay(1, key="x")
        assert a.delay(1, key="x") != a.delay(1, key="y")
        assert a.delay(1, key="x") != a.delay(2, key="x")

    def test_exponential_envelope_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        for attempt in (1, 2, 3):
            d = policy.delay(attempt)
            assert 0.1 * 2 ** (attempt - 1) * 0.5 <= d or d == 1.0
            assert d <= 1.0
        assert policy.delay(30) == 1.0  # capped, no overflow

    def test_zero_base_is_zero(self):
        assert RetryPolicy(base_delay=0.0).delay(5, key="k") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            RetryPolicy(max_pool_rebuilds=-1)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-0.1)


class TestTechniqueOutcomeRoundTrip:
    def test_bitwise_through_json(self):
        out = _outcome(1)
        again = TechniqueOutcome.from_dict(json.loads(json.dumps(out.to_dict())))
        assert again == out  # dataclass eq: exact float bits

    def test_defaults_tolerated(self):
        data = _outcome().to_dict()
        data.pop("breakdown_fractions")
        data.pop("mean_failures")
        loaded = TechniqueOutcome.from_dict(data)
        assert loaded.breakdown_fractions == {}
        assert loaded.mean_failures == 0.0


class TestRunJournal:
    def _fill(self, path, study):
        with RunJournal(path) as jr:
            jr.begin_study(study)
            h = study.study_hash()
            for i, scenario in enumerate(study.scenarios):
                jr.record_scenario(h, i, scenario.label, 11 + i, _outcome(i))

    def test_round_trip(self, tmp_path):
        study = _study()
        path = tmp_path / "run.journal.jsonl"
        self._fill(path, study)

        again = RunJournal(path)
        assert again.recorded_hash("mini") == study.study_hash()
        restored = again.resume_state(study)
        assert set(restored) == {0, 1}
        assert restored[0] == _outcome(0)
        assert restored[1] == _outcome(1)

    def test_format_header_present(self, tmp_path):
        study = _study()
        path = tmp_path / "j.jsonl"
        self._fill(path, study)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "study"
        assert first["format"] == JOURNAL_FORMAT
        assert first["scenarios"] == 2

    def test_begin_study_is_idempotent(self, tmp_path):
        study = _study()
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as jr:
            jr.begin_study(study)
            jr.begin_study(study)
        with RunJournal(path) as jr:
            jr.begin_study(study)
        assert len(path.read_text().splitlines()) == 1

    def test_torn_tail_is_skipped_with_warning(self, tmp_path, capsys):
        study = _study()
        path = tmp_path / "j.jsonl"
        self._fill(path, study)
        chaos.truncate_file(path, keep_bytes=len(path.read_bytes()) - 20)

        restored = RunJournal(path).resume_state(study)
        assert set(restored) == {0}  # last line torn, first survives
        assert "skipped 1 corrupt" in capsys.readouterr().err

    def test_corrupt_line_is_skipped(self, tmp_path, capsys):
        study = _study()
        path = tmp_path / "j.jsonl"
        self._fill(path, study)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"index":0', '"index":1')  # bit flip
        path.write_text("\n".join(lines) + "\n")

        restored = RunJournal(path).resume_state(study)
        assert set(restored) == {1}
        assert "checksum-verified" in capsys.readouterr().err

    def test_unchecksummed_line_is_skipped(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "study", "study": "mini"}\nnot json at all\n')
        jr = RunJournal(path)
        assert jr.recorded_hash("mini") is None
        assert "skipped 2" in capsys.readouterr().err

    def test_mismatched_spec_raises(self, tmp_path):
        study = _study(seed=3)
        path = tmp_path / "j.jsonl"
        self._fill(path, study)
        with pytest.raises(JournalMismatchError, match="--no-resume"):
            RunJournal(path).resume_state(study.with_seed(4))

    def test_new_header_supersedes_old_section(self, tmp_path):
        old = _study(seed=3)
        path = tmp_path / "j.jsonl"
        self._fill(path, old)
        new = old.with_seed(4)
        with RunJournal(path) as jr:
            jr.begin_study(new)
        jr = RunJournal(path)
        assert jr.recorded_hash("mini") == new.study_hash()
        assert jr.resume_state(new) == {}  # nothing journaled for new spec
        with pytest.raises(JournalMismatchError):
            jr.resume_state(old)

    def test_out_of_range_index_ignored(self, tmp_path):
        study = _study()
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as jr:
            jr.begin_study(study)
            jr.record_scenario(study.study_hash(), 99, "ghost", 0, _outcome())
        assert RunJournal(path).resume_state(study) == {}

    def test_missing_file_is_empty(self, tmp_path):
        jr = RunJournal(tmp_path / "nope.jsonl")
        assert jr.recorded_hash("mini") is None
        assert jr.resume_state(_study()) == {}


def _flaky(marker: str, value):
    """Fails until its marker file exists (so exactly the first attempt)."""
    import os

    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("injected transient failure")
    return value


def _boom(value):
    raise ValueError(f"bad value {value}")


def _identity(value):
    return value


class TestRunScenariosRetry:
    _FAST = RetryPolicy(base_delay=0.0)

    def test_transient_failure_is_retried(self, tmp_path, capsys):
        marker = str(tmp_path / "fired")
        events: list = []
        tasks = [ScenarioTask(_flaky, args=(marker, 5), label="flaky")]
        assert run_scenarios(tasks, retry=self._FAST, events=events) == [5]
        (event,) = events
        assert event["event"] == "task_retry"
        assert event["task"] == "flaky"
        assert "retrying" in capsys.readouterr().err

    def test_transient_failure_is_retried_in_pool(self, tmp_path):
        marker = str(tmp_path / "fired")
        events: list = []
        tasks = [
            ScenarioTask(_identity, args=(1,), label="ok"),
            ScenarioTask(_flaky, args=(marker, 2), label="flaky"),
        ]
        assert run_scenarios(tasks, workers=2, retry=self._FAST, events=events) == [1, 2]
        assert [e["event"] for e in events] == ["task_retry"]

    def test_exhausted_retries_carry_partial_results(self, capsys):
        tasks = [
            ScenarioTask(_identity, args=(1,), label="ok"),
            ScenarioTask(_boom, args=(2,), label="D5/dauwe"),
        ]
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(StudyExecutionError, match="D5/dauwe") as info:
            run_scenarios(tasks, retry=policy, events=[])
        err = info.value
        assert err.label == "D5/dauwe"
        assert err.partial == [1, None]
        assert err.completed == 1
        assert [e["event"] for e in err.events] == ["task_retry"]
        capsys.readouterr()  # swallow the retry warning

    def test_on_result_fires_per_completion(self):
        seen: list = []
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(3)]
        run_scenarios(tasks, on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 0), (1, 1), (2, 2)]


class TestExecuteStudyResume:
    def test_full_resume_is_bitwise_identical(self, tmp_path):
        study = _study()
        journal = tmp_path / "j.jsonl"
        fresh = execute_study(study, journal=journal)
        assert fresh.record.resilience == {
            "resumed": 0, "executed": 2, "pending": 0,
            # The serial fast path measures both scenarios in one packed
            # lockstep universe; the breadcrumb records that it ran.
            "events": [{"type": "packed_simulate", "scenarios": 2}],
            "journal": str(journal),
        }
        resumed = execute_study(study, journal=journal)
        assert resumed.outcomes == fresh.outcomes  # exact float bits
        assert resumed.record.resilience["resumed"] == 2
        assert resumed.record.resilience["executed"] == 0

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_partial_resume_matches_uninterrupted(self, tmp_path, engine, workers):
        """ISSUE acceptance: killed-after-k resume == uninterrupted, exactly."""
        set_default_engine(engine)
        try:
            study = _study(trials=3, systems=("M", "D1"))  # 4 scenarios
            baseline = execute_study(study, workers=workers)

            # Simulate a run killed after scenario 0: journal holds the
            # header plus one completed scenario (crash-consistent file).
            journal = tmp_path / f"j-{engine}-{workers}.jsonl"
            execute_study(study, journal=journal)
            lines = journal.read_text().splitlines()
            journal.write_text("\n".join(lines[:2]) + "\n")

            resumed = execute_study(study, workers=workers, journal=journal)
            assert resumed.outcomes == baseline.outcomes
            assert resumed.record.resilience["resumed"] == 1
            assert resumed.record.resilience["executed"] == 3
        finally:
            set_default_engine("auto")

    def test_resume_require_rejects_mismatch(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        execute_study(_study(seed=3), journal=journal)
        with pytest.raises(JournalMismatchError, match="study definition changed"):
            execute_study(_study(seed=4), journal=journal, resume="require")

    def test_resume_auto_warns_and_runs_fresh_on_mismatch(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        execute_study(_study(seed=3), journal=journal)
        run = execute_study(_study(seed=4), journal=journal, resume="auto")
        assert run.record.resilience["resumed"] == 0
        assert run.record.resilience["executed"] == 2
        assert "different configuration" in capsys.readouterr().err
        # the superseding header makes the new spec resumable in turn
        again = execute_study(_study(seed=4), journal=journal)
        assert again.record.resilience["resumed"] == 2

    def test_resume_never_ignores_entries(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        execute_study(_study(), journal=journal)
        run = execute_study(_study(), journal=journal, resume=False)
        assert run.record.resilience["resumed"] == 0
        assert run.record.resilience["executed"] == 2

    def test_invalid_resume_mode(self, tmp_path):
        with pytest.raises(ValueError, match="resume must be one of"):
            execute_study(_study(), journal=tmp_path / "j.jsonl", resume="maybe")

    def test_no_journal_records_empty_resilience(self):
        run = execute_study(_study())
        assert run.record.resilience == {
            "resumed": 0, "executed": 2, "pending": 0,
            "events": [{"type": "packed_simulate", "scenarios": 2}],
        }

    def test_open_journal_instance_is_not_closed(self, tmp_path):
        study = _study()
        with RunJournal(tmp_path / "j.jsonl") as jr:
            execute_study(study, journal=jr)
            # still usable: the caller owns its lifetime
            assert set(jr.resume_state(study)) == {0, 1}


def _hang(value):
    import time

    time.sleep(60)
    return value


def _hang_once(marker: str, value):
    """Hangs on its first call only (the marker survives pool restarts)."""
    import os
    import time

    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(60)
    return value


class TestTaskWatchdog:
    _FAST = RetryPolicy(base_delay=0.0)

    def test_invalid_timeout_rejected(self):
        tasks = [ScenarioTask(_identity, args=(1,))]
        with pytest.raises(ValueError, match="task_timeout must be positive"):
            run_scenarios(tasks, task_timeout=0)

    def test_serial_hung_task_exhausts_attempts(self, capsys):
        tasks = [ScenarioTask(_hang, args=(1,), label="stuck")]
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(StudyExecutionError, match="watchdog timeout"):
            run_scenarios(tasks, retry=policy, task_timeout=0.2)
        capsys.readouterr()  # swallow the retry warning

    def test_serial_hang_once_recovers(self, tmp_path, capsys):
        marker = str(tmp_path / "hung")
        tasks = [
            ScenarioTask(_hang_once, args=(marker, 7), label="slow"),
            ScenarioTask(_identity, args=(1,)),
        ]
        events: list = []
        results = run_scenarios(
            tasks, retry=self._FAST, events=events, task_timeout=0.3
        )
        assert results == [7, 1]
        # serial watchdog feeds the ordinary retry ladder
        assert [e["event"] for e in events] == ["task_retry"]
        assert "watchdog" in capsys.readouterr().err

    def test_pooled_hang_once_terminates_pool_and_retries(
        self, tmp_path, capsys
    ):
        marker = str(tmp_path / "hung")
        tasks = [
            ScenarioTask(_hang_once, args=(marker, 7), label="slow"),
            ScenarioTask(_identity, args=(1,)),
        ]
        events: list = []
        results = run_scenarios(
            tasks, workers=2, retry=self._FAST, events=events, task_timeout=2.0
        )
        assert results == [7, 1]
        names = [e["event"] for e in events]
        assert "task_timeout" in names
        hung = next(e for e in events if e["event"] == "task_timeout")
        assert hung["tasks"] == ["slow"]
        assert hung["timeout"] == 2.0
        assert "terminating the pool" in capsys.readouterr().err

    def test_execute_study_threads_task_timeout(self, tmp_path, capsys):
        # A watchdogged study takes the per-scenario path (packed is
        # disabled) and still matches a plain run bit-for-bit.
        study = _study(trials=2)
        baseline = execute_study(study)
        run = execute_study(study, task_timeout=60.0)
        assert run.outcomes == baseline.outcomes
        assert run.record.resilience["events"] == []


class TestPackedInterruptResume:
    def test_interrupt_mid_packed_leaves_all_pending(
        self, tmp_path, monkeypatch
    ):
        """SIGINT inside the fused packed call journals *nothing*; resume
        re-runs the whole batch packed and matches bit-for-bit."""
        import repro.simulator.batch as batch

        study = _study(trials=3, systems=("M", "D1"))  # 4 scenarios
        baseline = execute_study(study)
        assert baseline.record.resilience["events"] == [
            {"type": "packed_simulate", "scenarios": 4}
        ]

        journal = tmp_path / "j.jsonl"
        real = batch.simulate_packed

        def _interrupted(requests):
            raise KeyboardInterrupt

        monkeypatch.setattr(batch, "simulate_packed", _interrupted)
        with pytest.raises(StudyInterrupted) as excinfo:
            execute_study(study, journal=journal)
        err = excinfo.value
        assert err.completed == 0
        assert err.record.resilience["executed"] == 0
        assert err.record.resilience["pending"] == 4
        # crash-consistent journal: header only, no half-journaled batch
        assert len(journal.read_text().splitlines()) == 1

        monkeypatch.setattr(batch, "simulate_packed", real)
        resumed = execute_study(study, journal=journal)
        assert resumed.outcomes == baseline.outcomes
        assert resumed.record.resilience["resumed"] == 0
        assert resumed.record.resilience["executed"] == 4
        assert {"type": "packed_simulate", "scenarios": 4} in (
            resumed.record.resilience["events"]
        )


class TestJournalAudit:
    """The ``repro journal`` audit: checksum accounting per line, section
    summaries, and the torn-tail / corruption / orphan distinctions."""

    def _fill(self, path, study, upto: int | None = None):
        with RunJournal(path) as jr:
            jr.begin_study(study)
            h = study.study_hash()
            n = len(study.scenarios) if upto is None else upto
            for i in range(n):
                jr.record_scenario(h, i, study.scenarios[i].label, 11 + i, _outcome(i))

    def test_clean_journal(self, tmp_path):
        from repro.exec import audit_journal, format_audit

        path = tmp_path / "j.jsonl"
        study = _study()
        self._fill(path, study)
        audit = audit_journal(path)
        assert audit.ok and not audit.torn_tail
        assert audit.lines == audit.verified == 1 + len(study.scenarios)
        assert audit.corrupt == 0 and audit.orphans == 0
        (section,) = audit.sections
        assert section["study"] == "mini"
        assert section["study_hash"] == study.study_hash()
        assert section["declared"] == len(study.scenarios)
        assert section["completed"] == list(range(len(study.scenarios)))
        assert section["pending"] == []
        text = format_audit(audit)
        assert "(complete)" in text and "clean" in text

    def test_partial_section_lists_pending(self, tmp_path):
        from repro.exec import audit_journal, format_audit

        path = tmp_path / "j.jsonl"
        self._fill(path, _study(), upto=1)
        audit = audit_journal(path)
        assert audit.ok
        (section,) = audit.sections
        assert section["completed"] == [0]
        assert section["pending"] == [1]
        text = format_audit(audit)
        assert "(resumable)" in text and "pending: 1" in text

    def test_mid_file_corruption_fails_the_audit(self, tmp_path):
        from repro.exec import audit_journal, format_audit

        path = tmp_path / "j.jsonl"
        self._fill(path, _study())
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace('"index"', '"indxe"', 1)
        path.write_text("".join(lines))
        audit = audit_journal(path)
        assert not audit.ok
        assert audit.corrupt == 1 and not audit.torn_tail
        assert "CORRUPT" in format_audit(audit)

    def test_torn_tail_is_excused(self, tmp_path):
        from repro.exec import audit_journal, format_audit

        path = tmp_path / "j.jsonl"
        self._fill(path, _study())
        path.write_text(path.read_text()[:-30])  # rip the final newline off
        audit = audit_journal(path)
        assert audit.ok and audit.torn_tail
        assert audit.corrupt == 0
        (section,) = audit.sections
        assert section["pending"] == [1]  # the torn entry is not counted
        assert "usable" in format_audit(audit)

    def test_orphan_entries_fail_the_audit(self, tmp_path):
        from repro.exec import audit_journal

        path = tmp_path / "j.jsonl"
        self._fill(path, _study())
        # drop the header: every scenario entry loses its section
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[1:]))
        audit = audit_journal(path)
        assert not audit.ok
        assert audit.orphans == 2 and audit.sections == []

    def test_superseded_section_is_flagged(self, tmp_path):
        from repro.exec import audit_journal, format_audit

        path = tmp_path / "j.jsonl"
        study = _study()
        self._fill(path, study)
        self._fill(path, study.with_seed(4), upto=0)  # same id, new hash
        audit = audit_journal(path)
        assert audit.ok
        old, new = audit.sections
        assert old["superseded"] and not new["superseded"]
        assert "(superseded)" in format_audit(audit)

    def test_missing_file_raises_oserror(self, tmp_path):
        from repro.exec import audit_journal

        with pytest.raises(OSError):
            audit_journal(tmp_path / "nope.jsonl")

    def test_audit_serializes(self, tmp_path):
        from repro.exec import audit_journal

        path = tmp_path / "j.jsonl"
        self._fill(path, _study())
        data = json.loads(json.dumps(audit_journal(path).to_dict()))
        assert data["ok"] is True
        assert data["sections"][0]["declared"] == 2
