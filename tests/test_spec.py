"""Tests for SystemSpec validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.systems import SystemSpec


def make(**kw):
    base = dict(
        name="t",
        mtbf=100.0,
        level_probabilities=(0.7, 0.3),
        checkpoint_times=(1.0, 4.0),
        baseline_time=100.0,
    )
    base.update(kw)
    return SystemSpec(**base)


class TestValidation:
    def test_mtbf_positive(self):
        with pytest.raises(ValueError, match="mtbf"):
            make(mtbf=0.0)

    def test_baseline_positive(self):
        with pytest.raises(ValueError, match="baseline"):
            make(baseline_time=-1.0)

    def test_probability_sum_enforced(self):
        with pytest.raises(ValueError, match="sum to 1"):
            make(level_probabilities=(0.5, 0.3))

    def test_probability_rounding_slack_allowed(self):
        # Table I's D1 row sums to 1.000 at three digits.
        spec = make(level_probabilities=(0.857, 0.143))
        assert sum(spec.severity_probabilities) == pytest.approx(1.0)

    def test_positive_probabilities(self):
        with pytest.raises(ValueError, match="positive"):
            make(level_probabilities=(1.0, 0.0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="checkpoint_times"):
            make(checkpoint_times=(1.0,))

    def test_restart_length_mismatch(self):
        with pytest.raises(ValueError, match="restart_times"):
            make(restart_times=(1.0,))

    def test_nondecreasing_checkpoint_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            make(checkpoint_times=(4.0, 1.0))

    def test_at_least_one_level(self):
        with pytest.raises(ValueError):
            make(level_probabilities=(), checkpoint_times=())


class TestFinitenessValidation:
    """NaN/inf must be rejected at construction — NaN slips past every
    ordered comparison (``nan <= 0`` is False), so without these checks a
    poisoned spec would silently propagate into every model."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_mtbf_must_be_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            make(mtbf=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_baseline_must_be_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            make(baseline_time=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_probabilities_must_be_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            make(level_probabilities=(0.7, bad))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_checkpoint_times_must_be_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            make(checkpoint_times=(1.0, bad))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_restart_times_must_be_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            make(restart_times=(1.0, bad))

    def test_restart_times_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            make(restart_times=(-1.0, 4.0))

    def test_nan_in_from_dict_rejected(self):
        data = make().to_dict()
        data["mtbf"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            SystemSpec.from_dict(data)


class TestDerived:
    def test_failure_rate_is_inverse_mtbf(self):
        assert make(mtbf=50.0).failure_rate == pytest.approx(0.02)

    def test_level_rates_sum_to_total(self):
        spec = make()
        assert sum(spec.level_rates) == pytest.approx(spec.failure_rate)

    def test_level_rates_proportional_to_probabilities(self):
        spec = make()
        assert spec.level_rates[0] / spec.level_rates[1] == pytest.approx(7.0 / 3.0)

    def test_cumulative_rate(self):
        spec = make()
        assert spec.cumulative_rate(1) == pytest.approx(spec.level_rates[0])
        assert spec.cumulative_rate(2) == pytest.approx(spec.failure_rate)

    def test_mtbf_of_level(self):
        spec = make()
        assert spec.mtbf_of_level(2) == pytest.approx(1.0 / spec.level_rates[1])

    def test_restart_defaults_to_checkpoint(self):
        spec = make()
        assert spec.restart_time(1) == spec.checkpoint_time(1)
        assert spec.restart_time(2) == 4.0

    def test_restart_override(self):
        spec = make(restart_times=(2.0, 6.0))
        assert spec.restart_time(1) == 2.0
        assert spec.checkpoint_time(1) == 1.0

    def test_num_levels(self):
        assert make().num_levels == 2


class TestDerivation:
    def test_with_mtbf(self):
        spec = make().with_mtbf(10.0)
        assert spec.mtbf == 10.0
        # severity split preserved
        assert spec.severity_probabilities == make().severity_probabilities

    def test_with_top_level_cost(self):
        spec = make().with_top_level_cost(9.0)
        assert spec.checkpoint_times == (1.0, 9.0)
        assert spec.restart_time(2) == 9.0

    def test_with_top_level_cost_respects_monotonicity(self):
        with pytest.raises(ValueError):
            make().with_top_level_cost(0.5)

    def test_with_top_level_cost_overrides_restarts_too(self):
        spec = make(restart_times=(2.0, 6.0)).with_top_level_cost(9.0)
        assert spec.restart_times == (2.0, 9.0)
        assert spec.checkpoint_times == (1.0, 9.0)

    def test_with_baseline_time(self):
        assert make().with_baseline_time(30.0).baseline_time == 30.0

    def test_renamed(self):
        spec = make().renamed("other", "desc")
        assert spec.name == "other"
        assert spec.description == "desc"
        assert spec.mtbf == make().mtbf

    def test_summary_mentions_key_fields(self):
        text = make().summary()
        assert "MTBF=100" in text and "L=2" in text
