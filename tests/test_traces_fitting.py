"""Tests for failure-trace synthesis and model fitting."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures import (
    FailureTrace,
    TraceFailureSource,
    exponential_ks_test,
    fit_exponential_rates,
    fit_weibull,
    spec_from_trace,
    synthesize_trace,
)
from repro.systems import get_system


class TestFailureTrace:
    def test_basic_stats(self):
        tr = FailureTrace(times=(1.0, 3.0, 7.0, 9.0), severities=(1, 2, 1, 1), horizon=10.0)
        assert len(tr) == 4
        assert tr.empirical_mtbf() == pytest.approx(2.5)
        assert tr.severity_counts() == (3, 1)
        assert tr.severity_distribution() == pytest.approx((0.75, 0.25))

    def test_interarrivals(self):
        tr = FailureTrace(times=(1.0, 3.0, 7.0), severities=(1, 1, 1), horizon=8.0)
        assert tr.interarrival_times() == pytest.approx([1.0, 2.0, 4.0])

    def test_filtered(self):
        tr = FailureTrace(times=(1.0, 3.0, 7.0), severities=(1, 2, 1), horizon=8.0)
        sub = tr.filtered(1)
        assert sub.times == (1.0, 7.0)
        assert sub.horizon == 8.0

    def test_window(self):
        tr = FailureTrace(times=(1.0, 3.0, 7.0), severities=(1, 2, 1), horizon=8.0)
        win = tr.window(2.0, 8.0)
        assert win.times == (1.0, 5.0)
        assert win.horizon == 6.0
        with pytest.raises(ValueError):
            tr.window(5.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            FailureTrace(times=(2.0, 1.0), severities=(1, 1), horizon=10.0)
        with pytest.raises(ValueError, match="horizon"):
            FailureTrace(times=(11.0,), severities=(1,), horizon=10.0)
        with pytest.raises(ValueError, match="equal length"):
            FailureTrace(times=(1.0,), severities=(1, 2), horizon=10.0)

    def test_empty_mtbf_rejected(self):
        with pytest.raises(ValueError):
            FailureTrace(times=(), severities=(), horizon=10.0).empirical_mtbf()


class TestSynthesize:
    def test_rates_recovered(self):
        rates = (0.02, 0.005)
        tr = synthesize_trace(rates, horizon=200_000.0, rng=0)
        fitted = fit_exponential_rates(tr)
        assert fitted[0] == pytest.approx(rates[0], rel=0.05)
        assert fitted[1] == pytest.approx(rates[1], rel=0.1)

    def test_usable_as_simulator_source(self):
        spec = get_system("D1")
        tr = synthesize_trace(spec.level_rates, horizon=5000.0, rng=1)
        src = TraceFailureSource(list(tr.times), list(tr.severities))
        t, s = src.next_after(0.0)
        assert t == tr.times[0] and s == tr.severities[0]

    def test_weibull_burstiness_detected(self):
        tr = synthesize_trace((0.05,), horizon=100_000.0, rng=2, weibull_shape=0.6)
        fit = fit_weibull(tr.interarrival_times())
        assert fit.is_bursty
        assert fit.shape == pytest.approx(0.6, abs=0.1)

    def test_exponential_trace_not_bursty(self):
        tr = synthesize_trace((0.05,), horizon=100_000.0, rng=3)
        fit = fit_weibull(tr.interarrival_times())
        assert fit.shape == pytest.approx(1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace((), 100.0)
        with pytest.raises(ValueError):
            synthesize_trace((0.1,), -5.0)
        with pytest.raises(ValueError):
            synthesize_trace((0.1,), 100.0, weibull_shape=0.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_strictly_increasing(self, seed):
        tr = synthesize_trace((0.05, 0.01), horizon=2000.0, rng=seed)
        assert all(b > a for a, b in zip(tr.times, tr.times[1:]))
        assert all(1 <= s <= 2 for s in tr.severities)


class TestFitting:
    def test_exponential_ks_accepts_exponential(self):
        rng = np.random.default_rng(4)
        gaps = rng.exponential(10.0, size=500)
        assert exponential_ks_test(gaps) > 0.01

    def test_exponential_ks_rejects_constant_gaps(self):
        assert exponential_ks_test([5.0 + 1e-3 * k for k in range(200)]) < 1e-6

    def test_weibull_fit_validation(self):
        with pytest.raises(ValueError):
            fit_weibull([1.0])
        with pytest.raises(ValueError):
            fit_weibull([1.0, -2.0])

    def test_weibull_mean_matches_samples(self):
        rng = np.random.default_rng(5)
        samples = 7.0 * rng.weibull(1.5, size=4000)
        fit = fit_weibull(samples)
        assert fit.mean == pytest.approx(samples.mean(), rel=0.05)

    def test_spec_from_trace_roundtrip(self):
        base = get_system("D2")
        tr = synthesize_trace(base.level_rates, horizon=500_000.0, rng=6)
        spec = spec_from_trace("refit", tr, base.checkpoint_times, base.baseline_time)
        assert spec.mtbf == pytest.approx(base.mtbf, rel=0.05)
        assert spec.severity_probabilities[0] == pytest.approx(
            base.severity_probabilities[0], abs=0.02
        )

    def test_spec_from_trace_validation(self):
        tr = FailureTrace(times=(1.0, 2.0), severities=(1, 1), horizon=10.0)
        with pytest.raises(ValueError, match="checkpoint times"):
            spec_from_trace("x", tr, (1.0, 2.0), 100.0)

    def test_spec_from_trace_fit_feeds_models(self):
        from repro.core import DauweModel

        base = get_system("D1")
        tr = synthesize_trace(base.level_rates, horizon=100_000.0, rng=7)
        spec = spec_from_trace("refit", tr, base.checkpoint_times, 720.0)
        res = DauweModel(spec).optimize()
        assert 0 < res.predicted_efficiency < 1.0
