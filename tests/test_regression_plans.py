"""Regression pins on optimizer decisions for the paper's systems.

Loose bands, not exact values: these tests exist to catch silent
regressions in the sweep or the model (e.g. a sign slip that halves every
interval), while tolerating refinement-level drift.
"""

from __future__ import annotations

import pytest

from repro.core import DauweModel
from repro.models import make_model
from repro.systems import get_system


class TestDauweChoices:
    def test_system_m_skips_level3(self):
        # T_B=1440 << level-3 MTBF (~41,600 min) and delta_3 = 17.53 min:
        # the Section IV-F logic drops the PFS level.
        res = DauweModel(get_system("M")).optimize()
        assert res.plan.top_level <= 2
        assert 5.0 <= res.plan.tau0 <= 60.0
        assert res.predicted_efficiency > 0.95

    def test_system_b_uses_all_levels(self):
        res = DauweModel(get_system("B")).optimize()
        assert res.plan.levels == (1, 2, 3, 4)
        assert 5.0 <= res.plan.tau0 <= 30.0
        assert 0.88 <= res.predicted_efficiency <= 0.95

    @pytest.mark.parametrize(
        "name,lo,hi",
        [("D1", 0.80, 0.88), ("D4", 0.58, 0.68), ("D9", 0.05, 0.13)],
    )
    def test_two_level_efficiency_bands(self, name, lo, hi):
        res = DauweModel(get_system(name)).optimize()
        assert lo <= res.predicted_efficiency <= hi
        assert res.plan.levels == (1, 2)

    def test_interval_shrinks_with_difficulty(self):
        taus = [
            DauweModel(get_system(n)).optimize().plan.tau0
            for n in ("D1", "D2", "D4")
        ]
        assert taus[0] > taus[1] > taus[2]


class TestCrossTechniqueStructure:
    def test_daly_interval_longer_than_multilevel_tau0(self):
        # Single-level checkpointing must space checkpoints further apart
        # than the multilevel level-1 interval on every D system.
        for name in ("D1", "D4", "D9"):
            spec = get_system(name)
            daly = make_model("daly", spec).optimize()
            dauwe = make_model("dauwe", spec).optimize()
            assert daly.plan.tau0 > dauwe.plan.tau0

    def test_benoit_tau0_longest_among_multilevel(self):
        for name in ("D4", "D9"):
            spec = get_system(name)
            benoit = make_model("benoit", spec).optimize()
            for other in ("dauwe", "moody"):
                res = make_model(other, spec).optimize()
                assert benoit.plan.tau0 >= res.plan.tau0

    def test_predictions_ranked_by_optimism_on_hard_system(self):
        # Paper ordering on hard systems: benoit > di > dauwe > moody.
        spec = get_system("D9")
        preds = {
            t: make_model(t, spec).optimize().predicted_efficiency
            for t in ("benoit", "di", "dauwe", "moody")
        }
        assert preds["benoit"] > preds["di"] > preds["dauwe"] > preds["moody"]
