"""Smoke + structure tests for the experiment harness (tiny trial counts)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    evaluate_technique,
    figure2,
    figure5,
    figure6,
    format_table,
    render_report,
    table1,
    write_report,
)
from repro.experiments.records import TechniqueOutcome
from repro.systems import TEST_SYSTEM_ORDER, get_system


class TestEvaluateTechnique:
    def test_outcome_fields(self):
        out = evaluate_technique(get_system("D1"), "dauwe", trials=5, seed=1)
        assert out.system == "D1"
        assert out.technique == "dauwe"
        assert 0 < out.simulated_efficiency <= 1.0
        assert 0 < out.predicted_efficiency <= 1.0
        assert out.trials == 5
        assert abs(out.prediction_error) < 0.5
        assert sum(out.breakdown_fractions.values()) == pytest.approx(1.0)

    def test_reproducible(self):
        a = evaluate_technique(get_system("D1"), "daly", trials=5, seed=2)
        b = evaluate_technique(get_system("D1"), "daly", trials=5, seed=2)
        assert a.simulated_efficiency == b.simulated_efficiency

    def test_techniques_get_distinct_failure_streams(self):
        a = evaluate_technique(get_system("D1"), "dauwe", trials=5, seed=2)
        b = evaluate_technique(get_system("D1"), "di", trials=5, seed=2)
        # same seed, different technique -> different derived stream
        assert a.simulated_efficiency != b.simulated_efficiency

    def test_moody_simulated_with_end_checkpoint(self):
        # The flag must flow through to the simulator (Figure 5 semantics).
        out = evaluate_technique(
            get_system("D1").with_baseline_time(60.0), "moody", trials=3, seed=3
        )
        assert out.trials == 3  # smoke: no crash with the flag path


class TestTable1:
    def test_rows_match_catalog(self):
        res = table1.run()
        assert res.experiment_id == "table1"
        assert [r["system"] for r in res.rows] == list(TEST_SYSTEM_ORDER)
        b_row = next(r for r in res.rows if r["system"] == "B")
        assert b_row["levels"] == 4
        assert b_row["MTBF (min)"] == pytest.approx(333.33)

    def test_render_contains_all_systems(self):
        text = table1.run().render()
        for name in TEST_SYSTEM_ORDER:
            assert name in text


class TestFigureRunners:
    def test_figure2_structure(self):
        res = figure2.run(
            trials=3, seed=0, techniques=("dauwe", "daly"), systems=("D1",)
        )
        assert len(res.rows) == 2
        for row in res.rows:
            assert {"system", "technique", "sim efficiency", "predicted"} <= set(row)

    def test_figure5_marks_level_skipping(self):
        res = figure5.run(trials=3, seed=0, techniques=("dauwe",))
        assert len(res.rows) == 10
        assert all(r["skips level-L"] in ("yes", "no") for r in res.rows)

    def test_figure6_derived_from_figure4(self):
        fig4 = ExperimentResult(
            experiment_id="figure4",
            title="t",
            caption="c",
            columns=[],
            rows=[
                {"cL (min)": 10.0, "MTBF (min)": m, "technique": t, "error": e}
                for m, errs in [(26.0, (0.01, 0.05, -0.02)), (3.0, (0.0, 0.1, -0.07))]
                for t, e in zip(("dauwe", "di", "moody"), errs)
            ],
            parameters={"trials": 1},
        )
        res = figure6.from_figure4(fig4)
        assert len(res.rows) == 2
        # sorted by |moody error|: 0.02 then 0.07
        assert res.rows[0]["moody error"] == pytest.approx(-0.02)
        assert res.rows[1]["moody error"] == pytest.approx(-0.07)
        assert res.rows[0]["test"] == 1

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "ablations",
            "weibull",
            "interval_study",
        }


class TestRendering:
    def test_format_table_ascii(self):
        text = format_table(
            [("a", None), ("b", ".2f")],
            [{"a": "x", "b": 1.234}, {"a": "y", "b": 2.0}],
        )
        assert "1.23" in text and "x" in text
        lines = text.splitlines()
        assert len(lines) == 4

    def test_format_table_markdown(self):
        text = format_table([("a", None)], [{"a": "x"}], markdown=True)
        assert text.startswith("| a")
        assert "|---" in text.splitlines()[1]

    def test_missing_cell_rendered_as_dash(self):
        text = format_table([("a", None), ("b", ".1f")], [{"a": "x"}])
        assert "-" in text.splitlines()[-1]

    def test_result_render_and_markdown(self):
        res = table1.run()
        assert "table1" in res.render()
        md = res.to_markdown()
        assert md.startswith("## table1")

    def test_result_json(self):
        import json

        data = json.loads(table1.run().to_json())
        assert data["experiment_id"] == "table1"
        assert len(data["rows"]) == 11

    def test_report_writing(self, tmp_path):
        path = write_report([table1.run()], tmp_path / "EXP.md")
        text = path.read_text()
        assert "paper vs. measured" in text
        assert "## table1" in text

    def test_render_report_includes_notes(self):
        res = figure2.run(trials=2, seed=0, techniques=("daly",), systems=("D1",))
        text = render_report([res])
        assert "Paper shape" in text


class TestOutcomeRecord:
    def test_prediction_error_sign(self):
        out = TechniqueOutcome(
            system="X",
            technique="t",
            plan="p",
            predicted_efficiency=0.8,
            simulated_efficiency=0.7,
            simulated_std=0.01,
            trials=10,
            predicted_time=100.0,
            mean_time=110.0,
            completed_fraction=1.0,
        )
        assert out.prediction_error == pytest.approx(0.1)
