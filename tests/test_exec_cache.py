"""Tests for the content-addressed optimization cache (repro.exec.cache)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.interfaces import OptimizationResult
from repro.core.plan import CheckpointPlan
from repro.exec import (
    OptimizationCache,
    cache_key,
    get_active_cache,
    set_active_cache,
)
from repro.systems import SystemSpec


@pytest.fixture(autouse=True)
def _no_active_cache():
    """Keep the process-wide cache out of (and unchanged by) these tests."""
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


def _result(tau0=3.5):
    return OptimizationResult(
        plan=CheckpointPlan(levels=(1, 2), tau0=tau0, counts=(2,)),
        predicted_time=123.456789,
        predicted_efficiency=0.87654321,
        evaluations=42,
    )


class TestCacheKey:
    def test_stable(self, tiny2):
        assert cache_key(tiny2, "dauwe") == cache_key(tiny2, "dauwe")

    def test_name_and_description_excluded(self, tiny2):
        renamed = dataclasses.replace(
            tiny2, name="renamed", description="other words"
        )
        assert cache_key(renamed, "dauwe") == cache_key(tiny2, "dauwe")

    def test_spec_change_invalidates(self, tiny2):
        base = cache_key(tiny2, "dauwe")
        assert cache_key(dataclasses.replace(tiny2, mtbf=99.0), "dauwe") != base
        assert (
            cache_key(dataclasses.replace(tiny2, baseline_time=999.0), "dauwe")
            != base
        )
        assert (
            cache_key(
                dataclasses.replace(tiny2, checkpoint_times=(1.0, 6.0)), "dauwe"
            )
            != base
        )

    def test_technique_and_options_invalidate(self, tiny2):
        base = cache_key(tiny2, "dauwe")
        assert cache_key(tiny2, "moody") != base
        assert cache_key(tiny2, "dauwe", {"include_restart_failures": False}) != base
        assert cache_key(tiny2, "dauwe", None, {"tau0_points": 10}) != base

    def test_option_key_order_irrelevant(self, tiny2):
        a = cache_key(tiny2, "dauwe", {"a": 1, "b": (2, 3)})
        b = cache_key(tiny2, "dauwe", {"b": [2, 3], "a": 1})
        assert a == b


class TestOptimizationCache:
    def test_memory_hit_and_counters(self, tiny2):
        cache = OptimizationCache()
        calls = []

        def compute():
            calls.append(1)
            return _result()

        first = cache.get_or_compute(tiny2, "dauwe", compute)
        second = cache.get_or_compute(tiny2, "dauwe", compute)
        assert len(calls) == 1
        assert second == first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.disk_hits == 0

    def test_options_change_is_a_miss(self, tiny2):
        cache = OptimizationCache()
        cache.get_or_compute(tiny2, "dauwe", _result)
        cache.get_or_compute(
            tiny2, "dauwe", _result, model_options={"final_interval_plus_one": True}
        )
        cache.get_or_compute(
            tiny2, "dauwe", _result, sweep_options={"tau0_points": 5}
        )
        assert cache.stats.misses == 3
        assert cache.stats.hits == 0

    def test_disk_round_trip(self, tiny2, tmp_path):
        warm = OptimizationCache(tmp_path)
        stored = warm.get_or_compute(tiny2, "dauwe", _result)

        cold = OptimizationCache(tmp_path)  # fresh process stand-in
        loaded = cold.get_or_compute(
            tiny2, "dauwe", lambda: pytest.fail("should have hit disk")
        )
        assert loaded == stored  # exact, including float bits
        assert cold.stats.hits == 1
        assert cold.stats.disk_hits == 1
        # Once read, the entry is promoted to memory.
        cold.get_or_compute(tiny2, "dauwe", lambda: pytest.fail("memory miss"))
        assert cold.stats.hits == 2
        assert cold.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tiny2, tmp_path):
        OptimizationCache(tmp_path).get_or_compute(tiny2, "dauwe", _result)
        key = cache_key(tiny2, "dauwe")
        (tmp_path / f"{key}.json").write_text("{not json")

        cache = OptimizationCache(tmp_path)
        out = cache.get_or_compute(tiny2, "dauwe", lambda: _result(9.9))
        assert out.plan.tau0 == 9.9
        assert cache.stats.misses == 1
        assert cache.stats.disk_hits == 0

    def test_lru_eviction(self, tiny2, tiny3):
        cache = OptimizationCache(max_entries=2)
        b = SystemSpec(
            name="b",
            mtbf=77.0,
            level_probabilities=(0.5, 0.5),
            checkpoint_times=(1.0, 4.0),
            baseline_time=100.0,
        )
        for spec in (tiny2, tiny3, b):
            cache.put(cache_key(spec, "dauwe"), _result())
        assert len(cache) == 2
        assert cache.get(cache_key(tiny2, "dauwe")) is None  # evicted
        assert cache.get(cache_key(b, "dauwe")) is not None

    def test_active_cache_swap(self):
        cache = OptimizationCache()
        previous = set_active_cache(cache)
        try:
            assert get_active_cache() is cache
        finally:
            set_active_cache(previous)
        assert get_active_cache() is previous


class TestEntryIntegrity:
    """Disk entries are checksummed; anything unverifiable is quarantined."""

    @pytest.fixture(autouse=True)
    def _rearm_warning(self, monkeypatch):
        from repro.exec import cache as cache_mod

        monkeypatch.setattr(cache_mod, "_WARNED_CORRUPT_ENTRY", False)

    def _entry_path(self, tiny2, tmp_path):
        OptimizationCache(tmp_path).get_or_compute(tiny2, "dauwe", _result)
        return tmp_path / f"{cache_key(tiny2, 'dauwe')}.json"

    def test_entries_carry_checksum(self, tiny2, tmp_path):
        import json

        path = self._entry_path(tiny2, tmp_path)
        data = json.loads(path.read_text())
        assert len(data["sha256"]) == 64

    def test_bit_rot_quarantines_and_recomputes(self, tiny2, tmp_path, capsys):
        from repro.exec.chaos import corrupt_file

        path = self._entry_path(tiny2, tmp_path)
        corrupt_file(path)

        cache = OptimizationCache(tmp_path)
        out = cache.get_or_compute(tiny2, "dauwe", lambda: _result(7.7))
        assert out.plan.tau0 == 7.7
        assert path.with_suffix(".corrupt").exists()  # kept for forensics
        assert "quarantined" in capsys.readouterr().err
        # the recompute re-stored a valid entry
        fresh = OptimizationCache(tmp_path)
        assert fresh.get_or_compute(
            tiny2, "dauwe", lambda: pytest.fail("should hit disk")
        ).plan.tau0 == 7.7

    def test_tampered_payload_fails_checksum(self, tiny2, tmp_path, capsys):
        path = self._entry_path(tiny2, tmp_path)
        path.write_text(path.read_text().replace('"tau0": 3.5', '"tau0": 9.5'))

        cache = OptimizationCache(tmp_path)
        assert cache.get(cache_key(tiny2, "dauwe")) is None
        assert cache.stats.misses == 1
        assert path.with_suffix(".corrupt").exists()
        assert "sha256 mismatch" in capsys.readouterr().err

    def test_truncated_entry_quarantined(self, tiny2, tmp_path, capsys):
        from repro.exec.chaos import truncate_file

        path = self._entry_path(tiny2, tmp_path)
        truncate_file(path, keep_bytes=30)

        assert OptimizationCache(tmp_path).get(cache_key(tiny2, "dauwe")) is None
        assert path.with_suffix(".corrupt").exists()
        assert "quarantined" in capsys.readouterr().err

    def test_legacy_unchecksummed_entry_quarantined(self, tiny2, tmp_path, capsys):
        import json

        path = self._entry_path(tiny2, tmp_path)
        data = json.loads(path.read_text())
        del data["sha256"]  # the pre-checksum on-disk format
        path.write_text(json.dumps(data))

        assert OptimizationCache(tmp_path).get(cache_key(tiny2, "dauwe")) is None
        assert path.with_suffix(".corrupt").exists()
        assert "not a checksummed JSON entry" in capsys.readouterr().err

    def test_warning_fires_once_per_process(self, tiny2, tiny3, tmp_path, capsys):
        for spec in (tiny2, tiny3):
            OptimizationCache(tmp_path).get_or_compute(spec, "dauwe", _result)
            (tmp_path / f"{cache_key(spec, 'dauwe')}.json").write_text("{rot")

        cache = OptimizationCache(tmp_path)
        assert cache.get(cache_key(tiny2, "dauwe")) is None
        assert cache.get(cache_key(tiny3, "dauwe")) is None
        assert capsys.readouterr().err.count("warning:") == 1
