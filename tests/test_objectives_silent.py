"""The pluggable-objective and silent-error seams.

Covers the contracts the refactor introduced: objective registration and
serialization back-compat (absent key = ``time``), the availability
objective genuinely changing a plan (pinned on a stress system), the
silent-error spec's strict validation, bitwise scalar/batch engine
parity with silent errors *on*, transparency when the mode is off, the
scenario-spec blocks (study hashes move only when a block is present),
and the audible ``engine="auto"`` scalar fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.models.moody import MoodyModel
from repro.core.interfaces import (
    OBJECTIVES,
    OptimizationResult,
    get_objective,
)
from repro.core.silent import SilentErrorSpec
from repro.scenarios import ScenarioSpec, StudySpec
from repro.simulator import simulate_many
from repro.simulator import run as run_mod
from repro.systems import get_system
from repro.systems.stress import get_stress_system, silent_variants


class TestObjectiveRegistry:
    def test_builtin_objectives_registered(self):
        assert set(OBJECTIVES) == {"time", "availability"}

    def test_get_objective_resolves_and_passes_through(self):
        time_obj = get_objective("time")
        assert time_obj.name == "time"
        assert get_objective(time_obj) is time_obj

    def test_unknown_objective_is_loud(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("throughput")

    def test_optimize_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            DauweModel(get_system("M")).optimize(objective="throughput")


class TestObjectiveSerialization:
    def _result(self, objective):
        return OptimizationResult(
            plan=CheckpointPlan((1, 2), 5.0, (3,)),
            predicted_time=100.0,
            predicted_efficiency=0.9,
            evaluations=7,
            objective=objective,
        )

    def test_time_objective_not_serialized(self):
        # Results written before the objective layer must round-trip
        # unchanged, so the default never appears in the payload.
        data = self._result("time").to_dict()
        assert "objective" not in data
        assert OptimizationResult.from_dict(data).objective == "time"

    def test_availability_objective_round_trips(self):
        data = self._result("availability").to_dict()
        assert data["objective"] == "availability"
        again = OptimizationResult.from_dict(data)
        assert again == self._result("availability")

    def test_legacy_payload_defaults_to_time(self):
        data = self._result("time").to_dict()
        data.pop("objective", None)  # simulate a pre-objective cache entry
        assert OptimizationResult.from_dict(data).objective == "time"


class TestAvailabilityOptimization:
    def test_optimize_carries_objective(self):
        result = DauweModel(get_system("M")).optimize(objective="availability")
        assert result.objective == "availability"
        assert 0.0 < result.predicted_efficiency <= 1.0

    def test_blink_app_availability_plan_differs_from_time_plan(self):
        # The acceptance regression: on an application far shorter than
        # any checkpoint, minimizing makespan skips the PFS level
        # entirely, while maximizing the useful-work fraction pays for
        # level-2 protection.  Pinned levels, not just "different".
        model = DauweModel(get_stress_system("blink-app"))
        time_opt = model.optimize()
        avail_opt = model.optimize(objective="availability")
        assert time_opt.plan.levels == (1,)
        assert avail_opt.plan.levels == (1, 2)
        assert time_opt.plan != avail_opt.plan

    def test_non_native_model_degrades_to_time_optimum(self):
        # Models without a native availability notion score T_B / E[T],
        # which is monotone in predicted time: same plan either way.
        model = MoodyModel(get_system("M"))
        time_opt = model.optimize()
        avail_opt = model.optimize(objective="availability")
        # The golden-section polish works on a rescaled score, so tau0
        # can move by an ulp; the selected pattern must be the same.
        assert avail_opt.plan.levels == time_opt.plan.levels
        assert avail_opt.plan.counts == time_opt.plan.counts
        assert avail_opt.plan.tau0 == pytest.approx(time_opt.plan.tau0)
        assert avail_opt.objective == "availability"


class TestSilentErrorSpec:
    def test_validation_is_strict(self):
        with pytest.raises(ValueError):
            SilentErrorSpec(mtbf=0.0)
        with pytest.raises(ValueError):
            SilentErrorSpec(mtbf=-5.0)
        with pytest.raises(ValueError):
            SilentErrorSpec(mtbf=float("inf"))
        with pytest.raises(ValueError):
            SilentErrorSpec(mtbf=100.0, verify_cost=-1.0)
        with pytest.raises(ValueError):
            SilentErrorSpec(mtbf=100.0, detection_latency=float("nan"))

    def test_round_trip_and_unknown_key_rejection(self):
        spec = SilentErrorSpec(mtbf=250.0, verify_cost=1.5, detection_latency=30.0)
        assert SilentErrorSpec.from_dict(spec.to_dict()) == spec
        bad = dict(spec.to_dict(), verfy_cost=1.0)
        with pytest.raises(ValueError, match="verfy_cost"):
            SilentErrorSpec.from_dict(bad)

    def test_resolve_forms(self):
        spec = SilentErrorSpec(mtbf=100.0)
        assert SilentErrorSpec.resolve(None) is None
        assert SilentErrorSpec.resolve(spec) is spec
        assert SilentErrorSpec.resolve({"mtbf": 100.0}) == spec

    def test_stress_variants_scale_to_the_system(self):
        system = get_system("B")
        variants = silent_variants(system)
        assert len(variants) == 3
        bare, adversarial, undetectable = variants
        assert bare.verify_cost == 0.0 and bare.detection_latency == 0.0
        assert adversarial.verify_cost == system.checkpoint_times[-1]
        assert adversarial.detection_latency == pytest.approx(0.5 * system.mtbf)
        assert undetectable.detection_latency > system.baseline_time


class TestSilentEngineParity:
    """scalar == batch, field for field, with silent errors on."""

    SPECS = [
        SilentErrorSpec(mtbf=400.0),
        SilentErrorSpec(mtbf=400.0, verify_cost=2.0, detection_latency=60.0),
    ]

    @pytest.mark.parametrize("name", ["M", "B"])
    @pytest.mark.parametrize("spec", SPECS, ids=["bare", "adversarial"])
    def test_engines_bitwise_identical(self, name, spec):
        system = get_system(name)
        plan = DauweModel(system, silent_errors=spec).optimize().plan
        common = dict(trials=32, seed=9, silent_errors=spec, return_trials=True)
        _, scalar = simulate_many(system, plan, engine="scalar", **common)
        _, batch = simulate_many(system, plan, engine="batch", **common)
        assert scalar == batch  # TrialResult equality is bitwise
        # The comparison must not be vacuous: strikes actually landed.
        assert sum(r.silent_detections for r in scalar) > 0

    def test_detection_latency_costs_time(self):
        # A detected strike forces rework from a pre-strike checkpoint,
        # so the adversarial overlay must not be free.
        system = get_system("M")
        plan = DauweModel(system).optimize().plan
        base = simulate_many(system, plan, trials=16, seed=3)
        hit = simulate_many(
            system, plan, trials=16, seed=3,
            silent_errors=SilentErrorSpec(
                mtbf=200.0, verify_cost=1.0, detection_latency=30.0
            ),
        )
        assert hit.mean_efficiency < base.mean_efficiency

    def test_off_mode_reports_zero_silent_counters(self):
        system = get_system("M")
        plan = DauweModel(system).optimize().plan
        for engine in ("scalar", "batch"):
            _, trials = simulate_many(
                system, plan, trials=8, seed=1,
                engine=engine, return_trials=True,
            )
            assert all(r.silent_detections == 0 for r in trials)
            assert all(r.silent_undetected == 0 for r in trials)


class TestScenarioSpecBlocks:
    def _scenario(self, **kw):
        return ScenarioSpec(
            label="t", system=get_system("M"), technique="dauwe",
            trials=4, **kw,
        )

    def test_defaults_leave_serialization_untouched(self):
        data = self._scenario().to_dict()
        assert "objective" not in data
        assert "silent_errors" not in data

    def test_blocks_round_trip(self):
        spec = self._scenario(
            objective="availability",
            silent_errors={"mtbf": 500.0, "detection_latency": 10.0},
        )
        assert isinstance(spec.silent_errors, SilentErrorSpec)
        data = spec.to_dict()
        assert data["objective"] == "availability"
        assert data["silent_errors"] == {
            "mtbf": 500.0, "verify_cost": 0.0, "detection_latency": 10.0,
        }
        again = ScenarioSpec.from_dict(data)
        assert again.objective == "availability"
        assert again.silent_errors == spec.silent_errors

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            self._scenario(objective="throughput")

    def test_study_hash_moves_only_with_the_blocks(self):
        base = StudySpec(
            study_id="s", title="t",
            scenarios=(self._scenario(),),
        )
        with_obj = StudySpec(
            study_id="s", title="t",
            scenarios=(self._scenario(objective="availability"),),
        )
        with_silent = StudySpec(
            study_id="s", title="t",
            scenarios=(self._scenario(silent_errors={"mtbf": 500.0}),),
        )
        assert base.study_hash() != with_obj.study_hash()
        assert base.study_hash() != with_silent.study_hash()
        # and the default-valued spec hashes like one that never heard
        # of the new fields: nothing default is serialized.
        assert "objective" not in base.to_dict()["scenarios"][0]


class TestAudibleScalarFallback:
    # Only an *opaque* custom source (no batch_stream descriptor) still
    # routes "auto" to the scalar loop; escalate and the registry's
    # weibull/trace factories run batched now.

    @staticmethod
    def _opaque_factory():
        from repro.failures.sources import WeibullFailureSource

        return lambda rng: WeibullFailureSource(0.7, 100.0, (1.0,), rng)

    def test_auto_fallback_warns_once_per_process(self, capsys):
        run_mod._reset_warnings()
        system = get_system("B").with_baseline_time(1.0)
        plan = CheckpointPlan((1,), 0.5, ())
        try:
            for _ in range(2):
                simulate_many(
                    system, plan, trials=run_mod._AUTO_MIN_TRIALS, seed=0,
                    engine="auto", source_factory=self._opaque_factory(),
                )
            err = capsys.readouterr().err
            assert err.count("fell back to the scalar loop") == 1
            assert "batch_stream" in err
        finally:
            run_mod._reset_warnings()

    def test_narrow_runs_stay_quiet(self, capsys):
        run_mod._reset_warnings()
        system = get_system("B").with_baseline_time(1.0)
        plan = CheckpointPlan((1,), 0.5, ())
        try:
            simulate_many(
                system, plan, trials=4, seed=0,
                engine="auto", source_factory=self._opaque_factory(),
            )
            assert "fell back" not in capsys.readouterr().err
        finally:
            run_mod._reset_warnings()
