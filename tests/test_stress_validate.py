"""Adversarial stress catalog + the optimize-then-simulate validator.

The catalog's contract: every spec passes :class:`SystemSpec` validation
(the point is extreme *regimes*, not malformed inputs), and feeding it to
the models yields finite-or-``+inf`` predictions with every escape to
``+inf`` recorded.  The validator's contract: verdicts per (system,
technique) pair, zero invariant violations on the shipped code, and a
non-zero CLI exit iff an invariant is violated.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.systems import (
    STRESS_SYSTEM_ORDER,
    STRESS_SYSTEMS,
    SystemSpec,
    TEST_SYSTEM_ORDER,
    boundary_taus,
    get_stress_system,
    million_node_variant,
    stress_systems,
)
from repro.validate import (
    PairReport,
    ValidationReport,
    Violation,
    format_validation,
    run_validation,
)


class TestStressCatalog:
    def test_catalog_covers_handcrafted_plus_scaled_table1(self):
        # 10 handcrafted corner cases + every Table I system at 1e6 nodes.
        scaled = [n for n in STRESS_SYSTEM_ORDER if n.endswith("@1e6n")]
        assert len(scaled) == len(TEST_SYSTEM_ORDER)
        assert len(STRESS_SYSTEM_ORDER) == 10 + len(TEST_SYSTEM_ORDER)

    def test_every_spec_passes_validation(self):
        for spec in stress_systems():
            assert isinstance(spec, SystemSpec)
            assert math.isfinite(spec.mtbf) and spec.mtbf > 0
            assert sum(spec.severity_probabilities) == pytest.approx(1.0)

    def test_million_node_variant_scales_mtbf_only(self):
        base = STRESS_SYSTEMS["deep5"]
        variant = million_node_variant(base)
        assert variant.mtbf == base.mtbf / 100.0
        assert variant.name == "deep5@1e6n"
        assert variant.checkpoint_times == base.checkpoint_times
        assert variant.level_probabilities == base.level_probabilities

    def test_get_stress_system_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_stress_system("nope")

    def test_boundary_taus_stay_in_domain(self):
        for spec in stress_systems():
            taus = boundary_taus(spec)
            assert taus, spec.name
            assert len(set(taus)) == len(taus)
            for t in taus:
                assert 0.0 < t <= spec.baseline_time
                assert math.isfinite(t)

    def test_boundary_taus_include_both_extremes(self):
        taus = boundary_taus(STRESS_SYSTEMS["calm"])
        assert min(taus) == float(np.nextafter(0.0, 1.0))
        assert max(taus) == STRESS_SYSTEMS["calm"].baseline_time


class TestRunValidation:
    @pytest.fixture(scope="class")
    def report(self):
        # A representative slice: a Table I system, a hopeless regime, a
        # domain-collapse regime and a long-application overflow regime.
        systems = [
            STRESS_SYSTEMS[name]
            for name in ("storm", "blink-app", "calm", "deep5")
        ]
        # regimes=False: the drift-regime pass has its own dedicated
        # tests below (and in test_regime.py) — this slice stays about
        # the stationary stress catalog.
        return run_validation(
            stress=True, quick=True, systems=systems, trials=4, regimes=False
        )

    def test_no_violations_on_shipped_code(self, report):
        assert report.violations == []
        assert report.ok

    def test_every_pair_has_a_verdict(self, report):
        verdicts = {p.verdict for p in report.pairs}
        assert verdicts <= {"ok", "hopeless", "predict-only"}
        # systems x techniques baseline, + the availability pass (the
        # multilevel trio) and the three silent overlays per system.
        assert len(report.pairs) == 4 * 5 + 4 * 3 + 4 * 3

    def test_variant_passes_present(self, report):
        variants = {p.variant for p in report.pairs}
        assert variants == {"", "availability", "sdc0", "sdc1", "sdc2"}
        baseline = [p for p in report.pairs if not p.variant]
        assert len(baseline) == 4 * 5
        avail = [p for p in report.pairs if p.variant == "availability"]
        assert {p.technique for p in avail} == {"dauwe", "di", "moody"}
        silent = [p for p in report.pairs if p.variant.startswith("sdc")]
        assert {p.technique for p in silent} == {"dauwe"}

    def test_storm_is_hopeless_for_length_aware_models(self, report):
        storm = {p.technique: p for p in report.pairs if p.system == "storm"}
        assert storm["dauwe"].verdict == "hopeless"
        assert storm["daly"].verdict == "hopeless"

    def test_events_were_recorded_somewhere(self, report):
        totals = report.event_totals()
        assert totals, "stress systems must exercise at least one guard"
        assert all(count > 0 for count in totals.values())

    def test_deviation_band_present_when_sims_ran(self, report):
        band = report.deviation_band()
        assert band is not None
        lo, hi = band
        assert lo <= hi

    def test_report_serializes_to_json(self, report):
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["catalog"] == "stress"
        assert len(data["pairs"]) == len(report.pairs)

    def test_format_is_human_readable(self, report):
        text = format_validation(report)
        assert "storm/dauwe" in text
        assert "invariants: all checks passed" in text

    def test_format_labels_variant_pairs(self, report):
        text = format_validation(report)
        assert "calm/dauwe@availability" in text
        assert "calm/dauwe@sdc0" in text

    def test_violation_makes_report_not_ok(self):
        rep = ValidationReport(catalog="standard")
        rep.pairs.append(PairReport(system="s", technique="t", verdict="crash"))
        rep.violations.append(Violation("s", "t", "crash", "boom"))
        assert not rep.ok
        assert "VIOLATIONS" in format_validation(rep)


class TestRegimePass:
    """The --stress drift-regime pass: gating, invariants, violations."""

    def test_regime_pass_absent_without_stress(self):
        report = run_validation(
            quick=True, systems=[STRESS_SYSTEMS["calm"]],
            techniques=["daly"], trials=2,
        )
        assert not any(p.variant.startswith("regime:") for p in report.pairs)

    def test_regime_pass_needs_dauwe(self):
        # stress on, but dauwe excluded: the pass cannot run (the
        # adaptive replanner is Dauwe-based).
        report = run_validation(
            stress=True, quick=True, systems=[STRESS_SYSTEMS["calm"]],
            techniques=["daly"], trials=2,
        )
        assert not any(p.variant.startswith("regime:") for p in report.pairs)

    def test_validate_regime_pair_on_curated_drift(self):
        from repro.systems import TEST_SYSTEMS
        from repro.systems.stress import drift_regimes
        from repro.validate import _validate_regime

        system = TEST_SYSTEMS["B"]
        regime_name, schedule = drift_regimes(system)[0]
        report = ValidationReport(catalog="standard")
        pair = _validate_regime(
            report, system, regime_name, schedule,
            trials=8, seed=0, quick=True,
        )
        assert pair.variant == f"regime:{regime_name}"
        assert pair.verdict == "ok"
        assert "adaptive" in pair.note and "replans" in pair.note
        assert pair.deviation is not None
        assert report.violations == []

    def test_adaptive_loss_is_a_violation(self, monkeypatch):
        from types import SimpleNamespace

        from repro.simulator import adaptive as adaptive_mod
        from repro.systems import TEST_SYSTEMS
        from repro.systems.stress import drift_regimes
        from repro.validate import _validate_regime

        def losing(system, schedule, **kwargs):
            return SimpleNamespace(
                adaptive_wins=False, adaptive_mean=120.0, static_mean=100.0,
                predicted_makespan=110.0, improvement=-0.2, mean_replans=3.0,
            )

        monkeypatch.setattr(adaptive_mod, "compare_adaptive", losing)
        system = TEST_SYSTEMS["B"]
        regime_name, schedule = drift_regimes(system)[0]
        report = ValidationReport(catalog="standard")
        pair = _validate_regime(
            report, system, regime_name, schedule,
            trials=2, seed=0, quick=True,
        )
        assert pair.verdict == "ok"  # a loss is a violation, not a crash
        (violation,) = report.violations
        assert violation.check == "adaptive-loses"
        assert regime_name in violation.detail


class TestValidateCli:
    def test_validate_exit_zero_on_clean_run(self):
        from repro.cli import main

        # Restrict to the two cheapest techniques so the smoke test stays
        # fast; the full catalogs run in CI via `validate --quick`.
        code = main(
            ["validate", "--quick", "--techniques", "daly", "--trials", "2"]
        )
        assert code == 0

    def test_stress_flag_rejected_outside_validate(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["figure2", "--stress"])
        assert exc.value.code == 2

    def test_validate_reports_catalog_choice(self, capsys):
        from repro.cli import main

        code = main(
            [
                "validate", "--quick", "--stress",
                "--techniques", "daly", "--trials", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stress catalog" in out
