"""Cross-engine equality, dispatch and horizon-cap tests.

The batched struct-of-arrays engine (:mod:`repro.simulator.batch`)
promises **bitwise-identical** :class:`TrialResult`s to the scalar
per-event loop for the same seeds.  These tests enforce that promise
across the whole Table-I catalog, every recheckpoint policy, the
>4096-failure stream-refill path, and the figure2/figure4 pipeline rows
— plus the dispatch rules of ``simulate_many`` and the accounting
invariants both engines guard internally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.scenarios import ScenarioSpec
from repro.simulator import (
    default_max_time,
    get_default_engine,
    set_default_engine,
    simulate_many,
    simulate_trial,
    simulate_trials_batch,
    trial_seeds,
)
from repro.systems import TEST_SYSTEM_ORDER, get_system

_PLANS: dict[str, CheckpointPlan] = {}


def plan_for(name: str) -> CheckpointPlan:
    """The technique-optimized plan for a catalog system (memoized)."""
    if name not in _PLANS:
        _PLANS[name] = DauweModel(get_system(name)).optimize().plan
    return _PLANS[name]


def scalar_trials(system, plan, seeds, **kwargs):
    """The ground truth: one scalar-engine run per seed sequence."""
    return [
        simulate_trial(system, plan, rng=np.random.default_rng(ss), **kwargs)
        for ss in seeds
    ]


@pytest.fixture
def restore_engine():
    previous = get_default_engine()
    yield
    set_default_engine(previous)


class TestCrossEngineEquality:
    """batch == scalar, field for field, bit for bit."""

    @pytest.mark.parametrize("name", TEST_SYSTEM_ORDER)
    def test_catalog_systems_bitwise_equal(self, name):
        system = get_system(name)
        plan = plan_for(name)
        seeds = trial_seeds(12345, 16)
        batch = simulate_trials_batch(system, plan, seeds)
        assert batch == scalar_trials(system, plan, seeds)

    @pytest.mark.parametrize("recheckpoint", ["free", "paid", "skip"])
    @pytest.mark.parametrize("cac", [False, True])
    def test_recheckpoint_policies(self, recheckpoint, cac):
        # A shortened MTBF forces frequent rollbacks past completed
        # positions, so the redo paths (restore vs re-pay vs skip) all run.
        system = get_system("B").with_mtbf(30.0)
        plan = plan_for("B")
        seeds = trial_seeds(7, 12)
        kwargs = dict(recheckpoint=recheckpoint, checkpoint_at_completion=cac)
        batch = simulate_trials_batch(system, plan, seeds, **kwargs)
        assert batch == scalar_trials(system, plan, seeds, **kwargs)

    def test_stream_refill_beyond_4096_failures(self):
        # The Figure-4 failure storm: thousands of failures per trial, so
        # per-trial RNG batches refill (the carry must chain bitwise).
        system = get_system("B").with_mtbf(3.0).with_top_level_cost(40.0)
        plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
        seeds = trial_seeds(11, 4)
        batch = simulate_trials_batch(system, plan, seeds, max_time=5000.0)
        scalar = scalar_trials(system, plan, seeds, max_time=5000.0)
        assert batch == scalar
        assert all(r.total_failures > 500 for r in scalar)

    def test_figure2_rows_engine_independent(self, restore_engine):
        from repro.experiments import figure2

        kwargs = dict(
            trials=8, seed=0, systems=("M", "B", "D4"),
            techniques=("dauwe", "daly"),
        )
        set_default_engine("scalar")
        scalar_rows = figure2.run(**kwargs).rows
        set_default_engine("batch")
        batch_rows = figure2.run(**kwargs).rows
        assert batch_rows == scalar_rows

    def test_figure4_rows_engine_independent(self, restore_engine):
        from repro.experiments import figure4

        kwargs = dict(trials=5, seed=0, techniques=("dauwe",))
        set_default_engine("scalar")
        scalar_rows = figure4.run(**kwargs).rows
        set_default_engine("batch")
        batch_rows = figure4.run(**kwargs).rows
        assert batch_rows == scalar_rows


class TestDispatch:
    """simulate_many's engine parameter: selection, fallback, validation."""

    def test_engines_agree_through_simulate_many(self):
        system = get_system("D4")
        plan = plan_for("D4")
        runs = {
            eng: simulate_many(
                system, plan, trials=16, seed=3, engine=eng, return_trials=True
            )
            for eng in ("scalar", "batch", "auto")
        }
        assert runs["batch"][1] == runs["scalar"][1] == runs["auto"][1]
        assert np.array_equal(
            runs["batch"][0].efficiencies, runs["scalar"][0].efficiencies
        )

    def test_batch_rejects_source_factory(self):
        with pytest.raises(ValueError, match="engine='batch'"):
            simulate_many(
                get_system("M"), plan_for("M"), trials=2, seed=0,
                engine="batch",
                source_factory=lambda rng: None,
            )

    def test_batch_rejects_escalate(self):
        with pytest.raises(ValueError, match="engine='batch'"):
            simulate_many(
                get_system("M"), plan_for("M"), trials=2, seed=0,
                engine="batch", restart_semantics="escalate",
            )

    def test_auto_falls_back_to_scalar_for_escalate(self):
        system, plan = get_system("B"), plan_for("B")
        auto = simulate_many(
            system, plan, trials=6, seed=2, engine="auto",
            restart_semantics="escalate", return_trials=True,
        )[1]
        scalar = simulate_many(
            system, plan, trials=6, seed=2, engine="scalar",
            restart_semantics="escalate", return_trials=True,
        )[1]
        assert auto == scalar

    def test_auto_width_threshold(self):
        # "auto" only pays for lockstep overhead when the run is wide
        # enough to amortize it; explicit "batch" ignores the threshold.
        from repro.simulator.run import _AUTO_MIN_TRIALS, _resolve_engine

        assert _resolve_engine("auto", "retry", None, _AUTO_MIN_TRIALS) is True
        assert _resolve_engine("auto", "retry", None, _AUTO_MIN_TRIALS - 1) is False
        assert _resolve_engine("batch", "retry", None, 1) is True
        assert _resolve_engine("scalar", "retry", None, 10**6) is False

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            simulate_many(
                get_system("M"), plan_for("M"), trials=2, seed=0, engine="bogus"
            )

    def test_default_engine_roundtrip(self, restore_engine):
        previous = set_default_engine("scalar")
        assert previous in ("auto", "scalar", "batch")
        assert get_default_engine() == "scalar"
        with pytest.raises(ValueError, match="engine must be one of"):
            set_default_engine("bogus")

    def test_batch_entry_point_validation(self):
        seeds = trial_seeds(0, 2)
        with pytest.raises(ValueError, match="restart_semantics"):
            simulate_trials_batch(
                get_system("M"), plan_for("M"), seeds,
                restart_semantics="escalate",
            )
        with pytest.raises(ValueError, match="recheckpoint"):
            simulate_trials_batch(
                get_system("M"), plan_for("M"), seeds, recheckpoint="bogus"
            )

    def test_scenario_spec_validates_engine(self):
        spec = ScenarioSpec(system=get_system("M"), simulate={"engine": "batch"})
        assert spec.simulate["engine"] == "batch"
        with pytest.raises(ValueError, match="simulate.engine"):
            ScenarioSpec(system=get_system("M"), simulate={"engine": "bogus"})

    def test_scheduler_worker_init_mirrors_engine(self, restore_engine, monkeypatch):
        # The pool initializer must install the parent's engine default
        # (spawn-started workers would otherwise reset to "auto").
        from repro.exec import scheduler as scheduler_mod
        from repro.exec.cache import get_active_cache, set_active_cache
        from repro.simulator.run import set_inline_mode

        monkeypatch.setattr(scheduler_mod, "_IN_SCENARIO_WORKER", False)
        previous_cache = get_active_cache()
        try:
            scheduler_mod._worker_init(None, False, "scalar")
            assert get_default_engine() == "scalar"
        finally:
            set_inline_mode(False)
            set_active_cache(previous_cache)


class TestAccountingInvariants:
    """Property sweep: both engines' internal guards plus the observable
    identities (categories sum to total time; the work bucket is the
    retained progress) across seeds and systems."""

    @pytest.mark.parametrize("name", ["M", "B", "D4", "D8"])
    @pytest.mark.parametrize("seed", [0, 17, 404])
    def test_breakdown_identities_both_engines(self, name, seed):
        system = get_system(name)
        plan = plan_for(name)
        seeds = trial_seeds(seed, 4)
        # Both calls run the engines' compute_time == work + rework guard;
        # a violation raises RuntimeError instead of returning.
        for r in simulate_trials_batch(system, plan, seeds) + scalar_trials(
            system, plan, seeds
        ):
            assert r.times.total() == pytest.approx(r.total_time, rel=1e-9)
            assert r.times.work == r.work_done
            assert 0.0 <= r.work_done <= system.baseline_time + 1e-6
            if r.completed:
                assert r.work_done == pytest.approx(system.baseline_time)


class TestHorizonCap:
    """default_max_time / max_time paths: hopeless plans stop at the cap
    and report the rolled-back work position."""

    def _hopeless(self):
        # MTBF of one minute against multi-minute restarts: recovery
        # essentially never succeeds, so the cap fires mid-recovery.
        system = (
            get_system("B")
            .with_baseline_time(100.0)
            .with_mtbf(1.0)
            .with_top_level_cost(60.0)
        )
        plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
        return system, plan

    def test_cap_mid_recovery_both_engines(self):
        system, plan = self._hopeless()
        seeds = trial_seeds(5, 6)
        batch = simulate_trials_batch(system, plan, seeds, max_time=50.0)
        scalar = scalar_trials(system, plan, seeds, max_time=50.0)
        assert batch == scalar
        for r in scalar:
            assert not r.completed
            assert r.total_time >= 50.0
            assert r.restarts_failed > 0
            # The reported work is the rolled-back position (acct.work is
            # set from it), never credit for progress lost to the failure.
            assert r.times.work == r.work_done
            assert r.work_done < system.baseline_time

    def test_default_cap_applies_when_unset(self):
        system, plan = self._hopeless()
        cap = default_max_time(system)
        assert cap == max(15.0 * 100.0, 100.0 + 300.0 * 1.0)
        seeds = trial_seeds(9, 2)
        batch = simulate_trials_batch(system, plan, seeds)
        scalar = scalar_trials(system, plan, seeds)
        assert batch == scalar
        for r in scalar:
            assert not r.completed
            assert r.total_time >= cap
